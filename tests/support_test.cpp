// Tests for the support utilities (string formatting, env config, RNG).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace dct {
namespace {

TEST(Str, Strf) {
  EXPECT_EQ(strf("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(strf("%s", ""), "");
  // Long output beyond any small internal buffer.
  const std::string big(500, 'a');
  EXPECT_EQ(strf("%s!", big.c_str()).size(), 501u);
}

TEST(Str, Join) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(Env, ParsesAndDefaults) {
  ::setenv("DCT_TEST_ENV", "42", 1);
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 42);
  ::setenv("DCT_TEST_ENV", "junk", 1);
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 7);
  ::unsetenv("DCT_TEST_ENV");
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 7);
}

TEST(Rng, DeterministicAndSpread) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());

  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit

  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, InclusiveBoundsAndNegatives) {
  Rng r(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(-2, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

}  // namespace
}  // namespace dct
