// Tests for the support utilities (string formatting, env config, RNG,
// structured errors, cancellation tokens, parallel-for fault collection).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

#include "support/cancel.hpp"
#include "support/diagnostics.hpp"
#include "support/env.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace dct {
namespace {

TEST(Str, Strf) {
  EXPECT_EQ(strf("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(strf("%s", ""), "");
  // Long output beyond any small internal buffer.
  const std::string big(500, 'a');
  EXPECT_EQ(strf("%s!", big.c_str()).size(), 501u);
}

TEST(Str, Join) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(Env, ParsesAndDefaults) {
  ::setenv("DCT_TEST_ENV", "42", 1);
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 42);
  ::setenv("DCT_TEST_ENV", "junk", 1);
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 7);
  ::unsetenv("DCT_TEST_ENV");
  EXPECT_EQ(env_int("DCT_TEST_ENV", 7), 7);
}

TEST(Rng, DeterministicAndSpread) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());

  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit

  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Error, CodesAndContextChain) {
  Error e(Error::Code::kUnsupportedConfig, "too many processors");
  EXPECT_EQ(e.code(), Error::Code::kUnsupportedConfig);
  e.with_context("simulate").with_context("sweep cell");
  ASSERT_EQ(e.context().size(), 2u);
  EXPECT_EQ(e.context()[0], "simulate");  // innermost first
  const std::string full = e.full_message();
  EXPECT_NE(full.find("too many processors"), std::string::npos);
  EXPECT_NE(full.find("simulate"), std::string::npos);
  EXPECT_NE(full.find("sweep cell"), std::string::npos);
  // Plain-message constructor stays kGeneric (DCT_CHECK's path).
  EXPECT_EQ(Error("x").code(), Error::Code::kGeneric);
  EXPECT_STREQ(to_string(Error::Code::kDeadlineExceeded),
               "deadline-exceeded");
}

TEST(Cancel, InertTokenNeverExpires) {
  const support::CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.expired());
  EXPECT_NO_THROW(t.check("anywhere"));
}

TEST(Cancel, ExplicitCancelAndDeadline) {
  const support::CancelToken t = support::CancelToken::make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.expired());
  t.cancel();
  EXPECT_TRUE(t.expired());
  EXPECT_EQ(t.reason(), Error::Code::kCancelled);
  try {
    t.check("unit test");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kCancelled);
    EXPECT_NE(std::string(e.what()).find("unit test"), std::string::npos);
  }

  const support::CancelToken d = support::CancelToken::with_deadline_ms(0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.reason(), Error::Code::kDeadlineExceeded);
}

TEST(Parallel, CollectReportsEveryFailingIndex) {
  // parallel_for rethrows only the lowest failing index; the collect
  // variant must report them all — the sweep's failure table depends on
  // it.
  for (int threads : {1, 4}) {
    const support::ParallelOutcome out = support::parallel_for_collect(
        10, threads, [](int i) {
          if (i % 3 == 0) throw Error(strf("fail %d", i));
        });
    EXPECT_FALSE(out.all_ok());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(out.started[static_cast<size_t>(i)]);
      EXPECT_EQ(out.errors[static_cast<size_t>(i)] != nullptr, i % 3 == 0)
          << i;
    }
    ASSERT_NE(out.first_error(), nullptr);
    try {
      std::rethrow_exception(out.first_error());
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "fail 0");  // lowest index wins
    }
  }
}

TEST(Parallel, RethrowsLowestIndexForDirectCallers) {
  try {
    support::parallel_for(8, 4, [](int i) {
      if (i >= 2) throw Error(strf("fail %d", i));
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "fail 2");
  }
}

TEST(Parallel, CancelledTokenStopsDispatch) {
  // Pre-cancelled token: no index is dispatched at all.
  for (int threads : {1, 4}) {
    const support::CancelToken t = support::CancelToken::make();
    t.cancel();
    std::atomic<int> ran{0};
    const support::ParallelOutcome out = support::parallel_for_collect(
        100, threads, [&](int) { ++ran; }, t);
    EXPECT_FALSE(out.all_ok());
    EXPECT_EQ(ran.load(), 0);
    for (char s : out.started) EXPECT_FALSE(s);
  }

  // Mid-run cancellation (serial, so the cut point is deterministic):
  // indices after the trip are drained and marked unstarted.
  const support::CancelToken t = support::CancelToken::make();
  std::atomic<int> ran{0};
  const support::ParallelOutcome out = support::parallel_for_collect(
      100, 1,
      [&](int i) {
        ++ran;
        if (i == 0) t.cancel();
      },
      t);
  EXPECT_FALSE(out.all_ok());
  EXPECT_EQ(ran.load(), 1);
  for (size_t i = 1; i < out.started.size(); ++i)
    EXPECT_FALSE(out.started[i]);
}

TEST(Rng, InclusiveBoundsAndNegatives) {
  Rng r(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(-2, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

}  // namespace
}  // namespace dct
