// Tests for the SPMD code emission: the paper's code shapes must appear.
#include "codegen/codegen.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace dct::codegen {
namespace {

TEST(Codegen, BaseModeBlockLoop) {
  const auto cp = core::compile(apps::figure1(32, 1), core::Mode::Base, 4);
  const std::string code = emit_program(cp);
  EXPECT_NE(code.find("BLOCK over 4 procs"), std::string::npos);
  EXPECT_NE(code.find("barrier()"), std::string::npos);
  EXPECT_NE(code.find("float A[32][32]"), std::string::npos);
}

TEST(Codegen, FullModeRestructuredArray) {
  const auto cp = core::compile(apps::lu(32), core::Mode::Full, 4);
  const std::string code = emit_program(cp);
  // LU's A is restructured: declared linear with a layout comment, and
  // subscripts become linearized addresses.
  EXPECT_NE(code.find("restructured"), std::string::npos);
  EXPECT_NE(code.find("A["), std::string::npos);
  EXPECT_NE(code.find("CYCLIC over 4 procs"), std::string::npos);
}

TEST(Codegen, NaiveStrategySpellsModDiv) {
  const auto cp = core::compile(apps::lu(32), core::Mode::Full, 4,
                                layout::AddrStrategy::Naive);
  const std::string code = emit_program(cp);
  EXPECT_NE(code.find("%"), std::string::npos);
  EXPECT_NE(code.find("/4"), std::string::npos);
}

TEST(Codegen, OptimizedStrategyUsesCounters) {
  const auto cp = core::compile(apps::lu(32), core::Mode::Full, 4,
                                layout::AddrStrategy::Optimized);
  const std::string code = emit_program(cp);
  // Strength-reduced counters replace the mod/div on the hot path.
  EXPECT_NE(code.find("_c"), std::string::npos);
}

TEST(Codegen, ReplicatedArraysMarked) {
  const auto cp = core::compile(apps::adi(16, 1), core::Mode::Full, 4);
  const std::string code = emit_program(cp);
  EXPECT_NE(code.find("replicated per cluster"), std::string::npos);
}

TEST(Codegen, TimeLoopEmitted) {
  const auto cp = core::compile(apps::stencil5(16, 3), core::Mode::Full, 4);
  const std::string code = emit_program(cp);
  EXPECT_NE(code.find("for (int t = 0; t < 3; t++)"), std::string::npos);
}

}  // namespace
}  // namespace dct::codegen
