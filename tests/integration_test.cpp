// End-to-end integration tests: every application, compiled under every
// mode, must produce bit-identical results to the sequential reference —
// the legality requirement of Section 4.1.3 — and the optimized modes
// must actually help on the memory system.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"

namespace dct {
namespace {

using core::Mode;

void expect_bit_identical(const ir::Program& prog, Mode mode, int procs) {
  const auto reference = runtime::run_reference(prog);
  const core::CompiledProgram cp = core::compile(prog, mode, procs);
  const auto result =
      runtime::simulate(cp, machine::MachineConfig::dash(procs));
  ASSERT_EQ(result.values.size(), reference.size());
  for (size_t a = 0; a < reference.size(); ++a) {
    ASSERT_EQ(result.values[a].size(), reference[a].size())
        << prog.arrays[a].name;
    for (size_t i = 0; i < reference[a].size(); ++i)
      ASSERT_EQ(result.values[a][i], reference[a][i])
          << prog.name << " mode=" << static_cast<int>(mode)
          << " array=" << prog.arrays[a].name << " elem=" << i;
  }
}

class AllModes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllModes, SemanticsPreserved) {
  const auto [app, procs] = GetParam();
  ir::Program prog;
  switch (app) {
    case 0: prog = apps::figure1(20, 2); break;
    case 1: prog = apps::lu(16); break;
    case 2: prog = apps::stencil5(18, 2); break;
    case 3: prog = apps::adi(14, 2); break;
    case 4: prog = apps::vpenta(12); break;
    case 5: prog = apps::erlebacher(8, 1); break;
    case 6: prog = apps::swm256(14, 2); break;
    default: prog = apps::tomcatv(14, 2); break;
  }
  expect_bit_identical(prog, Mode::Base, procs);
  expect_bit_identical(prog, Mode::CompDecomp, procs);
  expect_bit_identical(prog, Mode::Full, procs);
}

INSTANTIATE_TEST_SUITE_P(
    AppsByProcs, AllModes,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(1, 3, 4, 8)));

TEST(Integration, SpeedupOverOneProcessor) {
  // Full optimization on several processors must beat one processor.
  const ir::Program prog = apps::stencil5(128, 2);
  runtime::ExecOptions opts;
  opts.collect_values = false;
  const auto t1 = runtime::simulate(core::compile(prog, Mode::Base, 1),
                                    machine::MachineConfig::dash(1), opts);
  const auto t8 = runtime::simulate(core::compile(prog, Mode::Full, 8),
                                    machine::MachineConfig::dash(8), opts);
  EXPECT_GT(t1.cycles / t8.cycles, 3.0);
}

TEST(Integration, DataTransformReducesFalseSharing) {
  // Figure 1's point: with row-block computation over a column-major
  // layout, false sharing is rampant; the data transformation removes it.
  const ir::Program prog = apps::figure1(64, 2);
  const auto cd = runtime::simulate(core::compile(prog, Mode::CompDecomp, 8),
                                    machine::MachineConfig::dash(8));
  const auto full = runtime::simulate(core::compile(prog, Mode::Full, 8),
                                      machine::MachineConfig::dash(8));
  EXPECT_LT(full.mem.coherence_false, cd.mem.coherence_false / 4 + 1);
}

TEST(Integration, ReportIsInformative) {
  const auto cp = core::compile(apps::lu(16), Mode::Full, 4);
  const std::string report = cp.report();
  EXPECT_NE(report.find("CYCLIC"), std::string::npos);
  EXPECT_NE(report.find("lu"), std::string::npos);
}

}  // namespace
}  // namespace dct
