// Tests for the validation oracle layer (src/verify/): every oracle runs
// clean on every application in every mode, and — equally important —
// each oracle has teeth: aimed at a deliberately broken subject it must
// report a violation.
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "core/pass.hpp"
#include "support/diagnostics.hpp"
#include "verify/oracle.hpp"

namespace dct {
namespace {

using core::Mode;

ir::Program small_app(int which) {
  switch (which) {
    case 0: return apps::figure1(16, 2);
    case 1: return apps::lu(12);
    case 2: return apps::stencil5(14, 2);
    case 3: return apps::adi(12, 2);
    case 4: return apps::vpenta(10);
    case 5: return apps::erlebacher(8, 1);
    case 6: return apps::swm256(12, 2);
    default: return apps::tomcatv(12, 2);
  }
}

TEST(Verify, AllOraclesCleanOnEveryAppAndMode) {
  for (int app = 0; app < 8; ++app) {
    const ir::Program prog = small_app(app);
    for (Mode mode : {Mode::Base, Mode::CompDecomp, Mode::Full}) {
      const core::CompiledProgram cp = core::compile(prog, mode, 4);
      const verify::ValidationReport rep =
          verify::validate_run(cp, machine::MachineConfig::dash(4));
      EXPECT_TRUE(rep.ok()) << prog.name << " [" << core::to_string(mode)
                            << "]\n" << rep.to_string();
      EXPECT_GT(rep.total_checks(), 0) << prog.name;
    }
  }
}

TEST(Verify, BijectivityOracleCatchesMismatchedLayout) {
  // A 10x10 array forced through a 5x5 identity layout: addresses escape
  // [0, 25) — the oracle must notice rather than trust the layout.
  ir::ArrayDecl decl;
  decl.name = "broken";
  decl.dims = {10, 10};
  const layout::Layout lay = layout::Layout::identity({5, 5});
  verify::OracleReport rep;
  rep.oracle = "layout-bijectivity";
  verify::check_layout_against(decl, lay, {}, rep);
  EXPECT_FALSE(rep.ok());
}

TEST(Verify, FoldOracleRejectsNonPositiveProcs) {
  core::CoordFold fold;
  fold.kind = decomp::DistKind::Block;
  fold.procs = 0;
  verify::OracleReport rep;
  rep.oracle = "fold-coverage";
  verify::check_one_fold(fold, 0, 9, "degenerate", {}, rep);
  EXPECT_FALSE(rep.ok());
}

TEST(Verify, FoldOracleAcceptsEveryDistributionKind) {
  using decomp::DistKind;
  struct Case { DistKind kind; int procs; linalg::Int block, offset; };
  const Case cases[] = {
      {DistKind::Serial, 1, 1, 0},
      {DistKind::Block, 4, 8, 0},
      {DistKind::Block, 4, 8, 3},   // offset: BASE folds use hull.lo
      {DistKind::Cyclic, 4, 1, 0},
      {DistKind::BlockCyclic, 4, 3, 0},
  };
  for (const Case& c : cases) {
    core::CoordFold fold;
    fold.kind = c.kind;
    fold.procs = c.procs;
    fold.block = c.block;
    fold.offset = c.offset;
    verify::OracleReport rep;
    rep.oracle = "fold-coverage";
    verify::check_one_fold(fold, 0, 31, "case", {}, rep);
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_GT(rep.checks, 0);
  }
}

TEST(Verify, Equation1OracleCatchesCorruptedDecomposition) {
  // stencil5 under Full is (BLOCK, BLOCK): both dimensions of the main
  // array bind processor dimensions. Swapping the bindings makes D_x
  // disagree with G on every non-diagonal iteration.
  core::CompiledProgram cp =
      core::compile(apps::stencil5(14, 2), Mode::Full, 4);
  bool corrupted = false;
  for (auto& ad : cp.dec.arrays) {
    if (ad.dims.size() >= 2 && ad.dims[0].proc_dim != ad.dims[1].proc_dim) {
      std::swap(ad.dims[0].proc_dim, ad.dims[1].proc_dim);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "expected a multi-dimensional distribution";
  const verify::OracleReport rep = verify::check_equation1(cp);
  EXPECT_FALSE(rep.ok());
}

TEST(Verify, RaiseIfViolatedThrowsStructuredError) {
  verify::ValidationReport rep;
  verify::OracleReport bad;
  bad.oracle = "equation1";
  bad.violations.push_back("synthetic violation");
  rep.oracles.push_back(bad);
  try {
    rep.raise_if_violated("unit");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kOracleViolation);
    EXPECT_NE(std::string(e.what()).find("synthetic violation"),
              std::string::npos);
  }
}

TEST(Verify, ValidatePassAppendedWhenEnvSet) {
  ASSERT_EQ(setenv("DCT_VALIDATE", "1", 1), 0);
  EXPECT_TRUE(verify::validate_enabled());
  const auto names = core::build_pipeline(Mode::Full).pass_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "verify");
  // And the instrumented pipeline actually runs the oracles cleanly.
  const core::CompiledProgram cp =
      core::compile(apps::figure1(12, 2), Mode::Full, 4);
  EXPECT_FALSE(cp.trace.passes.empty());
  ASSERT_EQ(unsetenv("DCT_VALIDATE"), 0);
  const auto off = core::build_pipeline(Mode::Full).pass_names();
  EXPECT_NE(off.back(), "verify");
}

TEST(Verify, DifferentialOracleAgreesOnPipelinedApp) {
  // ADI exercises the pipelined schedule — the differential oracle must
  // see bit-identical cycles and values from both engines.
  const core::CompiledProgram cp =
      core::compile(apps::adi(12, 2), Mode::Full, 4);
  const verify::OracleReport rep =
      verify::check_differential(cp, machine::MachineConfig::dash(4));
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Verify, NativeOracleAgreesOnThreadedBackend) {
  // The native oracle actually spawns cp.procs hardware threads and
  // demands bit-identity with the sequential reference.
  const core::CompiledProgram cp =
      core::compile(apps::stencil5(16, 2), Mode::Full, 4);
  const verify::OracleReport rep = verify::check_native(cp);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_GT(rep.checks, 0);
}

TEST(Verify, NativeOracleGatedByEnv) {
  // The suite may itself run under DCT_NATIVE=1 (CI's native-smoke job
  // does); normalize before probing the gate.
  ASSERT_EQ(unsetenv("DCT_NATIVE"), 0);
  EXPECT_FALSE(verify::native_check_enabled());
  ASSERT_EQ(setenv("DCT_NATIVE", "1", 1), 0);
  EXPECT_TRUE(verify::native_check_enabled());
  // With both knobs set, the verify pass runs the native differential
  // inside the pipeline and records its plan remarks.
  ASSERT_EQ(setenv("DCT_VALIDATE", "1", 1), 0);
  const core::CompiledProgram cp =
      core::compile(apps::figure1(12, 2), Mode::Full, 4);
  bool saw_native = false;
  for (const auto& pr : cp.trace.passes)
    if (pr.name == "verify")
      for (const auto& [key, value] : pr.counters)
        saw_native |= key.rfind("checks_native", 0) == 0 && value > 0;
  EXPECT_TRUE(saw_native);
  ASSERT_EQ(unsetenv("DCT_NATIVE"), 0);
  ASSERT_EQ(unsetenv("DCT_VALIDATE"), 0);
}

}  // namespace
}  // namespace dct
