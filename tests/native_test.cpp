// Differential tests for the native threaded SPMD backend: every app in
// every compilation mode must produce bit-identical array results to the
// sequential reference at 1, 2 and 4 threads, under real std::thread
// execution with transformed layouts and walker addressing.
#include "native/native.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "native/plan.hpp"
#include "runtime/executor.hpp"
#include "support/diagnostics.hpp"

namespace dct::native {
namespace {

using core::Mode;

std::vector<std::pair<std::string, ir::Program>> programs() {
  std::vector<std::pair<std::string, ir::Program>> ps;
  ps.emplace_back("figure1", apps::figure1(20, 2));
  ps.emplace_back("lu", apps::lu(16));
  ps.emplace_back("stencil5", apps::stencil5(18, 2));
  ps.emplace_back("adi", apps::adi(14, 2));
  ps.emplace_back("vpenta", apps::vpenta(12));
  ps.emplace_back("erlebacher", apps::erlebacher(8, 1));
  ps.emplace_back("swm256", apps::swm256(14, 2));
  ps.emplace_back("tomcatv", apps::tomcatv(14, 2));
  return ps;
}

void expect_bit_identical(const std::string& label,
                          const std::vector<std::vector<double>>& got,
                          const std::vector<std::vector<double>>& want) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t a = 0; a < got.size(); ++a) {
    ASSERT_EQ(got[a].size(), want[a].size()) << label << " array " << a;
    for (size_t i = 0; i < got[a].size(); ++i)
      ASSERT_EQ(got[a][i], want[a][i])
          << label << " array " << a << " element " << i;
  }
}

TEST(Native, BitIdenticalToReferenceAllAppsModesThreads) {
  const Mode modes[] = {Mode::Base, Mode::CompDecomp, Mode::Full};
  for (const auto& [name, prog] : programs()) {
    const auto want = runtime::run_reference(prog);
    for (Mode mode : modes) {
      for (int threads : {1, 2, 4}) {
        const auto cp = core::compile(prog, mode, threads);
        NativeOptions opts;
        opts.threads = threads;
        const NativeResult res = run_native(cp, opts);
        expect_bit_identical(
            name + "/" + core::to_string(mode) + "/t" + std::to_string(threads),
            res.values, want);
        EXPECT_GT(res.statements, 0);
      }
    }
  }
}

TEST(Native, ThreadCountMustMatchCompiledProcs) {
  const auto cp = core::compile(apps::stencil5(12, 1), Mode::Base, 4);
  NativeOptions opts;
  opts.threads = 2;
  EXPECT_THROW((void)run_native(cp, opts), Error);
}

TEST(Native, PlanIsNotDegenerateOnDataParallelApps) {
  // The scheduler must not hide behind the Sequential fallback for the
  // embarrassingly parallel stencil: most nests should thread for real.
  const auto cp = core::compile(apps::stencil5(18, 2), Mode::Full, 4);
  const ProgramPlan pp = plan_program(cp);
  ASSERT_FALSE(pp.nests.empty());
  EXPECT_LT(pp.sequential_nests, static_cast<int>(pp.nests.size()));
}

TEST(Native, RestrictedWalkMatchesFullWalk) {
  // Forcing restriction off must not change results: restriction is a
  // pruning optimization under the owner filter, never a semantic change.
  const auto cp = core::compile(apps::stencil5(18, 2), Mode::Full, 4);
  ProgramPlan pp = plan_program(cp);
  int restricted_levels = 0;
  for (const NestPlan& np : pp.nests)
    restricted_levels += static_cast<int>(np.restrictions.size());
  EXPECT_GT(restricted_levels, 0);
  NativeOptions opts;
  opts.threads = 4;
  const NativeResult restricted = run_native(cp, pp, opts);
  for (NestPlan& np : pp.nests) np.restrictions.clear();
  const NativeResult full = run_native(cp, pp, opts);
  expect_bit_identical("restricted-vs-full", restricted.values, full.values);
}

TEST(Native, BarriersUniformAcrossRuns) {
  // The plan-derived barrier schedule must be deterministic: two runs of
  // the same compiled program execute the same number of barrier phases.
  const auto cp = core::compile(apps::lu(16), Mode::CompDecomp, 2);
  NativeOptions opts;
  opts.threads = 2;
  const NativeResult a = run_native(cp, opts);
  const NativeResult b = run_native(cp, opts);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.statements, b.statements);
}

}  // namespace
}  // namespace dct::native
