// Tests for the affine kernel IR: expressions, bounds, iteration walking,
// references and the builder.
#include "ir/program.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace dct::ir {
namespace {

TEST(AffineExpr, EvalAndOps) {
  const AffineExpr e = var(0) * 2 + var(1, -1) + 3;
  const Vec iter{5, 4};
  EXPECT_EQ(e.eval(iter), 2 * 5 - 4 + 3);
  EXPECT_EQ(cst(7).eval(iter), 7);
  EXPECT_EQ((var(1) - var(0)).eval(iter), -1);
  EXPECT_EQ((var(0) - 2).eval(iter), 3);
  EXPECT_TRUE(cst(1).depends_only_on_outer(0));
  EXPECT_TRUE(var(0).depends_only_on_outer(1));
  EXPECT_FALSE(var(1).depends_only_on_outer(1));
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ((var(0) * 2 + 3).to_string(), "2*i0+3");
  EXPECT_EQ(cst(0).to_string(), "0");
  EXPECT_EQ((var(1, -1)).to_string(), "-i1");
}

TEST(Loop, MultiBoundEval) {
  // lower = max(2, i0+1), upper = min(10, 2*i0)
  Loop lp;
  lp.lowers = {Bound{cst(2), 1}, Bound{var(0) + 1, 1}};
  lp.uppers = {Bound{cst(10), 1}, Bound{var(0) * 2, 1}};
  const Vec at3{3, 0};
  EXPECT_EQ(lp.lower_bound(at3), 4);
  EXPECT_EQ(lp.upper_bound(at3), 6);
  const Vec at9{9, 0};
  EXPECT_EQ(lp.upper_bound(at9), 10);
}

TEST(Loop, DivisorBounds) {
  // i in ceil((i0+1)/2) .. floor(7/2)
  Loop lp;
  lp.lowers = {Bound{var(0) + 1, 2}};
  lp.uppers = {Bound{cst(7), 2}};
  const Vec at2{2, 0};
  EXPECT_EQ(lp.lower_bound(at2), 2);  // ceil(3/2)
  EXPECT_EQ(lp.upper_bound(at2), 3);  // floor(7/2)
}

LoopNest triangular_nest(Int n) {
  LoopNest nest;
  nest.name = "tri";
  nest.loops.push_back(loop("i", cst(0), cst(n - 1)));
  nest.loops.push_back(loop("j", var(0), cst(n - 1)));
  return nest;
}

TEST(Iteration, TriangularCount) {
  Program prog;
  prog.nests.push_back(triangular_nest(5));
  EXPECT_EQ(prog.nest_iterations(prog.nests[0]), 5 * 6 / 2);
}

TEST(Iteration, LexicographicOrder) {
  LoopNest nest;
  nest.loops.push_back(loop("i", cst(0), cst(1)));
  nest.loops.push_back(loop("j", cst(0), cst(2)));
  std::vector<Vec> seen;
  for_each_iteration(nest, [&](std::span<const Int> it) {
    seen.emplace_back(it.begin(), it.end());
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (Vec{0, 0}));
  EXPECT_EQ(seen.back(), (Vec{1, 2}));
  for (size_t i = 1; i < seen.size(); ++i)
    EXPECT_TRUE(std::lexicographical_compare(seen[i - 1].begin(),
                                             seen[i - 1].end(),
                                             seen[i].begin(), seen[i].end()));
}

TEST(Iteration, EmptyRangeSkipped) {
  LoopNest nest;
  nest.loops.push_back(loop("i", cst(0), cst(3)));
  nest.loops.push_back(loop("j", var(0), cst(1)));  // empty for i >= 2
  int count = 0;
  for_each_iteration(nest, [&](std::span<const Int>) { ++count; });
  EXPECT_EQ(count, 2 + 1);  // i=0: j in 0..1; i=1: j=1
}

TEST(ArrayRefs, SimpleRefIndexing) {
  const ArrayRef r = simple_ref(0, 3, {{2, 0}, {0, 1}});
  const Vec iter{4, 5, 6};
  EXPECT_EQ(r.index(iter), (Vec{6, 5}));
  const ArrayRef c = simple_ref(0, 3, {{-1, 9}, {1, 0}});
  EXPECT_EQ(c.index(iter), (Vec{9, 5}));
}

TEST(Builder, BuildsProgram) {
  ProgramBuilder pb("demo");
  const int a = pb.array("A", {8, 8}, 4);
  const int b = pb.array("B", {8, 8});
  EXPECT_THROW(pb.array("A", {2}), Error);
  EXPECT_THROW(pb.array("Z", {0}), Error);
  LoopNest& nest = pb.nest("init", 10);
  nest.loops.push_back(loop("j", cst(0), cst(7)));
  nest.loops.push_back(loop("i", cst(0), cst(7)));
  Stmt s;
  s.reads = {simple_ref(b, 2, {{1, 0}, {0, 0}})};
  s.write = simple_ref(a, 2, {{1, 0}, {0, 0}});
  s.eval = [](std::span<const double> r) { return r[0]; };
  nest.stmts.push_back(std::move(s));
  pb.set_time_steps(3);
  const Program prog = pb.build();
  EXPECT_EQ(prog.array(a).name, "A");
  EXPECT_EQ(prog.array(a).elem_size, 4);
  EXPECT_EQ(prog.array(a).elem_count(), 64);
  EXPECT_EQ(prog.array(a).byte_size(), 256);
  EXPECT_EQ(prog.array_id("B"), b);
  EXPECT_THROW(prog.array_id("C"), Error);
  EXPECT_EQ(prog.time_steps, 3);
  EXPECT_EQ(prog.nest_iterations(prog.nests[0]), 64);
  EXPECT_FALSE(prog.to_string().empty());
}

}  // namespace
}  // namespace dct::ir
