// Tests for the DASH-like machine simulator: latency hierarchy, coherence
// behaviour (true and false sharing), conflict misses and page homing.
#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace dct::machine {
namespace {

MachineConfig small_dash(int procs) {
  MachineConfig cfg = MachineConfig::dash(procs);
  return cfg;
}

TEST(Machine, LatencyHierarchy) {
  Machine m(small_dash(8));
  m.home_page(0, 0);  // page homed on cluster 0 (procs 0..3)
  // Cold miss from proc 0: local memory.
  EXPECT_EQ(m.access(0, 0, false), m.config().lat_local);
  // Re-access: L1 hit.
  EXPECT_EQ(m.access(0, 0, false), m.config().lat_l1);
  // Proc 4 (cluster 1): remote fill.
  EXPECT_EQ(m.access(4, 0, false), m.config().lat_remote);
  EXPECT_EQ(m.stats(0).l1_hits, 1);
  EXPECT_EQ(m.stats(0).local_fills, 1);
  EXPECT_EQ(m.stats(4).remote_fills, 1);
}

TEST(Machine, DirtyRemoteFill) {
  Machine m(small_dash(8));
  m.home_page(0, 0);
  m.access(0, 0, true);  // proc 0 dirties the line
  EXPECT_EQ(m.access(4, 0, false), m.config().lat_remote_dirty);
}

TEST(Machine, WriteInvalidatesSharers) {
  Machine m(small_dash(8));
  m.home_page(0, 0);
  m.access(0, 0, false);
  m.access(1, 0, false);  // both share the line
  EXPECT_EQ(m.access(1, 0, false), m.config().lat_l1);
  m.access(0, 0, true);  // upgrade: invalidates proc 1
  EXPECT_EQ(m.stats(0).upgrades, 1);
  // Proc 1 must now miss, classified as coherence (same word: true).
  m.access(1, 0, false);
  EXPECT_EQ(m.stats(1).coherence_true, 1);
}

TEST(Machine, FalseSharingClassified) {
  Machine m(small_dash(8));
  m.home_page(0, 0);
  // Proc 1 reads word 0; proc 0 writes word 3 of the same 16B line.
  m.access(1, 0, false);
  m.access(0, 12, true);
  m.access(1, 0, false);  // miss caused by a write to a DIFFERENT word
  EXPECT_EQ(m.stats(1).coherence_false, 1);
  EXPECT_EQ(m.stats(1).coherence_true, 0);
}

TEST(Machine, ConflictMissesInDirectMappedCache) {
  // Two addresses 64KB apart map to the same L1 set and 256KB apart to the
  // same L2 set; alternating them defeats both direct-mapped levels.
  Machine m(small_dash(4));
  const Int a = 0;
  const Int b = 256 * 1024;  // same set in L1 (64K) and L2 (256K)
  m.home_page(a, 0);
  m.home_page(b, 0);
  m.access(0, a, false);
  m.access(0, b, false);
  m.access(0, a, false);
  m.access(0, b, false);
  EXPECT_EQ(m.stats(0).replace_misses, 2);
  EXPECT_EQ(m.stats(0).l1_hits + m.stats(0).l2_hits, 0);
}

TEST(Machine, L2BacksUpL1) {
  // Addresses 64KB apart conflict in L1 but not in L2 (256KB).
  Machine m(small_dash(4));
  const Int a = 0, b = 64 * 1024;
  m.home_page(a, 0);
  m.home_page(b, 0);
  m.access(0, a, false);
  m.access(0, b, false);  // evicts a from L1, both in L2
  EXPECT_EQ(m.access(0, a, false), m.config().lat_l2);
  EXPECT_EQ(m.stats(0).l2_hits, 1);
}

TEST(Machine, FirstTouchRoundRobin) {
  Machine m(small_dash(32));
  // Unhomed pages spread across the 8 clusters; accesses from proc 0 hit
  // local memory only 1/8 of the time.
  int local = 0;
  for (int pg = 0; pg < 16; ++pg) {
    const double lat = m.access(0, static_cast<Int>(pg) * 4096, false);
    if (lat == m.config().lat_local) ++local;
  }
  EXPECT_EQ(local, 2);  // 16 pages / 8 clusters
}

TEST(Machine, BarrierCostGrowsWithProcs) {
  Machine m(small_dash(32));
  EXPECT_GT(m.barrier_cost(32), m.barrier_cost(4));
}

TEST(Machine, StatsAggregation) {
  Machine m(small_dash(4));
  m.access(0, 0, false);
  m.access(1, 64, true);
  const ProcStats total = m.total_stats();
  EXPECT_EQ(total.accesses, 2);
  EXPECT_FALSE(total.to_string().empty());
}

TEST(Machine, RejectsBadConfig) {
  MachineConfig cfg = MachineConfig::dash(128);
  EXPECT_THROW(Machine m(cfg), Error);
}


TEST(Machine, StatsAccountingInvariant) {
  // Property: every access is exactly one of {l1 hit, l2 hit, fill}, and
  // every miss is classified exactly once.
  Machine m(small_dash(8));
  std::uint64_t seed = 7;
  auto next = [&]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int i = 0; i < 20000; ++i) {
    const int proc = static_cast<int>(next() % 8);
    const Int addr = static_cast<Int>(next() % (1 << 20)) & ~3ll;
    m.access(proc, addr, next() % 3 == 0);
  }
  const ProcStats t = m.total_stats();
  const long long fills =
      t.local_fills + t.remote_fills + t.remote_dirty_fills;
  EXPECT_EQ(t.accesses, t.l1_hits + t.l2_hits + fills);
  EXPECT_EQ(fills, t.cold_misses + t.replace_misses + t.coherence_true +
                       t.coherence_false);
  EXPECT_GT(t.memory_cycles, 0.0);
}

TEST(Machine, BackToBackAccessAlwaysHits) {
  // Property: immediately repeating an access from the same processor is
  // always an L1 hit (nothing can intervene).
  Machine m(small_dash(8));
  std::uint64_t seed = 9;
  auto next = [&]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int i = 0; i < 2000; ++i) {
    const int proc = static_cast<int>(next() % 8);
    const Int addr = static_cast<Int>(next() % (1 << 18)) & ~3ll;
    m.access(proc, addr, false);
    EXPECT_EQ(m.access(proc, addr, false), m.config().lat_l1);
  }
}

TEST(Machine, ReadSharingIsFree) {
  // Many readers of one line do not invalidate each other.
  Machine m(small_dash(32));
  m.home_page(0, 0);
  for (int p = 0; p < 32; ++p) m.access(p, 0, false);
  for (int p = 0; p < 32; ++p)
    EXPECT_EQ(m.access(p, 0, false), m.config().lat_l1);
}

}  // namespace
}  // namespace dct::machine
