// Tests for the computation/data decomposition algorithm — in particular
// that the decompositions found for the paper's benchmarks match the ones
// reported in Table 1 of the paper.
#include "decomp/decomposition.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace dct::decomp {
namespace {

using apps::adi;
using apps::erlebacher;
using apps::figure1;
using apps::lu;
using apps::stencil5;
using apps::swm256;
using apps::tomcatv;
using apps::vpenta;

std::vector<DistKind> kinds(const ProgramDecomposition& d,
                            const ir::Program& p, const std::string& name) {
  const ArrayDecomposition& ad = d.arrays[static_cast<size_t>(p.array_id(name))];
  std::vector<DistKind> out;
  for (const auto& dim : ad.dims) out.push_back(dim.kind);
  return out;
}

TEST(Decompose, Figure1BlockRows) {
  // Paper Section 3.3: DISTRIBUTE(BLOCK, *) — block of rows, because only
  // the I loop can run without communication in both nests.
  const ir::Program prog = figure1(32);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "A"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Serial}));
  // B and C are read-only: replicated.
  EXPECT_TRUE(d.arrays[static_cast<size_t>(prog.array_id("B"))].replicated);
  EXPECT_TRUE(d.arrays[static_cast<size_t>(prog.array_id("C"))].replicated);
  // Both nests are communication-free doalls with no barrier needed.
  for (const auto& nd : d.nests) {
    EXPECT_TRUE(nd.comm_free);
    EXPECT_FALSE(nd.barrier_after);
  }
}

TEST(Decompose, LUCyclicColumns) {
  // Table 1: A(*, CYCLIC).
  const ir::Program prog = lu(24);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "A"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Cyclic}));
  // The update statement's loop (I3) is the distributed one.
  ASSERT_EQ(d.nests.size(), 1u);
  EXPECT_EQ(d.nests[0].loops[2].sched, LoopSched::Distributed);
  EXPECT_EQ(d.nests[0].loops[2].proc_dim, 0);
  // The divide statement is anchored to the pivot column's owner (I1).
  EXPECT_EQ(d.nests[0].stmts[0].loop_for_dim[0], 0);
  EXPECT_EQ(d.nests[0].stmts[1].loop_for_dim[0], 2);
  // The pivot reads make the nest not communication-free.
  EXPECT_FALSE(d.nests[0].comm_free);
}

TEST(Decompose, StencilTwoDimensionalBlocks) {
  // Table 1: A(BLOCK, BLOCK).
  const ir::Program prog = stencil5(48);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "A"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Block}));
  EXPECT_EQ(kinds(d, prog, "B"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Block}));
  EXPECT_EQ(d.num_proc_dims, 2);
  // Both dims used simultaneously: the grid splits the machine.
  const auto grid = d.grid_extents(32);
  EXPECT_EQ(grid[0] * grid[1], 32);
  EXPECT_EQ(std::max(grid[0], grid[1]), 8);
}

TEST(Decompose, AdiStaticColumnBlocks) {
  // Table 1: A(*, BLOCK); the column sweep is doall, the row sweep is
  // pipelined.
  const ir::Program prog = adi(32);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "X"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Block}));
  EXPECT_TRUE(d.arrays[static_cast<size_t>(prog.array_id("A"))].replicated);
  ASSERT_EQ(d.nests.size(), 2u);
  // Column sweep is a doall; row sweep is pipelined (loop positions are in
  // the transformed nests' coordinates).
  auto scheds = [](const NestDecomposition& nd) {
    std::vector<LoopSched> out;
    for (const auto& la : nd.loops) out.push_back(la.sched);
    return out;
  };
  const auto col = scheds(d.nests[0]);
  const auto row = scheds(d.nests[1]);
  EXPECT_EQ(std::count(col.begin(), col.end(), LoopSched::Distributed), 1);
  EXPECT_EQ(std::count(row.begin(), row.end(), LoopSched::Pipelined), 1);
}

TEST(Decompose, VpentaBlockColumnsAnd3D) {
  // Table 1: F(*, BLOCK, *), A(*, BLOCK).
  const ir::Program prog = vpenta(24);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "A"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Block}));
  EXPECT_EQ(kinds(d, prog, "F"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Block,
                                   DistKind::Serial}));
  // All nests doall on the J loop; barriers eliminated.
  for (const auto& nd : d.nests) {
    EXPECT_TRUE(nd.comm_free);
    EXPECT_EQ(nd.loops[0].sched, LoopSched::Distributed);
    EXPECT_FALSE(nd.barrier_after);
  }
}

TEST(Decompose, ErlebacherPerArrayDecompositions) {
  // Table 1: DUX(*,*,BLOCK), DUY(*,*,BLOCK), DUZ(*,BLOCK,*); input
  // replicated.
  const ir::Program prog = erlebacher(12);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_TRUE(d.arrays[static_cast<size_t>(prog.array_id("U"))].replicated);
  EXPECT_EQ(kinds(d, prog, "DUX"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Serial,
                                   DistKind::Block}));
  EXPECT_EQ(kinds(d, prog, "DUY"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Serial,
                                   DistKind::Block}));
  EXPECT_EQ(kinds(d, prog, "DUZ"),
            (std::vector<DistKind>{DistKind::Serial, DistKind::Block,
                                   DistKind::Serial}));
  // The Z-solves stay fully parallel (no pipelining needed).
  for (const auto& nd : d.nests)
    for (const auto& la : nd.loops) EXPECT_NE(la.sched, LoopSched::Pipelined);
}

TEST(Decompose, Swm256TwoDimensionalBlocks) {
  // Table 1: P(BLOCK, BLOCK).
  const ir::Program prog = swm256(32);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "P"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Block}));
  EXPECT_EQ(d.num_proc_dims, 2);
}

TEST(Decompose, TomcatvBlockRows) {
  // Table 1: AA(BLOCK, *), others aligned. Note the paper-scale size: at
  // tiny sizes the surface-to-volume ratio genuinely favours a 2-D
  // decomposition; the paper's choice emerges at realistic sizes.
  const ir::Program prog = tomcatv(256);
  const ProgramDecomposition d = decompose(prog);
  EXPECT_EQ(kinds(d, prog, "AA"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Serial}));
  EXPECT_EQ(kinds(d, prog, "X"),
            (std::vector<DistKind>{DistKind::Block, DistKind::Serial}));
  // Every nest, including the row-dependent one, executes in parallel.
  for (const auto& nd : d.nests) {
    bool has_doall = false;
    for (const auto& la : nd.loops)
      has_doall |= la.sched == LoopSched::Distributed;
    EXPECT_TRUE(has_doall);
  }
}

TEST(Decompose, BaseDistributesOutermostParallelLoop) {
  const ir::Program prog = tomcatv(24);
  const ProgramDecomposition d = decompose_base(prog);
  EXPECT_EQ(d.num_proc_dims, 1);
  for (size_t a = 0; a < d.arrays.size(); ++a)
    EXPECT_EQ(d.arrays[a].distributed_count(), 0);
  for (const auto& nd : d.nests) {
    EXPECT_TRUE(nd.barrier_after);
    int doalls = 0;
    for (const auto& la : nd.loops)
      doalls += la.sched == LoopSched::Distributed;
    EXPECT_EQ(doalls, 1);
  }
}

TEST(Decompose, EquationOneHolds) {
  // Property: for comm-free nests, sampled iterations satisfy
  // D(F(i)) == G(i) on distributed dimensions for offset-free references.
  const ir::Program prog = figure1(16);
  const ProgramDecomposition d = decompose(prog);
  for (size_t j = 0; j < prog.nests.size(); ++j) {
    if (!d.nests[j].comm_free) continue;
    const ir::LoopNest& nest = d.par[j].nest;
    ir::for_each_iteration(nest, [&](std::span<const ir::Int> iter) {
      const auto g = computation_coords(d, static_cast<int>(j), iter);
      for (const ir::Stmt& s : nest.stmts) {
        if (!s.write) continue;
        const auto idx = s.write->index(iter);
        const auto dx = data_coords(d, s.write->array, idx);
        if (!dx.has_value()) continue;
        for (int p = 0; p < d.num_proc_dims; ++p) {
          if ((*dx)[static_cast<size_t>(p)] < 0 ||
              g[static_cast<size_t>(p)] < 0)
            continue;
          EXPECT_EQ((*dx)[static_cast<size_t>(p)], g[static_cast<size_t>(p)]);
        }
      }
    });
  }
}

TEST(Decompose, GridExtents) {
  EXPECT_EQ(factor_grid(32, 1), (std::vector<int>{32}));
  EXPECT_EQ(factor_grid(32, 2), (std::vector<int>{8, 4}));
  EXPECT_EQ(factor_grid(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(factor_grid(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(factor_grid(1, 2), (std::vector<int>{1, 1}));
}

}  // namespace
}  // namespace dct::decomp
