// Unit and property tests for the exact integer linear algebra substrate.
#include "linalg/int_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace dct::linalg {
namespace {

TEST(CheckedArith, OverflowThrows) {
  EXPECT_THROW(checked_mul(INT64_MAX, 2), Error);
  EXPECT_THROW(checked_add(INT64_MAX, 1), Error);
  EXPECT_THROW(checked_sub(INT64_MIN, 1), Error);
  EXPECT_EQ(checked_mul(1'000'000, 1'000'000), 1'000'000'000'000);
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(Vec{4, -6, 10}), 2);
  EXPECT_EQ(gcd(Vec{}), 0);
}

TEST(ExtGcd, BezoutIdentity) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const Int a = rng.uniform(-1000, 1000);
    const Int b = rng.uniform(-1000, 1000);
    Int x = 0, y = 0;
    const Int g = ext_gcd(a, b, x, y);
    EXPECT_EQ(g, gcd(a, b));
    EXPECT_EQ(a * x + b * y, g);
  }
}

TEST(FloorOps, MatchMathematicalDefinition) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_mod(-7, 2), 1);
  EXPECT_EQ(floor_mod(7, 4), 3);
  EXPECT_THROW(floor_div(1, 0), Error);
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const Int a = rng.uniform(-100, 100);
    const Int b = rng.uniform(1, 20);
    const Int q = floor_div(a, b);
    const Int m = floor_mod(a, b);
    EXPECT_EQ(q * b + m, a);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, b);
  }
}

TEST(IntMatrix, ConstructionAndAccess) {
  IntMatrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(1, 2), 6);
  EXPECT_EQ(m.row(0), (Vec{1, 2, 3}));
  EXPECT_EQ(m.col(1), (Vec{2, 5}));
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 3), Error);
}

TEST(IntMatrix, MulAndTranspose) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{0, 1}, {1, 0}};
  EXPECT_EQ(a * b, (IntMatrix{{2, 1}, {4, 3}}));
  EXPECT_EQ(a.transposed(), (IntMatrix{{1, 3}, {2, 4}}));
  EXPECT_EQ(a * Vec({1, 1}), (Vec{3, 7}));
  EXPECT_EQ(IntMatrix::identity(2) * a, a);
}

TEST(IntMatrix, StackAndSubmatrix) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{5, 6}};
  EXPECT_EQ(a.vstack(b), (IntMatrix{{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_EQ(a.hstack(a).cols(), 4);
  EXPECT_EQ(a.vstack(b).submatrix(1, 3, 0, 2), (IntMatrix{{3, 4}, {5, 6}}));
}

TEST(Rank, Basics) {
  EXPECT_EQ(rank(IntMatrix{{1, 2}, {2, 4}}), 1);
  EXPECT_EQ(rank(IntMatrix{{1, 0}, {0, 1}}), 2);
  EXPECT_EQ(rank(IntMatrix(3, 3)), 0);
  EXPECT_EQ(rank(IntMatrix{{2, 4, 6}, {1, 2, 3}, {0, 0, 1}}), 2);
}

TEST(Determinant, Basics) {
  EXPECT_EQ(determinant(IntMatrix{{2, 0}, {0, 3}}), 6);
  EXPECT_EQ(determinant(IntMatrix{{0, 1}, {1, 0}}), -1);
  EXPECT_EQ(determinant(IntMatrix{{1, 2}, {2, 4}}), 0);
  EXPECT_EQ(determinant(IntMatrix::identity(5)), 1);
  EXPECT_THROW(determinant(IntMatrix(2, 3)), Error);
}

TEST(Hermite, HEqualsUTimesA) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const int r = static_cast<int>(rng.uniform(1, 4));
    const int c = static_cast<int>(rng.uniform(1, 4));
    IntMatrix a(r, c);
    for (int i = 0; i < r; ++i)
      for (int j = 0; j < c; ++j) a.at(i, j) = rng.uniform(-5, 5);
    const HermiteForm hf = hermite_normal_form(a);
    EXPECT_EQ(hf.h, hf.u * a);
    EXPECT_EQ(std::abs(determinant(hf.u)), 1);
    EXPECT_EQ(hf.rank, rank(a));
    // Row echelon: pivot columns strictly increase, pivots positive.
    int last_pivot_col = -1;
    for (int i = 0; i < hf.rank; ++i) {
      int pc = 0;
      while (pc < c && hf.h.at(i, pc) == 0) ++pc;
      ASSERT_LT(pc, c);
      EXPECT_GT(pc, last_pivot_col);
      EXPECT_GT(hf.h.at(i, pc), 0);
      last_pivot_col = pc;
    }
    for (int i = hf.rank; i < r; ++i)
      for (int j = 0; j < c; ++j) EXPECT_EQ(hf.h.at(i, j), 0);
  }
}

TEST(NullSpace, AnnihilatesAndSpans) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const int r = static_cast<int>(rng.uniform(1, 4));
    const int c = static_cast<int>(rng.uniform(1, 5));
    IntMatrix a(r, c);
    for (int i = 0; i < r; ++i)
      for (int j = 0; j < c; ++j) a.at(i, j) = rng.uniform(-4, 4);
    const IntMatrix ns = null_space(a);
    EXPECT_EQ(ns.rows(), c - rank(a));
    for (int i = 0; i < ns.rows(); ++i) {
      const Vec prod = a * ns.row(i);
      for (Int v : prod) EXPECT_EQ(v, 0);
      EXPECT_EQ(gcd(ns.row(i)), 1) << "basis vectors must be primitive";
    }
    if (ns.rows() > 0) {
      EXPECT_EQ(rank(ns), ns.rows());
    }
  }
}

TEST(NullSpace, EdgeCases) {
  EXPECT_EQ(null_space(IntMatrix(0, 3)), IntMatrix::identity(3));
  EXPECT_EQ(null_space(IntMatrix::identity(3)).rows(), 0);
  // A zero matrix has a full kernel.
  EXPECT_EQ(null_space(IntMatrix(2, 3)).rows(), 3);
}

TEST(Solve, ConsistentAndInconsistent) {
  IntMatrix a{{1, 2}, {3, 4}};
  auto sol = solve(a, Vec{5, 11});
  ASSERT_TRUE(sol.has_value());
  const Vec ax = a * sol->x;
  EXPECT_EQ(ax, (Vec{5 * sol->denom, 11 * sol->denom}));

  IntMatrix sing{{1, 2}, {2, 4}};
  EXPECT_FALSE(solve(sing, Vec{1, 0}).has_value());
  auto sol2 = solve(sing, Vec{1, 2});
  ASSERT_TRUE(sol2.has_value());
  EXPECT_EQ(sing * sol2->x, (Vec{sol2->denom, 2 * sol2->denom}));
}

TEST(Solve, RationalSolutionScaled) {
  IntMatrix a{{2}};
  auto sol = solve(a, Vec{1});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->denom, 2);
  EXPECT_EQ(sol->x, (Vec{1}));
}

TEST(UnimodularCompletion, CompletesPrimitiveRows) {
  Rng rng(5);
  int completed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform(2, 5));
    const int k = static_cast<int>(rng.uniform(1, static_cast<Int>(n)));
    IntMatrix rows(k, n);
    for (int i = 0; i < k; ++i)
      for (int j = 0; j < n; ++j) rows.at(i, j) = rng.uniform(-3, 3);
    if (rank(rows) != k) continue;
    IntMatrix w;
    try {
      w = unimodular_completion(rows);
    } catch (const Error&) {
      continue;  // unsaturated lattice: correctly refused
    }
    ++completed;
    ASSERT_EQ(w.rows(), n);
    EXPECT_EQ(std::abs(determinant(w)), 1);
    EXPECT_EQ(w.submatrix(0, k, 0, n), rows);
  }
  EXPECT_GT(completed, 20);
}

TEST(UnimodularCompletion, SingleVector) {
  const IntMatrix w = unimodular_completion(IntMatrix{{2, 3}});
  EXPECT_EQ(std::abs(determinant(w)), 1);
  EXPECT_EQ(w.row(0), (Vec{2, 3}));
  EXPECT_THROW(unimodular_completion(IntMatrix{{2, 4}}), Error);
  EXPECT_THROW(unimodular_completion(IntMatrix{{1, 2}, {2, 4}}), Error);
}

}  // namespace
}  // namespace dct::linalg
