// Golden tests pinning codegen::emit_program for every paper application.
//
// The emitted SPMD pseudocode is the human-auditable face of the whole
// pipeline: loop bounds, owner folds, layout addressing and barrier
// placement all surface here. Pinning the full text catches silent
// changes anywhere in the lowering that the semantic differentials
// cannot see (e.g. a bounds expression that is equivalent on the tested
// sizes but wrong in general).
//
// To regenerate after an intentional change:
//   DCT_UPDATE_GOLDEN=1 ./codegen_golden_test
// then review the diff under tests/golden/ like any other code change.
#include "codegen/codegen.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/apps.hpp"
#include "core/compiler.hpp"

namespace dct::codegen {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DCT_TEST_DIR) + "/golden/" + name + ".txt";
}

void check_golden(const std::string& name, const std::string& got) {
  const std::string path = golden_path(name);
  if (std::getenv("DCT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with DCT_UPDATE_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str()) << "emitted code for " << name
                             << " drifted from " << path
                             << " (regenerate with DCT_UPDATE_GOLDEN=1 if "
                                "the change is intentional)";
}

void check_app(const std::string& name, const ir::Program& prog) {
  for (core::Mode mode :
       {core::Mode::Base, core::Mode::CompDecomp, core::Mode::Full}) {
    const auto cp = core::compile(prog, mode, 4);
    std::string suffix = mode == core::Mode::Base        ? "base"
                         : mode == core::Mode::CompDecomp ? "comp"
                                                          : "full";
    check_golden(name + "_" + suffix + "_p4", emit_program(cp));
  }
}

TEST(CodegenGolden, Figure1) { check_app("figure1", apps::figure1(32, 1)); }
TEST(CodegenGolden, LU) { check_app("lu", apps::lu(32)); }
TEST(CodegenGolden, Stencil5) { check_app("stencil5", apps::stencil5(32, 2)); }
TEST(CodegenGolden, Adi) { check_app("adi", apps::adi(32, 2)); }
TEST(CodegenGolden, Vpenta) { check_app("vpenta", apps::vpenta(32)); }
TEST(CodegenGolden, Erlebacher) {
  check_app("erlebacher", apps::erlebacher(16, 1));
}
TEST(CodegenGolden, Swm256) { check_app("swm256", apps::swm256(32, 2)); }
TEST(CodegenGolden, Tomcatv) { check_app("tomcatv", apps::tomcatv(32, 2)); }

}  // namespace
}  // namespace dct::codegen
