// Differential program fuzzer (tier-1 smoke): seeded random affine
// programs are compiled in all three modes and executed by both engines;
// any divergence from the sequential reference is shrunk to a minimal
// repro and reported with its seed.
//
// Knobs: DCT_FUZZ_SEED (base seed, default 20260807), DCT_FUZZ_COUNT
// (number of programs, default 50 — CI's fuzz-smoke job raises it),
// DCT_FUZZ_REPRO_OUT (write minimized repros to this file for triage).
#include <gtest/gtest.h>

#include <fstream>

#include "support/env.hpp"
#include "verify/progen.hpp"

namespace dct::verify {
namespace {

TEST(Fuzz, GeneratorIsDeterministic) {
  const ir::Program a = generate_program(1234);
  const ir::Program b = generate_program(1234);
  EXPECT_EQ(a.to_string(), b.to_string());
  const ir::Program c = generate_program(1235);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Fuzz, GeneratedProgramsAreInBounds) {
  // Every reference of every generated program must stay inside its
  // array for every executed iteration — the generator's core contract.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const ir::Program prog = generate_program(seed);
    ASSERT_FALSE(prog.nests.empty());
    for (const ir::LoopNest& nest : prog.nests) {
      ir::for_each_iteration(nest, [&](std::span<const linalg::Int> iter) {
        for (const ir::Stmt& stmt : nest.stmts) {
          auto check_ref = [&](const ir::ArrayRef& ref) {
            const linalg::Vec idx = ref.index(iter);
            const ir::ArrayDecl& decl = prog.array(ref.array);
            ASSERT_EQ(idx.size(), decl.dims.size());
            for (size_t k = 0; k < idx.size(); ++k) {
              ASSERT_GE(idx[k], 0) << prog.name;
              ASSERT_LT(idx[k], decl.dims[k]) << prog.name;
            }
          };
          for (const ir::ArrayRef& r : stmt.reads) check_ref(r);
          if (stmt.write) check_ref(*stmt.write);
        }
      });
    }
  }
}

TEST(Fuzz, ShrinkerFindsMinimalRepro) {
  // Drive the shrinker with a synthetic failure predicate ("some
  // statement reads array 0") and check it reaches the minimal program:
  // one nest, one statement, one read.
  const auto reads_a0 =
      [](const ir::Program& p) -> std::optional<std::string> {
    for (const ir::LoopNest& nest : p.nests)
      for (const ir::Stmt& stmt : nest.stmts)
        for (const ir::ArrayRef& r : stmt.reads)
          if (r.array == 0) return "reads a0";
    return std::nullopt;
  };
  // Find a seed whose program trips the predicate with some redundancy.
  for (std::uint64_t seed = 0;; ++seed) {
    ASSERT_LT(seed, 500u) << "no generated program reads array 0?";
    const ir::Program prog = generate_program(seed);
    if (!reads_a0(prog)) continue;
    const ir::Program small = shrink_program(prog, reads_a0);
    ASSERT_TRUE(reads_a0(small));  // shrinking preserved the failure
    EXPECT_EQ(small.nests.size(), 1u);
    EXPECT_EQ(small.nests[0].stmts.size(), 1u);
    size_t reads = 0;
    for (const ir::ArrayRef& r : small.nests[0].stmts[0].reads)
      reads += r.array == 0 ? 1 : 0;
    EXPECT_EQ(small.nests[0].stmts[0].reads.size(), 1u);
    EXPECT_EQ(reads, 1u);
    EXPECT_EQ(small.time_steps, 1);
    break;
  }
}

TEST(Fuzz, DifferentialSweepFindsNoDivergence) {
  const std::uint64_t base =
      static_cast<std::uint64_t>(env_int("DCT_FUZZ_SEED", 20260807));
  const long count = env_int("DCT_FUZZ_COUNT", 50);
  const std::string repro_out = env_str("DCT_FUZZ_REPRO_OUT", "");
  long divergences = 0;
  for (long i = 0; i < count; ++i) {
    const std::optional<Divergence> d = fuzz_one(base + static_cast<std::uint64_t>(i));
    if (d) {
      ++divergences;
      ADD_FAILURE() << "seed " << d->seed << ": " << d->detail
                    << "\nminimal repro:\n" << d->program.to_string();
      if (!repro_out.empty()) {
        std::ofstream out(repro_out, std::ios::app);
        out << "seed " << d->seed << ": " << d->detail
            << "\nminimal repro:\n" << d->program.to_string() << "\n";
      }
    }
  }
  EXPECT_EQ(divergences, 0) << "replay with DCT_FUZZ_SEED=" << base;
}

}  // namespace
}  // namespace dct::verify
