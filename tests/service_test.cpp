// Tests for the dctd serving layer (src/service/): the content-addressed
// compilation cache (keys, LRU bound, single-flight, failure paths), the
// request server's crash boundaries and deadlines, the HPF request
// bridge, the wire protocol, and the metrics dump shape.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/diagnostics.hpp"

namespace dct {
namespace {

using service::CompileCache;
using service::Engine;
using service::Request;
using service::Response;
using service::Server;
using service::ServerOptions;

ServerOptions small_server(int workers = 2) {
  ServerOptions o;
  o.workers = workers;
  o.queue_cap = 16;
  o.cache_cap = 8;
  o.spot_check_every = 1;  // spot-check every hit: more teeth per test
  return o;
}

Request req(const std::string& app, int procs = 4,
            Engine engine = Engine::Simulate) {
  Request r;
  r.id = app;
  r.app = app;
  r.size = 24;
  r.procs = procs;
  r.engine = engine;
  return r;
}

// ---------------------------------------------------------------- cache

TEST(CacheKey, DistinguishesEveryInput) {
  const core::CompileOptions opts;
  const ir::Program lu = apps::lu(24);
  const std::string base =
      service::cache_key(lu, core::Mode::Full, 4, opts);
  // Same inputs -> same key (the property caching rests on).
  EXPECT_EQ(base, service::cache_key(lu, core::Mode::Full, 4, opts));

  std::set<std::string> keys = {base};
  keys.insert(service::cache_key(lu, core::Mode::Base, 4, opts));
  keys.insert(service::cache_key(lu, core::Mode::Full, 8, opts));
  keys.insert(service::cache_key(apps::lu(32), core::Mode::Full, 4, opts));
  keys.insert(service::cache_key(apps::adi(24), core::Mode::Full, 4, opts));
  core::CompileOptions strat = opts;
  strat.strategy = layout::AddrStrategy::Naive;
  keys.insert(service::cache_key(lu, core::Mode::Full, 4, strat));
  core::CompileOptions val = opts;
  val.validate = true;
  keys.insert(service::cache_key(lu, core::Mode::Full, 4, val));
  keys.insert(service::cache_key(lu, core::Mode::Full, 4, opts, "salt"));
  EXPECT_EQ(keys.size(), 8u) << "every varied input must change the key";
}

TEST(CacheKey, TraceKnobsDoNotChangeTheKey) {
  // Trace output does not affect the compiled artifact, so it must not
  // fragment the cache.
  const ir::Program prog = apps::figure1(16, 2);
  core::CompileOptions a, b;
  b.trace = true;
  b.trace_path = "/tmp/somewhere.jsonl";
  EXPECT_EQ(service::cache_key(prog, core::Mode::Full, 4, a),
            service::cache_key(prog, core::Mode::Full, 4, b));
}

TEST(Cache, HitMissAndLruEviction) {
  CompileCache cache(2);
  const auto compile_app = [](const ir::Program& p) {
    return std::make_shared<const core::CompiledProgram>(
        core::compile(p, core::Mode::Full, 2, core::CompileOptions{}));
  };
  const core::CompileOptions opts;
  const ir::Program a = apps::figure1(16, 2), b = apps::lu(16),
                    c = apps::adi(16, 2);
  const std::string ka = service::cache_key(a, core::Mode::Full, 2, opts);
  const std::string kb = service::cache_key(b, core::Mode::Full, 2, opts);
  const std::string kc = service::cache_key(c, core::Mode::Full, 2, opts);

  EXPECT_FALSE(cache.get_or_compile(ka, [&] { return compile_app(a); }).hit);
  EXPECT_FALSE(cache.get_or_compile(kb, [&] { return compile_app(b); }).hit);
  EXPECT_TRUE(cache.get_or_compile(ka, [&] { return compile_app(a); }).hit);

  // Inserting c evicts the LRU entry — b, since a was just touched.
  EXPECT_FALSE(cache.get_or_compile(kc, [&] { return compile_app(c); }).hit);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.lookup(ka), nullptr);
  EXPECT_EQ(cache.lookup(kb), nullptr);
  EXPECT_NE(cache.lookup(kc), nullptr);
}

TEST(Cache, FailedCompileLeavesNoEntryAndRetries) {
  CompileCache cache(4);
  int calls = 0;
  const auto failing = [&calls]() -> CompileCache::Compiled {
    ++calls;
    throw Error(Error::Code::kUnsupportedConfig, "nope");
  };
  EXPECT_THROW(cache.get_or_compile("k", failing), Error);
  EXPECT_EQ(cache.stats().failures, 1);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The next request for the same key retries (and may succeed).
  EXPECT_THROW(cache.get_or_compile("k", failing), Error);
  EXPECT_EQ(calls, 2);
}

TEST(Cache, SingleFlightCompilesOnce) {
  CompileCache cache(8);
  const ir::Program prog = apps::lu(24);
  std::atomic<int> compiles{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<CompileCache::Compiled> got(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<size_t>(t)] =
          cache
              .get_or_compile("same-key",
                              [&]() -> CompileCache::Compiled {
                                compiles.fetch_add(1);
                                return std::make_shared<
                                    const core::CompiledProgram>(
                                    core::compile(prog, core::Mode::Full, 4,
                                                  core::CompileOptions{}));
                              })
              .program;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1) << "single-flight must dedup compiles";
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[static_cast<size_t>(t)].get(), got[0].get())
        << "every waiter must receive the same artifact";
  const CompileCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits + s.inflight_dedup, kThreads - 1);
}

// --------------------------------------------------------------- server

TEST(Server, ServesAndCaches) {
  Server server(small_server());
  const Response r1 = server.call(req("lu"));
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_GT(r1.cycles, 0);
  EXPECT_GT(r1.statements, 0);

  const Response r2 = server.call(req("lu"));
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r1.key_hash, r2.key_hash);
  // Identical request -> bit-identical results, cached or not.
  EXPECT_EQ(r1.values_hash, r2.values_hash);
  EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(Server, EnginesAgreeOnValues) {
  // The simulator and the native backend run the same compiled artifact
  // and must produce bit-identical array results.
  Server server(small_server());
  const Response sim = server.call(req("stencil5", 2, Engine::Simulate));
  const Response nat = server.call(req("stencil5", 2, Engine::Native));
  ASSERT_TRUE(sim.ok) << sim.error;
  ASSERT_TRUE(nat.ok) << nat.error;
  EXPECT_TRUE(nat.cache_hit) << "same compile key regardless of engine";
  EXPECT_EQ(sim.values_hash, nat.values_hash);
}

TEST(Server, FaultIsolation) {
  // A crashing request, a malformed request and a deadline trip must each
  // produce a structured error while healthy requests keep flowing.
  Server server(small_server(4));
  std::vector<std::future<Response>> futs;
  futs.push_back(server.submit(req("crash")));
  futs.push_back(server.submit(req("nosuch-app")));
  Request dead = req("adi");
  dead.deadline_ms = 0.0001;  // trips in the queue, long before compile
  futs.push_back(server.submit(dead));
  Request bad_procs = req("lu");
  bad_procs.procs = 65;
  futs.push_back(server.submit(bad_procs));
  for (int i = 0; i < 6; ++i) futs.push_back(server.submit(req("lu")));

  const Response crash = futs[0].get();
  EXPECT_FALSE(crash.ok);
  EXPECT_EQ(crash.error_code, to_string(Error::Code::kFault));

  const Response unknown = futs[1].get();
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error_code, to_string(Error::Code::kInvalidArgument));

  const Response deadline = futs[2].get();
  EXPECT_FALSE(deadline.ok);
  EXPECT_EQ(deadline.error_code,
            to_string(Error::Code::kDeadlineExceeded));

  const Response procs = futs[3].get();
  EXPECT_FALSE(procs.ok);
  EXPECT_EQ(procs.error_code, to_string(Error::Code::kGeneric));

  for (size_t i = 4; i < futs.size(); ++i) {
    const Response r = futs[i].get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_EQ(server.metrics().errors(), 4);
  EXPECT_EQ(server.metrics().ok(), 6);
}

TEST(Server, HpfDirectiveRequests) {
  Server server(small_server());
  Request plain = req("adi");
  Request directed = req("adi");
  directed.hpf = "!HPF$ DISTRIBUTE X(*, BLOCK)";
  const Response a = server.call(plain);
  const Response b = server.call(directed);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  // The directive text salts the cache key: these are distinct artifacts.
  EXPECT_NE(a.key_hash, b.key_hash);
  EXPECT_FALSE(b.cache_hit);
  // Results stay bit-identical under a different data decomposition.
  EXPECT_EQ(a.values_hash, b.values_hash);

  Request malformed = req("adi");
  malformed.hpf = "!HPF$ DISTRIBUTE nosucharray(BLOCK)";
  const Response c = server.call(malformed);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.error_code, to_string(Error::Code::kInvalidArgument));
}

TEST(Server, DrainWaitsForAllAccepted) {
  Server server(small_server(2));
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    server.submit_async(req(i % 2 ? "lu" : "figure1"),
                        [&done](Response) { done.fetch_add(1); });
  server.drain();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(Server, MetricsDumpShape) {
  Server server(small_server());
  (void)server.call(req("lu"));
  (void)server.call(req("lu"));
  (void)server.call(req("nosuch-app"));
  server.drain();
  const std::string dump = server.metrics_text();
  for (const char* needle :
       {"dctd_requests_total 3", "dctd_requests_ok 2",
        "dctd_requests_error 1", "dctd_cache_hits 1", "dctd_cache_misses 1",
        "dctd_queue_depth 0",
        "dctd_latency_ms{stage=\"total\",quantile=\"p99\"}"})
    EXPECT_NE(dump.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n"
        << dump;
}

// ------------------------------------------------------------- protocol

TEST(Protocol, ParsesRequestsAndCommands) {
  const service::ParsedLine r = service::parse_line(
      R"({"id":"x", "app":"lu", "size": 32, "procs": 8, "mode": "base",)"
      R"( "engine": "native", "deadline_ms": 12.5, "seed": 7})");
  ASSERT_EQ(r.kind, service::ParsedLine::Kind::kRequest);
  EXPECT_EQ(r.request.id, "x");
  EXPECT_EQ(r.request.app, "lu");
  EXPECT_EQ(r.request.size, 32);
  EXPECT_EQ(r.request.procs, 8);
  EXPECT_EQ(r.request.mode, core::Mode::Base);
  EXPECT_EQ(r.request.engine, Engine::Native);
  EXPECT_DOUBLE_EQ(r.request.deadline_ms, 12.5);
  EXPECT_EQ(r.request.seed, 7u);

  EXPECT_EQ(service::parse_line(R"({"cmd":"metrics"})").kind,
            service::ParsedLine::Kind::kMetrics);
  EXPECT_EQ(service::parse_line(R"({"cmd":"drain"})").kind,
            service::ParsedLine::Kind::kDrain);
  EXPECT_EQ(service::parse_line(R"({"cmd":"shutdown"})").kind,
            service::ParsedLine::Kind::kShutdown);
}

TEST(Protocol, RejectsMalformedLines) {
  for (const char* line :
       {"", "not json", "{", R"({"app" "lu"})", R"({"app":"lu")",
        R"({"app":"lu"} trailing)", R"({"size": 32})",
        R"({"app":"lu", "size": "big"})", R"({"app":"lu", "procs": 1.5})",
        R"({"cmd":"reboot"})", R"({"app":"lu", "mode":"turbo"})",
        R"({"app":"lu", "engine":"gpu"})"}) {
    EXPECT_THROW((void)service::parse_line(line), Error)
        << "accepted: " << line;
  }
}

TEST(Protocol, ResponseJsonRoundTrips) {
  Response resp;
  resp.id = "he said \"hi\"\n";
  resp.ok = false;
  resp.error_code = "fault";
  resp.error = "tab\there";
  const std::string json = service::to_json(resp);
  // Our own parser must accept our own output (escapes included).
  const auto kv = service::parse_flat_json(json);
  EXPECT_EQ(kv.at("id"), resp.id);
  EXPECT_EQ(kv.at("ok"), "false");
  EXPECT_EQ(kv.at("error"), resp.error);
}

}  // namespace
}  // namespace dct
