// Tests for the SPMD execution engine: determinism, clock/sync behaviour,
// page homing, and failure injection.
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "support/diagnostics.hpp"

namespace dct::runtime {
namespace {

using core::Mode;

TEST(Executor, Deterministic) {
  const ir::Program prog = apps::stencil5(24, 2);
  const auto cp = core::compile(prog, Mode::Full, 8);
  const auto a = simulate(cp, machine::MachineConfig::dash(8));
  const auto b = simulate(cp, machine::MachineConfig::dash(8));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.mem.accesses, b.mem.accesses);
}

TEST(Executor, ProcMismatchRejected) {
  const auto cp = core::compile(apps::figure1(16, 1), Mode::Base, 4);
  EXPECT_THROW(simulate(cp, machine::MachineConfig::dash(8)), Error);
}

TEST(Executor, SingleProcessorHasNoSyncCost) {
  const auto cp = core::compile(apps::figure1(32, 2), Mode::Base, 1);
  const auto r = simulate(cp, machine::MachineConfig::dash(1));
  EXPECT_EQ(r.barrier_cycles, 0);
  EXPECT_EQ(r.wait_cycles, 0);
}

TEST(Executor, MoreProcessorsNotSlowerOnParallelCode) {
  runtime::ExecOptions opts;
  opts.collect_values = false;
  const ir::Program prog = apps::figure1(128, 2);
  double prev = 1e300;
  for (int p : {1, 2, 4, 8}) {
    const auto r = simulate(core::compile(prog, Mode::Full, p),
                            machine::MachineConfig::dash(p), opts);
    EXPECT_LT(r.cycles, prev * 1.05) << "p=" << p;
    prev = r.cycles;
  }
}

TEST(Executor, PipelineWaitsAreVisible) {
  // ADI's row sweep pipelines: cross-processor waits must appear.
  const auto cp = core::compile(apps::adi(48, 2), Mode::Full, 8);
  const auto r = simulate(cp, machine::MachineConfig::dash(8));
  EXPECT_GT(r.wait_cycles, 0);
}

TEST(Executor, StatementCountMatchesIterationSpace) {
  const ir::Program prog = apps::lu(12);
  const auto cp = core::compile(prog, Mode::Base, 2);
  const auto r = simulate(cp, machine::MachineConfig::dash(2));
  // LU: divide once per (I1,I2) pair, update once per (I1,I2,I3).
  long long expected = 0;
  for (linalg::Int i1 = 0; i1 <= 10; ++i1) {
    const linalg::Int span = 11 - i1;
    expected += span + span * span;
  }
  EXPECT_EQ(r.statements, expected);
}

TEST(Executor, ReferenceMatchesSimulatorOnOneProc) {
  const ir::Program prog = apps::tomcatv(18, 2);
  const auto reference = run_reference(prog);
  const auto r = simulate(core::compile(prog, Mode::Base, 1),
                          machine::MachineConfig::dash(1));
  EXPECT_EQ(reference, r.values);
}

TEST(Executor, NonTransformableArrayKeptInPlace) {
  // Section 4.1.3 failure injection: an aliased/reshaped array must not
  // be restructured, and the program must still run correctly.
  ir::ProgramBuilder pb("legality");
  const int a = pb.array("A", {32, 32}, 8, /*transformable=*/false);
  ir::LoopNest& nest = pb.nest("touch", 1);
  nest.loops.push_back(ir::loop("J", ir::cst(0), ir::cst(31)));
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(31)));
  ir::Stmt s;
  s.write = ir::simple_ref(a, 2, {{1, 0}, {0, 0}});
  s.reads = {ir::simple_ref(a, 2, {{1, 0}, {0, 0}})};
  s.eval = [](std::span<const double> r) { return r[0] * 2.0; };
  nest.stmts.push_back(std::move(s));
  const ir::Program prog = pb.build();

  const auto cp = core::compile(prog, Mode::Full, 4);
  EXPECT_TRUE(cp.arrays[0].layout.is_identity());
  const auto reference = run_reference(prog);
  const auto r = simulate(cp, machine::MachineConfig::dash(4));
  EXPECT_EQ(reference, r.values);
}

TEST(Executor, DegenerateSizes) {
  // 1x1 arrays, single-iteration loops, more processors than iterations.
  ir::ProgramBuilder pb("tiny");
  const int a = pb.array("A", {1, 1}, 8);
  ir::LoopNest& nest = pb.nest("one", 1);
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(0)));
  ir::Stmt s;
  s.write = ir::simple_ref(a, 1, {{0, 0}, {-1, 0}});
  s.reads = {ir::simple_ref(a, 1, {{0, 0}, {-1, 0}})};
  s.eval = [](std::span<const double> r) { return r[0] + 1.0; };
  nest.stmts.push_back(std::move(s));
  const ir::Program prog = pb.build();
  for (core::Mode mode : {Mode::Base, Mode::CompDecomp, Mode::Full}) {
    const auto cp = core::compile(prog, mode, 8);
    const auto r = simulate(cp, machine::MachineConfig::dash(8));
    EXPECT_EQ(r.statements, 1);
  }
}

TEST(Executor, AddressStrategyChangesTimeNotValues) {
  const ir::Program prog = apps::lu(24);
  const auto naive = simulate(
      core::compile(prog, Mode::Full, 4, layout::AddrStrategy::Naive),
      machine::MachineConfig::dash(4));
  const auto opt = simulate(
      core::compile(prog, Mode::Full, 4, layout::AddrStrategy::Optimized),
      machine::MachineConfig::dash(4));
  EXPECT_EQ(naive.values, opt.values);
  EXPECT_GT(naive.cycles, opt.cycles);  // Section 4.3: overhead matters
}

}  // namespace
}  // namespace dct::runtime
