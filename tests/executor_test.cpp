// Tests for the SPMD execution engine: determinism, clock/sync behaviour,
// page homing, and failure injection.
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "support/diagnostics.hpp"

namespace dct::runtime {
namespace {

using core::Mode;

TEST(Executor, Deterministic) {
  const ir::Program prog = apps::stencil5(24, 2);
  const auto cp = core::compile(prog, Mode::Full, 8);
  const auto a = simulate(cp, machine::MachineConfig::dash(8));
  const auto b = simulate(cp, machine::MachineConfig::dash(8));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.mem.accesses, b.mem.accesses);
}

TEST(Executor, ProcMismatchRejected) {
  const auto cp = core::compile(apps::figure1(16, 1), Mode::Base, 4);
  EXPECT_THROW(simulate(cp, machine::MachineConfig::dash(8)), Error);
}

TEST(Executor, SingleProcessorHasNoSyncCost) {
  const auto cp = core::compile(apps::figure1(32, 2), Mode::Base, 1);
  const auto r = simulate(cp, machine::MachineConfig::dash(1));
  EXPECT_EQ(r.barrier_cycles, 0);
  EXPECT_EQ(r.wait_cycles, 0);
}

TEST(Executor, MoreProcessorsNotSlowerOnParallelCode) {
  runtime::ExecOptions opts;
  opts.collect_values = false;
  const ir::Program prog = apps::figure1(128, 2);
  double prev = 1e300;
  for (int p : {1, 2, 4, 8}) {
    const auto r = simulate(core::compile(prog, Mode::Full, p),
                            machine::MachineConfig::dash(p), opts);
    EXPECT_LT(r.cycles, prev * 1.05) << "p=" << p;
    prev = r.cycles;
  }
}

TEST(Executor, PipelineWaitsAreVisible) {
  // ADI's row sweep pipelines: cross-processor waits must appear.
  const auto cp = core::compile(apps::adi(48, 2), Mode::Full, 8);
  const auto r = simulate(cp, machine::MachineConfig::dash(8));
  EXPECT_GT(r.wait_cycles, 0);
}

TEST(Executor, StatementCountMatchesIterationSpace) {
  const ir::Program prog = apps::lu(12);
  const auto cp = core::compile(prog, Mode::Base, 2);
  const auto r = simulate(cp, machine::MachineConfig::dash(2));
  // LU: divide once per (I1,I2) pair, update once per (I1,I2,I3).
  long long expected = 0;
  for (linalg::Int i1 = 0; i1 <= 10; ++i1) {
    const linalg::Int span = 11 - i1;
    expected += span + span * span;
  }
  EXPECT_EQ(r.statements, expected);
}

TEST(Executor, ReferenceMatchesSimulatorOnOneProc) {
  const ir::Program prog = apps::tomcatv(18, 2);
  const auto reference = run_reference(prog);
  const auto r = simulate(core::compile(prog, Mode::Base, 1),
                          machine::MachineConfig::dash(1));
  EXPECT_EQ(reference, r.values);
}

TEST(Executor, NonTransformableArrayKeptInPlace) {
  // Section 4.1.3 failure injection: an aliased/reshaped array must not
  // be restructured, and the program must still run correctly.
  ir::ProgramBuilder pb("legality");
  const int a = pb.array("A", {32, 32}, 8, /*transformable=*/false);
  ir::LoopNest& nest = pb.nest("touch", 1);
  nest.loops.push_back(ir::loop("J", ir::cst(0), ir::cst(31)));
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(31)));
  ir::Stmt s;
  s.write = ir::simple_ref(a, 2, {{1, 0}, {0, 0}});
  s.reads = {ir::simple_ref(a, 2, {{1, 0}, {0, 0}})};
  s.eval = [](std::span<const double> r) { return r[0] * 2.0; };
  nest.stmts.push_back(std::move(s));
  const ir::Program prog = pb.build();

  const auto cp = core::compile(prog, Mode::Full, 4);
  EXPECT_TRUE(cp.arrays[0].layout.is_identity());
  const auto reference = run_reference(prog);
  const auto r = simulate(cp, machine::MachineConfig::dash(4));
  EXPECT_EQ(reference, r.values);
}

TEST(Executor, DegenerateSizes) {
  // 1x1 arrays, single-iteration loops, more processors than iterations.
  ir::ProgramBuilder pb("tiny");
  const int a = pb.array("A", {1, 1}, 8);
  ir::LoopNest& nest = pb.nest("one", 1);
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(0)));
  ir::Stmt s;
  s.write = ir::simple_ref(a, 1, {{0, 0}, {-1, 0}});
  s.reads = {ir::simple_ref(a, 1, {{0, 0}, {-1, 0}})};
  s.eval = [](std::span<const double> r) { return r[0] + 1.0; };
  nest.stmts.push_back(std::move(s));
  const ir::Program prog = pb.build();
  for (core::Mode mode : {Mode::Base, Mode::CompDecomp, Mode::Full}) {
    const auto cp = core::compile(prog, mode, 8);
    const auto r = simulate(cp, machine::MachineConfig::dash(8));
    EXPECT_EQ(r.statements, 1);
  }
}

TEST(Executor, BuffersSizedFromProgramNotFixedCaps) {
  // Regression: the executor's subscript and operand scratch buffers are
  // sized from the program (deepest array rank, widest read list), not
  // from fixed capacities. A rank-9 array and a 17-operand statement
  // overflow the old scratch(8)/vals(16) buffers.
  ir::ProgramBuilder pb("wide");
  const int a = pb.array("A", {2, 2, 2, 2, 2, 2, 2, 2, 2}, 8);
  const int b = pb.array("B", {32}, 8);
  ir::LoopNest& nest = pb.nest("wide", 1);
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(1)));

  ir::Stmt deep;  // rank-9 write A[I,1,0,1,0,1,0,1,0] = A[I,...] * 2
  std::vector<std::pair<int, linalg::Int>> dims9 = {
      {0, 0}, {-1, 1}, {-1, 0}, {-1, 1}, {-1, 0},
      {-1, 1}, {-1, 0}, {-1, 1}, {-1, 0}};
  deep.write = ir::simple_ref(a, 1, dims9);
  deep.reads = {ir::simple_ref(a, 1, dims9)};
  deep.eval = [](std::span<const double> r) { return r[0] * 2.0; };
  nest.stmts.push_back(std::move(deep));

  ir::Stmt wide;  // 17 reads of B feeding one write
  wide.write = ir::simple_ref(b, 1, {{0, 0}});
  for (int k = 0; k < 17; ++k)
    wide.reads.push_back(ir::simple_ref(b, 1, {{0, static_cast<Int>(k % 3)}}));
  wide.eval = [](std::span<const double> r) {
    double s = 0;
    for (double v : r) s += v;
    return s;
  };
  nest.stmts.push_back(std::move(wide));
  const ir::Program prog = pb.build();

  const auto reference = run_reference(prog);
  for (const Mode mode : {Mode::Base, Mode::Full}) {
    const auto cp = core::compile(prog, mode, 2);
    const auto r = simulate(cp, machine::MachineConfig::dash(2));
    EXPECT_EQ(r.values, reference) << core::to_string(mode);
  }
}

TEST(Executor, RejectsProcessorCountsBeyondInt8Writers) {
  // The dataflow state records the last writer in an int8; simulate must
  // refuse processor counts that cannot be represented rather than wrap —
  // with a structured kUnsupportedConfig code so the sweep records a
  // skipped cell instead of a fault.
  const ir::Program prog = apps::figure1(16, 1);
  const auto cp = core::compile(prog, Mode::Base, 200);
  try {
    simulate(cp, machine::MachineConfig::dash(200));
    FAIL() << "expected rejection of 200 processors";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kUnsupportedConfig);
    EXPECT_NE(std::string(e.what()).find("127"), std::string::npos);
  }
}

TEST(Executor, DeadlineCancelsRunawayNest) {
  // A runaway simulation must stop at a cancellation poll, in both
  // engines, with the deadline's structured code.
  const ir::Program prog = apps::stencil5(96, 4);
  const auto cp = core::compile(prog, Mode::Full, 4);
  for (int fast : {1, 0}) {
    ExecOptions opts;
    opts.fast_exec = fast;
    opts.cancel = support::CancelToken::with_deadline_ms(0);  // expired
    try {
      simulate(cp, machine::MachineConfig::dash(4), opts);
      FAIL() << "expected deadline trip (fast_exec=" << fast << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Error::Code::kDeadlineExceeded);
    }
  }
}

TEST(Executor, ExplicitCancellationStopsSimulation) {
  const ir::Program prog = apps::figure1(32, 2);
  const auto cp = core::compile(prog, Mode::Base, 2);
  ExecOptions opts;
  opts.cancel = support::CancelToken::make();
  opts.cancel.cancel();
  EXPECT_THROW(simulate(cp, machine::MachineConfig::dash(2), opts), Error);
  // An inert token costs nothing and changes nothing.
  const auto plain = simulate(cp, machine::MachineConfig::dash(2));
  const auto with_token =
      simulate(cp, machine::MachineConfig::dash(2),
               [] {
                 ExecOptions o;
                 o.cancel = support::CancelToken::with_deadline_ms(60000);
                 return o;
               }());
  EXPECT_EQ(plain.cycles, with_token.cycles);
  EXPECT_EQ(plain.values, with_token.values);
}

TEST(Executor, AddressStrategyChangesTimeNotValues) {
  const ir::Program prog = apps::lu(24);
  const auto naive = simulate(
      core::compile(prog, Mode::Full, 4, layout::AddrStrategy::Naive),
      machine::MachineConfig::dash(4));
  const auto opt = simulate(
      core::compile(prog, Mode::Full, 4, layout::AddrStrategy::Optimized),
      machine::MachineConfig::dash(4));
  EXPECT_EQ(naive.values, opt.values);
  EXPECT_GT(naive.cycles, opt.cycles);  // Section 4.3: overhead matters
}

}  // namespace
}  // namespace dct::runtime
