// Tests for the incremental address walkers and the fast execution engine:
// the walker must agree with Layout::linearize at every step (including
// across strip boundaries and for negative inner-loop coefficients), and
// the fast engine must be bit-identical to the interpreter on every
// application under every compilation mode.
#include "runtime/walker.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace dct::runtime {
namespace {

using core::Mode;
using layout::Layout;

/// Evaluate the affine subscripts of `ref` at `iter` and linearize them
/// through the layout — the address the interpreter would produce.
Int reference_addr(const core::CompiledRef& ref, const Layout& lay,
                   std::span<const Int> iter) {
  std::vector<Int> subs(static_cast<size_t>(ref.rank));
  const int depth = static_cast<int>(iter.size());
  for (int r = 0; r < ref.rank; ++r) {
    Int v = ref.offsets[static_cast<size_t>(r)];
    for (int k = 0; k < depth; ++k)
      v += ref.coeffs[static_cast<size_t>(r) * static_cast<size_t>(depth) +
                      static_cast<size_t>(k)] *
           iter[static_cast<size_t>(k)];
    subs[static_cast<size_t>(r)] = v;
  }
  return lay.linearize(subs);
}

/// Walk the innermost loop over [0, trips) from a random starting point and
/// compare the walker against subscript evaluation + linearize every step.
void check_walk(const core::CompiledRef& ref, const Layout& lay, int depth,
                std::span<const Int> start, Int trips) {
  RefWalker w;
  ASSERT_TRUE(w.build(ref, lay, depth));
  std::vector<Int> iter(start.begin(), start.end());
  w.init(iter);
  for (Int i = 0; i < trips; ++i) {
    ASSERT_EQ(w.addr(), reference_addr(ref, lay, iter))
        << "layout " << lay.to_string() << " at step " << i;
    ++iter[static_cast<size_t>(depth - 1)];
    w.step();
  }
}

TEST(Walker, MatchesLinearizeOnRandomLayouts) {
  Rng rng(20260807);
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Random affine reference first: its subscript span on the walked
    // (innermost) loop decides how big each extent must be, now that
    // linearize rejects out-of-range indices on both paths.
    const int rank = static_cast<int>(rng.uniform(1, 3));
    const int depth = static_cast<int>(rng.uniform(1, 3));
    const Int trips = rng.uniform(8, 40);
    core::CompiledRef ref;
    ref.rank = rank;
    ref.coeffs.assign(static_cast<size_t>(rank * depth), 0);
    ref.offsets.assign(static_cast<size_t>(rank), 0);
    std::vector<Int> start(static_cast<size_t>(depth), 0);
    for (int k = 0; k + 1 < depth; ++k)
      start[static_cast<size_t>(k)] = rng.uniform(0, 4);
    std::vector<Int> dims;
    for (int r = 0; r < rank; ++r) {
      Int min_sub = 0;
      Int max_sub = 0;
      for (int k = 0; k < depth; ++k) {
        const Int c = rng.uniform(-2, 2);
        ref.coeffs[static_cast<size_t>(r * depth + k)] = c;
        const Int hi = k == depth - 1 ? trips : start[static_cast<size_t>(k)];
        min_sub += std::min<Int>(0, c * hi);
        max_sub += std::max<Int>(0, c * hi);
      }
      // Offset lifts the minimum to zero; the extent covers the whole
      // span plus slack so strip boundaries land unevenly.
      ref.offsets[static_cast<size_t>(r)] = -min_sub;
      dims.push_back(max_sub - min_sub + rng.uniform(4, 12));
    }
    Layout lay = Layout::identity(dims);

    // Random sequence of the Section 4.2 primitives: strip-mines in the
    // BLOCK / CYCLIC / BLOCK-CYCLIC shapes, interleaved with permutations.
    const int nops = static_cast<int>(rng.uniform(0, 3));
    for (int op = 0; op < nops; ++op) {
      if (rng.uniform(0, 2) != 0) {
        const int d =
            static_cast<int>(rng.uniform(0, static_cast<int>(lay.dims().size()) - 1));
        lay.apply(layout::StripMine{d, rng.uniform(2, 6)});
      } else {
        std::vector<int> perm(lay.dims().size());
        for (size_t k = 0; k < perm.size(); ++k) perm[k] = static_cast<int>(k);
        for (size_t k = perm.size(); k > 1; --k)
          std::swap(perm[k - 1],
                    perm[static_cast<size_t>(rng.uniform(0, static_cast<int>(k) - 1))]);
        lay.apply(layout::Permute{perm});
      }
    }
    if (!lay.all_simple()) continue;  // nested strips may break divisibility

    check_walk(ref, lay, depth, start, trips);
    ++checked;
  }
  EXPECT_GT(checked, 200);  // the skip path must stay the exception
}

TEST(Walker, StepNJumpsMatchSingleSteps) {
  // step_n(n) powers the native backend's restricted walks: jumping the
  // inner loop by a gap must land on exactly the address n single steps
  // reach, across strip boundaries included.
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Int> dims{rng.uniform(24, 48), rng.uniform(8, 16)};
    Layout lay = Layout::identity(dims);
    lay.apply(layout::StripMine{0, rng.uniform(2, 6)});
    if (rng.uniform(0, 1) != 0) lay.apply(layout::Permute{{1, 0, 2}});
    if (!lay.all_simple()) continue;

    core::CompiledRef ref;
    ref.rank = 2;
    ref.coeffs = {0, 1, 1, 0};  // A(i1, i0)
    ref.offsets = {0, 0};
    RefWalker jumper;
    RefWalker stepper;
    ASSERT_TRUE(jumper.build(ref, lay, 2));
    ASSERT_TRUE(stepper.build(ref, lay, 2));
    const std::vector<Int> start{rng.uniform(0, dims[1] - 1), 0};
    jumper.init(start);
    stepper.init(start);
    Int pos = 0;
    while (true) {
      const Int gap = rng.uniform(1, 7);
      if (pos + gap >= dims[0]) break;
      for (Int s = 0; s < gap; ++s) stepper.step();
      jumper.step_n(gap);
      pos += gap;
      ASSERT_EQ(jumper.addr(), stepper.addr())
          << "layout " << lay.to_string() << " at i1=" << pos;
      std::vector<Int> iter{start[0], pos};
      ASSERT_EQ(jumper.addr(), reference_addr(ref, lay, iter));
    }
  }
}

TEST(Walker, DerivedLayoutsAcrossDistributions) {
  // The Section 4.2 layouts the executor actually sees: BLOCK, CYCLIC and
  // BLOCK-CYCLIC on each dimension of a 2-D array, walked across many
  // strip boundaries.
  const std::vector<int> grid = {4};
  for (const decomp::DistKind kind :
       {decomp::DistKind::Block, decomp::DistKind::Cyclic,
        decomp::DistKind::BlockCyclic}) {
    for (int dim = 0; dim < 2; ++dim) {
      ir::ArrayDecl decl;
      decl.name = "A";
      decl.dims = {33, 19};  // non-divisible extents: ceil padding
      decomp::ArrayDecomposition ad;
      ad.dims.resize(2);
      ad.dims[static_cast<size_t>(dim)].kind = kind;
      ad.dims[static_cast<size_t>(dim)].proc_dim = 0;
      ad.dims[static_cast<size_t>(dim)].block = 3;
      const Layout lay = layout::derive_layout(decl, ad, grid);
      ASSERT_TRUE(lay.all_simple());

      // Row walk and column walk, each crossing strip boundaries.
      for (int inner_row = 0; inner_row < 2; ++inner_row) {
        core::CompiledRef ref;
        ref.rank = 2;
        ref.coeffs = inner_row != 0 ? std::vector<Int>{0, 1, 1, 0}
                                    : std::vector<Int>{1, 0, 0, 1};
        ref.offsets = {0, 0};
        const std::vector<Int> start = {0, 0};
        check_walk(ref, lay, 2, start, inner_row != 0 ? 33 : 19);
      }
    }
  }
}

/// The two engines must agree on everything observable: completion times,
/// numeric results, statement counts and memory-system statistics. Only
/// dir_fast_hits (which records the fast path itself) may differ.
void expect_bit_identical(const RunResult& fast, const RunResult& interp) {
  EXPECT_EQ(fast.cycles, interp.cycles);
  EXPECT_EQ(fast.proc_cycles, interp.proc_cycles);
  EXPECT_EQ(fast.values, interp.values);
  EXPECT_EQ(fast.statements, interp.statements);
  EXPECT_EQ(fast.wait_cycles, interp.wait_cycles);
  EXPECT_EQ(fast.barrier_cycles, interp.barrier_cycles);
  EXPECT_EQ(fast.mem.accesses, interp.mem.accesses);
  EXPECT_EQ(fast.mem.l1_hits, interp.mem.l1_hits);
  EXPECT_EQ(fast.mem.l2_hits, interp.mem.l2_hits);
  EXPECT_EQ(fast.mem.local_fills, interp.mem.local_fills);
  EXPECT_EQ(fast.mem.remote_fills, interp.mem.remote_fills);
  EXPECT_EQ(fast.mem.remote_dirty_fills, interp.mem.remote_dirty_fills);
  EXPECT_EQ(fast.mem.upgrades, interp.mem.upgrades);
  EXPECT_EQ(fast.mem.cold_misses, interp.mem.cold_misses);
  EXPECT_EQ(fast.mem.replace_misses, interp.mem.replace_misses);
  EXPECT_EQ(fast.mem.coherence_true, interp.mem.coherence_true);
  EXPECT_EQ(fast.mem.coherence_false, interp.mem.coherence_false);
  EXPECT_EQ(fast.mem.memory_cycles, interp.mem.memory_cycles);
  EXPECT_EQ(interp.mem.dir_fast_hits, 0);
  EXPECT_EQ(interp.counters.walker_fast, 0);
}

TEST(Walker, FastEngineMatchesInterpreterOnAllApps) {
  const std::vector<std::pair<const char*, ir::Program>> programs = [] {
    std::vector<std::pair<const char*, ir::Program>> ps;
    ps.emplace_back("figure1", apps::figure1(20, 2));
    ps.emplace_back("lu", apps::lu(16));
    ps.emplace_back("stencil5", apps::stencil5(18, 2));
    ps.emplace_back("adi", apps::adi(14, 2));
    ps.emplace_back("vpenta", apps::vpenta(12));
    ps.emplace_back("erlebacher", apps::erlebacher(8, 1));
    ps.emplace_back("swm256", apps::swm256(14, 2));
    ps.emplace_back("tomcatv", apps::tomcatv(14, 2));
    return ps;
  }();
  for (const auto& [name, prog] : programs) {
    const auto reference = run_reference(prog);
    for (const Mode mode : {Mode::Base, Mode::CompDecomp, Mode::Full}) {
      const auto cp = core::compile(prog, mode, 4);
      ExecOptions fast_opts;
      fast_opts.fast_exec = 1;
      ExecOptions interp_opts;
      interp_opts.fast_exec = 0;
      const auto fast =
          simulate(cp, machine::MachineConfig::dash(4), fast_opts);
      const auto interp =
          simulate(cp, machine::MachineConfig::dash(4), interp_opts);
      SCOPED_TRACE(std::string(name) + "/" + core::to_string(mode));
      expect_bit_identical(fast, interp);
      EXPECT_EQ(fast.values, reference);
    }
  }
}

TEST(Walker, FastEngineUsesWalkersOnTransformedLayouts) {
  const auto cp = core::compile(apps::stencil5(32, 2), Mode::Full, 8);
  ExecOptions opts;
  opts.fast_exec = 1;
  const auto r = simulate(cp, machine::MachineConfig::dash(8), opts);
  EXPECT_GT(r.counters.walker_fast, 0);
  EXPECT_GT(r.counters.dir_fast, 0);
  // The trace record must carry the same numbers.
  ASSERT_EQ(r.trace.passes.size(), 1u);
  EXPECT_EQ(r.trace.passes[0].name, "simulate");
  EXPECT_EQ(r.trace.passes[0].counters.at("sim_walker_fast_hits"),
            static_cast<long>(r.counters.walker_fast));
  EXPECT_EQ(r.trace.passes[0].counters.at("sim_dir_fast_hits"),
            static_cast<long>(r.counters.dir_fast));
}

}  // namespace
}  // namespace dct::runtime
