// Tests for the data transformation framework, including exact
// reproductions of the index/address tables in Figures 2 and 3 of the
// paper.
#include "layout/layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace dct::layout {
namespace {

using decomp::ArrayDecomposition;
using decomp::DimDistribution;
using decomp::DistKind;

TEST(Layout, IdentityLinearizesColumnMajor) {
  const Layout l = Layout::identity({4, 3});
  EXPECT_TRUE(l.is_identity());
  EXPECT_EQ(l.size(), 12);
  // Column-major: dim0 fastest.
  EXPECT_EQ(l.linearize(std::vector<Int>{1, 0}), 1);
  EXPECT_EQ(l.linearize(std::vector<Int>{0, 1}), 4);
  EXPECT_EQ(l.linearize(std::vector<Int>{3, 2}), 11);
}

TEST(Layout, PaperFigure2StripMineAndTranspose) {
  // A 12-element array strip-mined with b = 4 becomes 4 x 3 (Figure 2b);
  // transposing yields 3 x 4 where every fourth element is contiguous
  // (Figure 2c).
  Layout l = Layout::identity({12});
  l.apply(StripMine{0, 4});
  EXPECT_EQ(l.dims(), (std::vector<Int>{4, 3}));
  // Figure 2(b): element i has coordinates (i mod 4, i div 4).
  EXPECT_EQ(l.map_index(std::vector<Int>{6}), (std::vector<Int>{2, 1}));
  // Strip-mining alone does not change the layout: address is unchanged.
  for (Int i = 0; i < 12; ++i)
    EXPECT_EQ(l.linearize(std::vector<Int>{i}), i);

  l.apply(Permute{{1, 0}});
  EXPECT_EQ(l.dims(), (std::vector<Int>{3, 4}));
  // Figure 2(c): linear addresses of elements 0..11.
  const std::vector<Int> expected = {0, 3, 6, 9, 1, 4, 7, 10, 2, 5, 8, 11};
  for (Int i = 0; i < 12; ++i)
    EXPECT_EQ(l.linearize(std::vector<Int>{i}), expected[static_cast<size_t>(i)])
        << "element " << i;
}

ir::ArrayDecl decl8x4() {
  return ir::ArrayDecl{"A", {8, 4}, 4, true};
}

ArrayDecomposition dist(DistKind kind, Int block = 0) {
  ArrayDecomposition ad;
  ad.dims = {DimDistribution{kind, kind == DistKind::Serial ? -1 : 0, block},
             DimDistribution{}};
  return ad;
}

TEST(Layout, PaperFigure3Block) {
  // (BLOCK, *) on an 8x4 array over P=2: new indices
  // (i1 mod 4, i2, i1 div 4), dims (4, 4, 2) — Figure 3(b),(d).
  const int grid[] = {2};
  const Layout l = derive_layout(decl8x4(), dist(DistKind::Block), grid);
  EXPECT_EQ(l.dims(), (std::vector<Int>{4, 4, 2}));
  EXPECT_EQ(l.map_index(std::vector<Int>{5, 2}), (std::vector<Int>{1, 2, 1}));
  // Figure 3(c) addresses: (4,0) -> 16, (0,1) -> 4, (7,3) -> 31.
  EXPECT_EQ(l.linearize(std::vector<Int>{4, 0}), 16);
  EXPECT_EQ(l.linearize(std::vector<Int>{0, 1}), 4);
  EXPECT_EQ(l.linearize(std::vector<Int>{7, 3}), 31);
  // Processor 0's share (rows 0..3) is exactly addresses 0..15.
  std::set<Int> p0;
  for (Int i1 = 0; i1 < 4; ++i1)
    for (Int i2 = 0; i2 < 4; ++i2)
      p0.insert(l.linearize(std::vector<Int>{i1, i2}));
  EXPECT_EQ(*p0.begin(), 0);
  EXPECT_EQ(*p0.rbegin(), 15);
  EXPECT_EQ(p0.size(), 16u);
}

TEST(Layout, PaperFigure3Cyclic) {
  // (CYCLIC, *) over P=2: new indices (i1 div 2, i2, i1 mod 2),
  // dims (4, 4, 2).
  const int grid[] = {2};
  const Layout l = derive_layout(decl8x4(), dist(DistKind::Cyclic), grid);
  EXPECT_EQ(l.dims(), (std::vector<Int>{4, 4, 2}));
  // Figure 3(c): (1,0) -> 16, (0,1) -> 4, (2,0) -> 1.
  EXPECT_EQ(l.linearize(std::vector<Int>{1, 0}), 16);
  EXPECT_EQ(l.linearize(std::vector<Int>{0, 1}), 4);
  EXPECT_EQ(l.linearize(std::vector<Int>{2, 0}), 1);
  // Processor 0 owns the even rows: addresses 0..15.
  std::set<Int> p0;
  for (Int i1 = 0; i1 < 8; i1 += 2)
    for (Int i2 = 0; i2 < 4; ++i2)
      p0.insert(l.linearize(std::vector<Int>{i1, i2}));
  EXPECT_EQ(*p0.rbegin(), 15);
}

TEST(Layout, PaperFigure3BlockCyclic) {
  // (BLOCK-CYCLIC, *) with b=2 over P=2: new indices
  // (i1 mod 2, i1 div 4, i2, (i1 div 2) mod 2), dims (2, 2, 4, 2).
  const int grid[] = {2};
  const Layout l =
      derive_layout(decl8x4(), dist(DistKind::BlockCyclic, 2), grid);
  EXPECT_EQ(l.dims(), (std::vector<Int>{2, 2, 4, 2}));
  // Figure 3(c): (2,0) -> 16, (1,0) -> 1, (4,0) -> 2, (0,1) -> 4.
  EXPECT_EQ(l.linearize(std::vector<Int>{2, 0}), 16);
  EXPECT_EQ(l.linearize(std::vector<Int>{1, 0}), 1);
  EXPECT_EQ(l.linearize(std::vector<Int>{4, 0}), 2);
  EXPECT_EQ(l.linearize(std::vector<Int>{0, 1}), 4);
}

TEST(Layout, HighestDimBlockIsNoOp) {
  // Section 4.2 local optimization: (*, BLOCK) on column-major needs no
  // transform at all.
  ir::ArrayDecl decl{"X", {8, 8}, 8, true};
  ArrayDecomposition ad;
  ad.dims = {DimDistribution{}, DimDistribution{DistKind::Block, 0, 0}};
  const int grid[] = {4};
  const Layout l = derive_layout(decl, ad, grid);
  EXPECT_TRUE(l.is_identity());
}

TEST(Layout, NonTransformableKeepsIdentity) {
  ir::ArrayDecl decl{"X", {8, 8}, 8, /*transformable=*/false};
  ArrayDecomposition ad;
  ad.dims = {DimDistribution{DistKind::Cyclic, 0, 0}, DimDistribution{}};
  const int grid[] = {4};
  EXPECT_TRUE(derive_layout(decl, ad, grid).is_identity());
}

TEST(Layout, BijectionProperty) {
  // Every layout produced by the algorithm maps distinct elements to
  // distinct addresses within bounds.
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const Int d0 = rng.uniform(3, 9), d1 = rng.uniform(3, 9);
    ir::ArrayDecl decl{"X", {d0, d1}, 4, true};
    ArrayDecomposition ad;
    ad.dims.resize(2);
    const int which = static_cast<int>(rng.uniform(0, 1));
    const auto kind = static_cast<DistKind>(rng.uniform(1, 3));
    ad.dims[static_cast<size_t>(which)] =
        DimDistribution{kind, 0, kind == DistKind::BlockCyclic ? 2 : 0};
    const int grid[] = {static_cast<int>(rng.uniform(2, 4))};
    const Layout l = derive_layout(decl, ad, grid);
    std::set<Int> seen;
    for (Int i = 0; i < d0; ++i)
      for (Int j = 0; j < d1; ++j) {
        const Int addr = l.linearize(std::vector<Int>{i, j});
        EXPECT_GE(addr, 0);
        EXPECT_LT(addr, l.size());
        EXPECT_TRUE(seen.insert(addr).second) << "duplicate address";
      }
  }
}

TEST(Layout, OwnersContiguousProperty) {
  // The whole point of the algorithm: each processor's elements occupy a
  // contiguous address range in the restructured array.
  Rng rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    const Int d0 = rng.uniform(4, 12), d1 = rng.uniform(4, 12);
    ir::ArrayDecl decl{"X", {d0, d1}, 4, true};
    ArrayDecomposition ad;
    ad.dims.resize(2);
    const int which = static_cast<int>(rng.uniform(0, 1));
    const auto kind = static_cast<DistKind>(rng.uniform(1, 2));  // B or C
    ad.dims[static_cast<size_t>(which)] = DimDistribution{kind, 0, 0};
    const int p = static_cast<int>(rng.uniform(2, 4));
    const int grid[] = {p};
    const Layout l = derive_layout(decl, ad, grid);
    const Partition part = make_partition(decl, ad, grid, 1);
    std::vector<std::set<Int>> per_proc(static_cast<size_t>(p));
    for (Int i = 0; i < d0; ++i)
      for (Int j = 0; j < d1; ++j) {
        const std::vector<Int> idx{i, j};
        const int owner = part.owner(idx)[0];
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, p);
        per_proc[static_cast<size_t>(owner)].insert(l.linearize(idx));
      }
    // Contiguity: the processors' address ranges are pairwise disjoint —
    // no foreign element interleaves with a processor's region. (ceil
    // padding may leave unused holes inside a processor's own region when
    // extents do not divide evenly.)
    std::vector<std::pair<Int, Int>> ranges;
    for (const auto& addrs : per_proc)
      if (!addrs.empty()) ranges.push_back({*addrs.begin(), *addrs.rbegin()});
    std::sort(ranges.begin(), ranges.end());
    for (size_t r = 1; r < ranges.size(); ++r)
      EXPECT_GT(ranges[r].first, ranges[r - 1].second)
          << "processor regions interleave";
  }
}

TEST(Partition, Folding) {
  ir::ArrayDecl decl{"X", {16, 16}, 4, true};
  ArrayDecomposition ad;
  ad.dims = {DimDistribution{DistKind::Cyclic, 0, 0},
             DimDistribution{DistKind::Block, 1, 0}};
  const int grid[] = {4, 2};
  const Partition part = make_partition(decl, ad, grid, 2);
  EXPECT_EQ(part.fold(0, 5), 1);   // cyclic: 5 mod 4
  EXPECT_EQ(part.fold(1, 7), 0);   // block of 8: 7 / 8
  EXPECT_EQ(part.fold(1, 8), 1);
  const auto owner = part.owner(std::vector<Int>{6, 9});
  EXPECT_EQ(owner, (std::vector<int>{2, 1}));
}

TEST(AddressOverhead, StrategyOrdering) {
  // naive >= hoisted >= optimized, and identity layouts cost nothing.
  ir::ArrayDecl decl{"X", {64, 64}, 4, true};
  ArrayDecomposition ad;
  ad.dims = {DimDistribution{DistKind::Cyclic, 0, 0}, DimDistribution{}};
  const int grid[] = {4};
  const Layout l = derive_layout(decl, ad, grid);

  ir::LoopNest nest;
  nest.loops.push_back(ir::loop("J", ir::cst(0), ir::cst(63)));
  nest.loops.push_back(ir::loop("I", ir::cst(0), ir::cst(63)));
  const ir::ArrayRef ref = ir::simple_ref(0, 2, {{1, 0}, {0, 0}});

  const double naive = address_overhead(nest, ref, l, AddrStrategy::Naive);
  const double hoisted = address_overhead(nest, ref, l, AddrStrategy::Hoisted);
  const double opt = address_overhead(nest, ref, l, AddrStrategy::Optimized);
  EXPECT_GT(naive, 0);
  EXPECT_GE(naive, hoisted);
  EXPECT_GE(hoisted, opt);
  EXPECT_LT(opt, 10.0);

  const Layout id = Layout::identity({64, 64});
  EXPECT_EQ(address_overhead(nest, ref, id, AddrStrategy::Naive), 0.0);
}

}  // namespace
}  // namespace dct::layout
