// Tests for the pass-pipeline refactor: the pass lists behind each mode,
// equivalence of hand-composed pipelines with compile(), the structured
// trace (remarks, counters, wall time, JSON emission via DCT_TRACE) and
// the determinism of the multi-threaded experiment sweep.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "core/experiment.hpp"
#include "core/pass.hpp"
#include "runtime/executor.hpp"
#include "support/remark.hpp"
#include "verify/oracle.hpp"

namespace dct {
namespace {

using core::Mode;

TEST(Pipeline, ModePassLists) {
  // With DCT_VALIDATE=1 every pipeline additionally ends in `verify`.
  auto with_verify = [](std::vector<std::string> names) {
    if (verify::validate_enabled()) names.push_back("verify");
    return names;
  };

  const auto base = core::build_pipeline(Mode::Base).pass_names();
  const auto want_base = with_verify(
      {"parallelize", "decompose-base", "layout", "lower", "addr-strategy"});
  EXPECT_EQ(base, want_base);

  const auto cd = core::build_pipeline(Mode::CompDecomp).pass_names();
  const auto want_cd = with_verify({"parallelize", "decompose", "fold-select",
                                    "barrier-elim", "layout", "lower",
                                    "addr-strategy"});
  EXPECT_EQ(cd, want_cd);

  // Full is CompDecomp's list — restructuring is pass configuration, not
  // an extra stage.
  EXPECT_EQ(core::build_pipeline(Mode::Full).pass_names(), want_cd);

  const auto tail = core::build_lowering_pipeline(Mode::Full).pass_names();
  const auto want_tail = with_verify({"layout", "lower", "addr-strategy"});
  EXPECT_EQ(tail, want_tail);
}

TEST(Pipeline, ManualCompositionMatchesCompile) {
  const ir::Program prog = apps::adi(14, 2);
  const core::CompiledProgram want = core::compile(prog, Mode::Full, 4);

  core::PassManager pm;
  pm.add(core::make_parallelize_pass())
      .add(core::make_decompose_pass(/*base=*/false))
      .add(core::make_fold_select_pass())
      .add(core::make_barrier_elim_pass())
      .add(core::make_layout_pass(/*restructure=*/true))
      .add(core::make_lower_pass(/*base_block_owner=*/false))
      .add(core::make_addr_strategy_pass());
  core::CompilationState st;
  st.cp.program = prog;
  st.cp.mode = Mode::Full;
  st.cp.procs = 4;
  support::RemarkEngine eng;
  pm.run(st, eng);

  EXPECT_EQ(st.cp.report(), want.report());
  const auto a = runtime::simulate(st.cp, machine::MachineConfig::dash(4));
  const auto b = runtime::simulate(want, machine::MachineConfig::dash(4));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.values, b.values);
}

TEST(Pipeline, SuppliedDecompositionMatchesCompile) {
  // compile_with_decomposition on the compiler's own analysis must be
  // bit-identical to the integrated pipeline — the lowering tail is the
  // same pass objects.
  for (Mode mode : {Mode::Base, Mode::CompDecomp, Mode::Full}) {
    const ir::Program prog = apps::lu(16);
    const core::CompiledProgram direct = core::compile(prog, mode, 4);
    const core::CompiledProgram via = core::compile_with_decomposition(
        prog, decomp::decompose(prog), mode, 4);
    if (mode != Mode::Base) {  // Base's own analysis differs from decompose()
      EXPECT_EQ(via.report(), direct.report());
    }
    const auto a = runtime::simulate(via, machine::MachineConfig::dash(4));
    const auto ref = runtime::run_reference(prog);
    EXPECT_EQ(a.values, ref);
  }
}

TEST(Pipeline, TraceRecordsEveryPass) {
  const core::CompiledProgram cp =
      core::compile(apps::stencil5(18, 2), Mode::Full, 4);
  const auto names = core::build_pipeline(Mode::Full).pass_names();
  ASSERT_EQ(cp.trace.passes.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(cp.trace.passes[i].name, names[i]);
    EXPECT_EQ(cp.trace.passes[i].runs, 1);
    EXPECT_GE(cp.trace.passes[i].wall_ms, 0.0);
  }
  EXPECT_GE(cp.trace.total_ms, 0.0);

  // The decomposition stages must have left their decision counters.
  auto counters_of = [&](const std::string& pass)
      -> const std::map<std::string, long>& {
    for (const auto& p : cp.trace.passes)
      if (p.name == pass) return p.counters;
    ADD_FAILURE() << "no pass " << pass;
    static const std::map<std::string, long> empty;
    return empty;
  };
  EXPECT_TRUE(counters_of("decompose").count("alignment_groups"));
  EXPECT_TRUE(counters_of("layout").count("bytes_allocated"));
  EXPECT_TRUE(counters_of("addr-strategy").count("refs"));

  const std::string j = cp.trace.json({{"unit", "stencil5"}});
  EXPECT_NE(j.find("\"unit\":\"stencil5\""), std::string::npos);
  EXPECT_NE(j.find("\"passes\":["), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"parallelize\""), std::string::npos);
}

TEST(Pipeline, TraceMergeAggregates) {
  support::PipelineTrace a, b;
  a.passes.push_back({.name = "layout", .runs = 1, .wall_ms = 1.0,
                      .remark_count = 2, .remarks = {},
                      .counters = {{"arrays", 3}}});
  a.total_ms = 1.0;
  b.passes.push_back({.name = "layout", .runs = 1, .wall_ms = 0.5,
                      .remark_count = 1, .remarks = {},
                      .counters = {{"arrays", 2}, {"permutes", 1}}});
  b.passes.push_back({.name = "lower", .runs = 1, .wall_ms = 0.25,
                      .remark_count = 0, .remarks = {}, .counters = {}});
  b.total_ms = 0.75;
  a.merge(b);
  ASSERT_EQ(a.passes.size(), 2u);
  EXPECT_EQ(a.passes[0].name, "layout");
  EXPECT_EQ(a.passes[0].runs, 2);
  EXPECT_DOUBLE_EQ(a.passes[0].wall_ms, 1.5);
  EXPECT_EQ(a.passes[0].remark_count, 3);
  EXPECT_EQ(a.passes[0].counters.at("arrays"), 5);
  EXPECT_EQ(a.passes[0].counters.at("permutes"), 1);
  EXPECT_EQ(a.passes[1].name, "lower");
  EXPECT_DOUBLE_EQ(a.total_ms, 1.75);
}

TEST(Pipeline, JsonEscaping) {
  EXPECT_EQ(support::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(support::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Pipeline, DctTraceWritesReportFile) {
  const std::string path = ::testing::TempDir() + "dct_trace_test.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("DCT_TRACE", path.c_str(), 1), 0);
  core::compile(apps::figure1(20, 2), Mode::CompDecomp, 4);
  ASSERT_EQ(unsetenv("DCT_TRACE"), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"unit\":\"figure1\""), std::string::npos);
  EXPECT_NE(line.find("\"mode\":\"comp decomp\""), std::string::npos);
  EXPECT_NE(line.find("\"procs\":\"4\""), std::string::npos);
  EXPECT_NE(line.find("\"passes\":["), std::string::npos);
  std::remove(path.c_str());
}

TEST(Pipeline, ParallelSweepIsDeterministic) {
  const ir::Program prog = apps::stencil5(18, 2);
  core::SweepOptions serial;
  serial.procs = {1, 2, 4};
  serial.threads = 1;
  core::SweepOptions pooled = serial;
  pooled.threads = 4;

  const core::SweepResult a = core::run_sweep(prog, serial);
  const core::SweepResult b = core::run_sweep(prog, pooled);
  // Byte-identical rendered tables regardless of the thread count.
  EXPECT_EQ(core::render_sweep("stencil5", a),
            core::render_sweep("stencil5", b));
  EXPECT_EQ(a.seq_cycles, b.seq_cycles);

  // The sweep trace aggregates every compilation in the sweep: 1 baseline
  // + 3 verification points + 3 modes x 3 procs.
  for (const auto& p : a.trace.passes) {
    if (p.name == "lower") {
      EXPECT_GE(p.runs, 10);
    }
  }
  bool saw_lower = false;
  for (const auto& p : b.trace.passes) saw_lower |= p.name == "lower";
  EXPECT_TRUE(saw_lower);
}

TEST(Pipeline, CompilerSourceStaysThin) {
  // Guard the refactor: compile() must stay a thin wrapper over
  // build_pipeline(); pass logic lives in core/pass.cpp.
  const core::CompiledProgram cp =
      core::compile(apps::vpenta(12), Mode::Base, 4);
  EXPECT_EQ(cp.trace.passes.size(),
            core::build_pipeline(Mode::Base).pass_names().size());
}

}  // namespace
}  // namespace dct
