// Tests for dependence analysis and unimodular parallelization, including
// randomized comparison against a brute-force oracle (the analysis may be
// conservative — report extra carried levels — but never unsound).
#include "dep/dependence.hpp"
#include "dep/parallelize.hpp"

#include <gtest/gtest.h>

#include "ir/transform.hpp"
#include "support/rng.hpp"

namespace dct::dep {
namespace {

using ir::cst;
using ir::loop;
using ir::LoopNest;
using ir::simple_ref;
using ir::Stmt;
using ir::var;

LoopNest make_nest(std::vector<std::pair<Int, Int>> bounds) {
  LoopNest nest;
  for (size_t i = 0; i < bounds.size(); ++i)
    nest.loops.push_back(loop("i" + std::to_string(i), cst(bounds[i].first),
                              cst(bounds[i].second)));
  return nest;
}

/// A(i,j) = A(i,j-1): flow dependence carried by the j loop.
TEST(Analyze, StreamAlongInner) {
  LoopNest nest = make_nest({{0, 7}, {1, 7}});
  Stmt s;
  s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
  s.reads = {simple_ref(0, 2, {{0, 0}, {1, -1}})};
  nest.stmts.push_back(std::move(s));
  const NestDeps deps = analyze(nest);
  EXPECT_FALSE(deps.carried[0]);
  EXPECT_TRUE(deps.carried[1]);
  ASSERT_EQ(deps.vectors.size(), 1u);
  EXPECT_EQ(deps.vectors[0].dist[0], 0);
  EXPECT_EQ(deps.vectors[0].dist[1], 1);
  EXPECT_TRUE(deps.pipelinable(1));
}

/// Fully parallel: A(i,j) = B(i,j).
TEST(Analyze, Independent) {
  LoopNest nest = make_nest({{0, 7}, {0, 7}});
  Stmt s;
  s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
  s.reads = {simple_ref(1, 2, {{0, 0}, {1, 0}})};
  nest.stmts.push_back(std::move(s));
  const NestDeps deps = analyze(nest);
  EXPECT_TRUE(deps.vectors.empty());
  EXPECT_FALSE(deps.carried[0]);
  EXPECT_FALSE(deps.carried[1]);
}

/// The paper's Figure 1 second nest: A(I,J) = f(A(I,J), A(I,J-1),
/// A(I,J+1)) — J loop carries, I loop parallel.
TEST(Analyze, Figure1Smoother) {
  LoopNest nest = make_nest({{1, 6}, {0, 7}});  // J outer, I inner
  Stmt s;
  s.write = simple_ref(0, 2, {{1, 0}, {0, 0}});
  s.reads = {simple_ref(0, 2, {{1, 0}, {0, 0}}),
             simple_ref(0, 2, {{1, 0}, {0, -1}}),
             simple_ref(0, 2, {{1, 0}, {0, 1}})};
  nest.stmts.push_back(std::move(s));
  const NestDeps deps = analyze(nest);
  EXPECT_TRUE(deps.carried[0]);   // J
  EXPECT_FALSE(deps.carried[1]);  // I
}

/// LU elimination body over (I1, I2, I3): only I1 carries.
LoopNest lu_nest(Int n) {
  LoopNest nest;
  nest.loops.push_back(loop("k", cst(0), cst(n - 1)));
  nest.loops.push_back(loop("i", var(0) + 1, cst(n - 1)));
  nest.loops.push_back(loop("j", var(0) + 1, cst(n - 1)));
  Stmt s;
  s.write = simple_ref(0, 3, {{1, 0}, {2, 0}});
  s.reads = {simple_ref(0, 3, {{1, 0}, {2, 0}}),
             simple_ref(0, 3, {{1, 0}, {0, 0}}),
             simple_ref(0, 3, {{0, 0}, {2, 0}})};
  nest.stmts.push_back(std::move(s));
  return nest;
}

TEST(Analyze, LUOnlyOuterCarries) {
  const NestDeps deps = analyze(lu_nest(8));
  EXPECT_TRUE(deps.carried[0]);
  EXPECT_FALSE(deps.carried[1]);
  EXPECT_FALSE(deps.carried[2]);
  const auto brute = carried_levels_bruteforce(lu_nest(8));
  EXPECT_TRUE(brute[0]);
  EXPECT_FALSE(brute[1]);
  EXPECT_FALSE(brute[2]);
}

TEST(Analyze, SoundVsBruteForce) {
  // Random small nests with random uniform references: every level the
  // oracle reports carried must also be reported by the analysis.
  Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const int d = static_cast<int>(rng.uniform(1, 3));
    std::vector<std::pair<Int, Int>> bounds;
    for (int k = 0; k < d; ++k) bounds.push_back({0, rng.uniform(2, 5)});
    LoopNest nest = make_nest(bounds);
    const int nstmts = static_cast<int>(rng.uniform(1, 2));
    for (int si = 0; si < nstmts; ++si) {
      Stmt s;
      auto rand_ref = [&]() {
        std::vector<std::pair<int, Int>> dims;
        for (int r = 0; r < 2; ++r)
          dims.push_back({static_cast<int>(rng.uniform(-1, d - 1)),
                          rng.uniform(0, 2)});
        return simple_ref(0, d, dims);
      };
      s.write = rand_ref();
      s.reads = {rand_ref()};
      nest.stmts.push_back(std::move(s));
    }
    const NestDeps deps = analyze(nest);
    const auto brute = carried_levels_bruteforce(nest);
    for (int k = 0; k < d; ++k)
      EXPECT_TRUE(!brute[static_cast<size_t>(k)] ||
                  deps.carried[static_cast<size_t>(k)])
          << "unsound at level " << k;
  }
}

/// analyze_pairs must attribute vectors per ordered statement pair and —
/// unlike the nest-level summary — keep loop-independent dependences
/// between distinct statements (they decide native-backend scheduling).
TEST(AnalyzePairs, AttributesAndKeepsLoopIndependent) {
  LoopNest nest = make_nest({{0, 7}, {1, 7}});
  {
    // s0: A(i,j) = A(i,j-1)  — self flow dependence carried by j.
    Stmt s;
    s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
    s.reads = {simple_ref(0, 2, {{0, 0}, {1, -1}})};
    nest.stmts.push_back(std::move(s));
  }
  {
    // s1: B(i,j) = A(i,j)  — loop-independent flow s0 -> s1.
    Stmt s;
    s.write = simple_ref(1, 2, {{0, 0}, {1, 0}});
    s.reads = {simple_ref(0, 2, {{0, 0}, {1, 0}})};
    nest.stmts.push_back(std::move(s));
  }
  const auto pairs = analyze_pairs(nest);
  bool self_carried = false, cross_li = false;
  for (const PairDeps& pd : pairs) {
    EXPECT_FALSE(pd.vectors.empty());
    for (const DepVector& v : pd.vectors) {
      if (pd.src_stmt == 0 && pd.dst_stmt == 0)
        self_carried |= v.dist[1].has_value() && *v.dist[1] == 1;
      if (pd.src_stmt != pd.dst_stmt) cross_li |= v.loop_independent();
    }
    // Self-pairs never report loop-independent vectors: one statement
    // instance executes atomically.
    if (pd.src_stmt == pd.dst_stmt)
      for (const DepVector& v : pd.vectors)
        EXPECT_FALSE(v.loop_independent());
  }
  EXPECT_TRUE(self_carried);
  EXPECT_TRUE(cross_li);
}

/// Pair attribution agrees with the nest summary on carried levels.
TEST(AnalyzePairs, CarriedLevelsCoverNestSummary) {
  LoopNest nest = make_nest({{0, 6}, {0, 6}});
  Stmt s;
  s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
  s.reads = {simple_ref(0, 2, {{0, -1}, {1, 0}})};
  nest.stmts.push_back(std::move(s));
  const NestDeps deps = analyze(nest);
  const auto pairs = analyze_pairs(nest);
  std::vector<bool> carried(nest.loops.size(), false);
  for (const PairDeps& pd : pairs)
    for (const DepVector& v : pd.vectors) {
      const int l = v.carrier_level();
      if (l >= 0) carried[static_cast<size_t>(l)] = true;
    }
  EXPECT_EQ(carried, deps.carried);
}

TEST(Hull, TriangularWidening) {
  const Hull h = iteration_hull(lu_nest(8));
  EXPECT_EQ(h.lo, (linalg::Vec{0, 1, 1}));
  EXPECT_EQ(h.hi, (linalg::Vec{7, 7, 7}));
  EXPECT_FALSE(h.empty);
}

TEST(Hull, EmptyDetected) {
  LoopNest nest = make_nest({{5, 2}});
  EXPECT_TRUE(iteration_hull(nest).empty);
}

TEST(Parallelize, MovesParallelLoopOutermost) {
  // for i (parallel), for j (carries): ideal order puts i outermost.
  // Written with the carried loop outermost to force an interchange.
  LoopNest nest = make_nest({{1, 6}, {0, 7}});
  Stmt s;
  // A(j, i_outer): dim0 = inner loop (stride-1), carried along outer.
  s.write = simple_ref(0, 2, {{1, 0}, {0, 0}});
  s.reads = {simple_ref(0, 2, {{1, 0}, {0, -1}})};
  nest.stmts.push_back(std::move(s));
  const ParallelizedNest p = parallelize(nest);
  EXPECT_EQ(p.outer_parallel_count(), 1);
  EXPECT_TRUE(p.parallel[0]);
  EXPECT_FALSE(p.parallel[1]);
  // The transform must be the interchange.
  EXPECT_EQ(p.transform, ir::permutation_matrix({1, 0}));
}

TEST(Parallelize, LeavesGoodNestAlone) {
  // Outer already parallel and stride-1 inner: keep identity.
  LoopNest nest = make_nest({{0, 7}, {0, 7}});
  Stmt s;
  s.write = simple_ref(0, 2, {{1, 0}, {0, 0}});  // A(j, i): j stride-1
  s.reads = {simple_ref(1, 2, {{1, 0}, {0, 0}})};
  nest.stmts.push_back(std::move(s));
  const ParallelizedNest p = parallelize(nest);
  EXPECT_EQ(p.transform, linalg::IntMatrix::identity(2));
  EXPECT_EQ(p.outer_parallel_count(), 2);
}

TEST(Parallelize, SkewExposesWavefront) {
  // SOR-like: A(i,j) = A(i-1,j) + A(i,j-1): both loops carry; skewing
  // j by i gives distances (1,1),(0,1)->(1,0)... after skew (1,0),(1,1):
  // wait — skew makes inner parallel: deps (1,0),(0,1) -> (1,1),(0,1) no.
  // With transform [[1,0],[1,1]]: (1,0)->(1,1), (0,1)->(0,1): inner still
  // carries. With wavefront permute+skew [[1,1],[1,0]] deps become
  // (1,1),(1,0): inner parallel.
  LoopNest nest = make_nest({{1, 6}, {1, 6}});
  Stmt s;
  s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
  s.reads = {simple_ref(0, 2, {{0, -1}, {1, 0}}),
             simple_ref(0, 2, {{0, 0}, {1, -1}})};
  nest.stmts.push_back(std::move(s));
  const ParallelizedNest p = parallelize(nest);
  // No permutation can give a DOALL; the skew fallback must find one
  // parallel (inner) loop.
  EXPECT_EQ(std::count(p.parallel.begin(), p.parallel.end(), true), 1);
  EXPECT_TRUE(p.parallel[1]);
  EXPECT_FALSE(p.parallel[0]);
}

}  // namespace
}  // namespace dct::dep
