// Property tests for CoordFold::fold — the coordinate-to-owner map used
// by the lowered SPMD code. The fold must be total (every coordinate maps
// to a processor in [0, procs)) and must agree with the brute-force
// definition of each HPF distribution kind, including for coordinates
// that go negative after the offset is subtracted.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/compiler.hpp"
#include "support/rng.hpp"

namespace dct::core {
namespace {

using decomp::DistKind;

// Brute-force reference owner computations, written directly from the
// distribution definitions rather than from the arithmetic in fold().
//
// BLOCK: processor p owns [p*block, (p+1)*block); coordinates below the
// first block clamp to processor 0 and beyond the last to procs-1 (the
// compiler only clamps at the boundary of slightly-oversized hulls).
int block_ref(Int x, int procs, Int block) {
  block = std::max<Int>(1, block);
  if (x < 0) return 0;
  for (int p = 0; p < procs; ++p)
    if (x < static_cast<Int>(p + 1) * block) return p;
  return procs - 1;
}

// CYCLIC: processor p owns every coordinate congruent to p modulo procs.
int cyclic_ref(Int x, int procs) {
  for (int p = 0; p < procs; ++p)
    if ((x - p) % procs == 0) return p;
  ADD_FAILURE() << "no congruent processor for " << x;
  return -1;
}

// BLOCK-CYCLIC(b): coordinates are grouped into blocks of b and the
// blocks are dealt out cyclically.
int block_cyclic_ref(Int x, int procs, Int block) {
  block = std::max<Int>(1, block);
  // Find the block index q with q*block <= x < (q+1)*block, valid for
  // negative x as well (floor semantics).
  Int q = 0;
  while (q * block > x) --q;
  while ((q + 1) * block <= x) ++q;
  return cyclic_ref(q, procs);
}

int reference(const CoordFold& f, Int v) {
  const Int x = v - f.offset;
  switch (f.kind) {
    case DistKind::Serial: return 0;
    case DistKind::Block: return block_ref(x, f.procs, f.block);
    case DistKind::Cyclic: return cyclic_ref(x, f.procs);
    case DistKind::BlockCyclic:
      return block_cyclic_ref(x, f.procs, f.block);
  }
  return -1;
}

TEST(CoordFold, MatchesBruteForceReference) {
  Rng rng(0x600df01d);
  const DistKind kinds[] = {DistKind::Serial, DistKind::Block,
                            DistKind::Cyclic, DistKind::BlockCyclic};
  for (int trial = 0; trial < 20000; ++trial) {
    CoordFold f;
    f.kind = kinds[rng.uniform(0, 3)];
    f.procs = static_cast<int>(rng.uniform(1, 9));
    f.block = rng.uniform(1, 7);
    f.offset = rng.uniform(-10, 10);
    const Int v = rng.uniform(-50, 50);
    const int got = f.fold(v);
    ASSERT_GE(got, 0) << "kind=" << static_cast<int>(f.kind) << " v=" << v;
    ASSERT_LT(got, f.procs)
        << "kind=" << static_cast<int>(f.kind) << " v=" << v;
    ASSERT_EQ(got, reference(f, v))
        << "kind=" << static_cast<int>(f.kind) << " procs=" << f.procs
        << " block=" << f.block << " offset=" << f.offset << " v=" << v;
  }
}

TEST(CoordFold, BlockPartitionsContiguously) {
  CoordFold f{DistKind::Block, /*procs=*/4, /*block=*/3, /*offset=*/2};
  // Coordinates 2..13 split into four blocks of three.
  for (Int v = 2; v < 14; ++v) EXPECT_EQ(f.fold(v), (v - 2) / 3);
  // Out-of-hull coordinates clamp rather than wrap.
  EXPECT_EQ(f.fold(1), 0);
  EXPECT_EQ(f.fold(-100), 0);
  EXPECT_EQ(f.fold(14), 3);
  EXPECT_EQ(f.fold(1000), 3);
}

TEST(CoordFold, CyclicHandlesNegativeCoordinates) {
  CoordFold f{DistKind::Cyclic, /*procs=*/4, /*block=*/1, /*offset=*/0};
  EXPECT_EQ(f.fold(-1), 3);
  EXPECT_EQ(f.fold(-4), 0);
  EXPECT_EQ(f.fold(-5), 3);
  // offset != 0 pushes small coordinates negative.
  f.offset = 3;
  EXPECT_EQ(f.fold(0), 1);  // x = -3 -> processor 1 (mod 4)
  EXPECT_EQ(f.fold(2), 3);
}

TEST(CoordFold, BlockCyclicDealsBlocksRoundRobin) {
  CoordFold f{DistKind::BlockCyclic, /*procs=*/3, /*block=*/2, /*offset=*/0};
  const int want[] = {0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2};
  for (Int v = 0; v < 12; ++v) EXPECT_EQ(f.fold(v), want[v]);
  EXPECT_EQ(f.fold(-1), 2);  // block index -1 wraps to the last processor
  EXPECT_EQ(f.fold(-2), 2);
  EXPECT_EQ(f.fold(-3), 1);
}

TEST(CoordFold, DegenerateShapes) {
  // block = 1 makes BLOCK-CYCLIC pure cyclic.
  CoordFold bc{DistKind::BlockCyclic, 5, 1, 0};
  CoordFold cy{DistKind::Cyclic, 5, 1, 0};
  for (Int v = -20; v <= 20; ++v) EXPECT_EQ(bc.fold(v), cy.fold(v));

  // A single processor owns everything under every kind.
  for (DistKind k : {DistKind::Serial, DistKind::Block, DistKind::Cyclic,
                     DistKind::BlockCyclic}) {
    CoordFold one{k, 1, 3, -2};
    for (Int v = -10; v <= 10; ++v) EXPECT_EQ(one.fold(v), 0);
  }

  // Size-1 dimension: only one coordinate ever occurs; it must still map
  // in range for any legal fold.
  CoordFold f{DistKind::Block, 8, 1, 0};
  EXPECT_EQ(f.fold(0), 0);

  // Serial ignores everything.
  CoordFold s{DistKind::Serial, 7, 4, 9};
  for (Int v = -30; v <= 30; ++v) EXPECT_EQ(s.fold(v), 0);
}

}  // namespace
}  // namespace dct::core
