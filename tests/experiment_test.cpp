// Tests for the experiment harness (sweeps, figure rendering, Table 1)
// and its fault isolation: injected faults become CellFailure records,
// optimized modes degrade down the mode chain, unsupported configurations
// are skipped, and a tripped deadline cancels the sweep cooperatively —
// the sweep itself always completes.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "apps/apps.hpp"
#include "support/diagnostics.hpp"
#include "support/table.hpp"

namespace dct::core {
namespace {

TEST(Experiment, SweepBasics) {
  SweepOptions opts;
  opts.procs = {1, 2, 4};
  const SweepResult r = run_sweep(apps::figure1(32, 2), opts);
  ASSERT_EQ(r.speedups.size(), 3u);
  for (const auto& series : r.speedups) {
    ASSERT_EQ(series.size(), 3u);
    for (double s : series) EXPECT_GT(s, 0.0);
  }
  EXPECT_GT(r.seq_cycles, 0.0);
  // BASE at P=1 is the reference: speedup exactly 1.
  EXPECT_DOUBLE_EQ(r.speedups[0][0], 1.0);
}

TEST(Experiment, VerificationCatchesNothingOnLegalPrograms) {
  SweepOptions opts;
  opts.procs = {2};
  opts.verify = true;  // throws if any mode changes results
  EXPECT_NO_THROW(run_sweep(apps::stencil5(12, 2), opts));
}

TEST(Experiment, RenderSweepContainsAllSeries) {
  SweepOptions opts;
  opts.procs = {1, 4};
  const SweepResult r = run_sweep(apps::figure1(24, 1), opts);
  const std::string text = render_sweep("demo", r);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("base"), std::string::npos);
  EXPECT_NE(text.find("comp decomp"), std::string::npos);
  EXPECT_NE(text.find("data transform"), std::string::npos);
  EXPECT_NE(text.find("memory behaviour"), std::string::npos);
}

TEST(Experiment, Table1RowFields) {
  const Table1Row row = table1_row("fig1", apps::figure1(48, 2), 8);
  EXPECT_EQ(row.program, "fig1");
  EXPECT_GT(row.base_speedup, 0.0);
  EXPECT_GT(row.full_speedup, 0.0);
  EXPECT_NE(row.decompositions.find("BLOCK"), std::string::npos);
  const std::string table = render_table1({row});
  EXPECT_NE(table.find("fig1"), std::string::npos);
}

TEST(Experiment, ChartRendering) {
  const std::string chart = render_speedup_chart(
      "title", {1, 2, 4}, {Series{"s1", {1.0, 2.0, 4.0}}});
  EXPECT_NE(chart.find("title"), std::string::npos);
  EXPECT_NE(chart.find("processors"), std::string::npos);
  EXPECT_NE(chart.find("s1"), std::string::npos);
}

TEST(Experiment, InjectedFaultDegradesDownTheModeChain) {
  // Full faults at P=4; the cell must serve the CompDecomp result instead
  // and record a degraded CellFailure — not abort the sweep.
  SweepOptions opts;
  opts.procs = {2, 4};
  opts.verify = false;
  opts.fault_hook = [](Mode mode, int procs) {
    if (mode == Mode::Full && procs == 4)
      throw Error("injected pass fault");
  };
  const SweepResult r = run_sweep(apps::figure1(24, 2), opts);

  ASSERT_EQ(r.failures.size(), 1u);
  const CellFailure& f = r.failures[0];
  EXPECT_EQ(f.mode, Mode::Full);
  EXPECT_EQ(f.procs, 4);
  EXPECT_TRUE(f.degraded);
  EXPECT_EQ(f.served_mode, Mode::CompDecomp);
  EXPECT_FALSE(f.skipped);
  EXPECT_NE(f.what.find("injected"), std::string::npos);
  EXPECT_NE(f.repro.find("mode=comp decomp + data transform"),
            std::string::npos);

  // The served fallback result still yields a real speedup number...
  EXPECT_GT(r.speedups[2][1], 0.0);
  // ...and the trace carries the `degraded` pass record.
  bool saw_degraded = false;
  for (const auto& p : r.trace.passes) saw_degraded |= p.name == "degraded";
  EXPECT_TRUE(saw_degraded);
}

TEST(Experiment, FaultInEveryModeYieldsFailedCellNotAbort) {
  SweepOptions opts;
  opts.procs = {2, 4};
  opts.verify = false;
  opts.fault_hook = [](Mode, int procs) {
    if (procs == 4) throw std::runtime_error("hard fault");  // every mode
  };
  SweepResult r;
  ASSERT_NO_THROW(r = run_sweep(apps::figure1(24, 2), opts));

  // All three P=4 cells failed all the way down the chain.
  ASSERT_EQ(r.failures.size(), 3u);
  for (const CellFailure& f : r.failures) {
    EXPECT_EQ(f.procs, 4);
    EXPECT_FALSE(f.degraded);
    EXPECT_EQ(f.code, Error::Code::kFault);  // foreign exception wrapped
  }
  // Failed cells render as "-", and the failure table is printed.
  for (size_t m = 0; m < r.modes.size(); ++m) {
    EXPECT_GT(r.speedups[m][0], 0.0);
    EXPECT_EQ(r.speedups[m][1], 0.0);
  }
  const std::string text = render_sweep("faulty", r);
  EXPECT_NE(text.find("cell failures:"), std::string::npos);
  EXPECT_NE(text.find(" - |"), std::string::npos);
}

TEST(Experiment, RetriesRecoverTransientFaults) {
  std::atomic<int> remaining{2};  // first two attempts anywhere fault
  SweepOptions opts;
  opts.procs = {2};
  opts.verify = false;
  opts.threads = 1;  // deterministic attempt order
  opts.retries = 2;
  opts.fault_hook = [&remaining](Mode, int) {
    if (remaining.fetch_sub(1) > 0) throw Error("transient fault");
  };
  const SweepResult r = run_sweep(apps::figure1(24, 2), opts);
  // The retry budget absorbed the transient faults: no failure records,
  // every cell produced its own result.
  EXPECT_TRUE(r.all_cells_ok());
  for (const auto& series : r.speedups)
    for (double s : series) EXPECT_GT(s, 0.0);
}

TEST(Experiment, UnsupportedProcCountIsSkippedNotDegraded) {
  // P=256 exceeds the simulator's int8 writer-id contract: the cell is
  // recorded as skipped (kUnsupportedConfig) and never degraded — every
  // mode would be equally unsupported.
  SweepOptions opts;
  opts.procs = {2, 256};
  opts.modes = {Mode::Base};
  opts.verify = false;
  const SweepResult r = run_sweep(apps::figure1(16, 1), opts);
  ASSERT_EQ(r.failures.size(), 1u);
  const CellFailure& f = r.failures[0];
  EXPECT_TRUE(f.skipped);
  EXPECT_FALSE(f.degraded);
  EXPECT_EQ(f.code, Error::Code::kUnsupportedConfig);
  EXPECT_EQ(f.procs, 256);
  EXPECT_GT(r.speedups[0][0], 0.0);
  EXPECT_EQ(r.speedups[0][1], 0.0);
}

TEST(Experiment, DeadlineCancelsRunawaySweep) {
  // A deadline that expires immediately: simulations stop at their first
  // cancellation poll and undispatched cells are recorded as cancelled.
  // The sweep still returns a complete (all-failures) result.
  SweepOptions opts;
  opts.procs = {2, 4, 8};
  opts.verify = false;
  opts.deadline_ms = 0.0001;
  const SweepResult r = run_sweep(apps::stencil5(64, 4), opts);
  ASSERT_FALSE(r.failures.empty());
  for (const CellFailure& f : r.failures)
    EXPECT_EQ(f.code, Error::Code::kDeadlineExceeded) << f.to_string();
  // Nothing useful was measured, but nothing crashed either.
  const std::string text = render_sweep("deadline", r);
  EXPECT_NE(text.find("cell failures:"), std::string::npos);
}

TEST(Experiment, CellFailureToStringIsInformative) {
  CellFailure f;
  f.mode = Mode::Full;
  f.procs = 8;
  f.code = Error::Code::kFault;
  f.stage = "pass lower";
  f.what = "boom";
  f.attempts = 3;
  const std::string s = f.to_string();
  EXPECT_NE(s.find("P=8"), std::string::npos);
  EXPECT_NE(s.find("fault"), std::string::npos);
  EXPECT_NE(s.find("pass lower"), std::string::npos);
  EXPECT_NE(s.find("boom"), std::string::npos);
}

TEST(Experiment, TableAlignment) {
  Table t({"a", "bbb"});
  t.add_row({"1", "2"});
  t.add_row({"100", "20000"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 100 | 20000 |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace dct::core
