// Tests for the experiment harness (sweeps, figure rendering, Table 1).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "support/diagnostics.hpp"
#include "support/table.hpp"

namespace dct::core {
namespace {

TEST(Experiment, SweepBasics) {
  SweepOptions opts;
  opts.procs = {1, 2, 4};
  const SweepResult r = run_sweep(apps::figure1(32, 2), opts);
  ASSERT_EQ(r.speedups.size(), 3u);
  for (const auto& series : r.speedups) {
    ASSERT_EQ(series.size(), 3u);
    for (double s : series) EXPECT_GT(s, 0.0);
  }
  EXPECT_GT(r.seq_cycles, 0.0);
  // BASE at P=1 is the reference: speedup exactly 1.
  EXPECT_DOUBLE_EQ(r.speedups[0][0], 1.0);
}

TEST(Experiment, VerificationCatchesNothingOnLegalPrograms) {
  SweepOptions opts;
  opts.procs = {2};
  opts.verify = true;  // throws if any mode changes results
  EXPECT_NO_THROW(run_sweep(apps::stencil5(12, 2), opts));
}

TEST(Experiment, RenderSweepContainsAllSeries) {
  SweepOptions opts;
  opts.procs = {1, 4};
  const SweepResult r = run_sweep(apps::figure1(24, 1), opts);
  const std::string text = render_sweep("demo", r);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("base"), std::string::npos);
  EXPECT_NE(text.find("comp decomp"), std::string::npos);
  EXPECT_NE(text.find("data transform"), std::string::npos);
  EXPECT_NE(text.find("memory behaviour"), std::string::npos);
}

TEST(Experiment, Table1RowFields) {
  const Table1Row row = table1_row("fig1", apps::figure1(48, 2), 8);
  EXPECT_EQ(row.program, "fig1");
  EXPECT_GT(row.base_speedup, 0.0);
  EXPECT_GT(row.full_speedup, 0.0);
  EXPECT_NE(row.decompositions.find("BLOCK"), std::string::npos);
  const std::string table = render_table1({row});
  EXPECT_NE(table.find("fig1"), std::string::npos);
}

TEST(Experiment, ChartRendering) {
  const std::string chart = render_speedup_chart(
      "title", {1, 2, 4}, {Series{"s1", {1.0, 2.0, 4.0}}});
  EXPECT_NE(chart.find("title"), std::string::npos);
  EXPECT_NE(chart.find("processors"), std::string::npos);
  EXPECT_NE(chart.find("s1"), std::string::npos);
}

TEST(Experiment, TableAlignment) {
  Table t({"a", "bbb"});
  t.add_row({"1", "2"});
  t.add_row({"100", "20000"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 100 | 20000 |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace dct::core
