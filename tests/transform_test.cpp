// Tests for unimodular loop transformations: the transformed nest must
// execute exactly the same set of statement instances (same array touches)
// in a new order.
#include "ir/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace dct::ir {
namespace {

using linalg::IntMatrix;

/// Collect the multiset of (array, element index) touches of a nest.
std::multiset<std::pair<int, Vec>> touches(const LoopNest& nest) {
  std::multiset<std::pair<int, Vec>> out;
  for_each_iteration(nest, [&](std::span<const Int> it) {
    for (const Stmt& s : nest.stmts) {
      for (const ArrayRef& r : s.reads) out.insert({r.array, r.index(it)});
      if (s.write) out.insert({s.write->array, s.write->index(it)});
    }
  });
  return out;
}

LoopNest rect_nest(Int n, Int m) {
  LoopNest nest;
  nest.name = "rect";
  nest.loops.push_back(loop("i", cst(0), cst(n - 1)));
  nest.loops.push_back(loop("j", cst(0), cst(m - 1)));
  Stmt s;
  s.write = simple_ref(0, 2, {{0, 0}, {1, 0}});
  s.reads = {simple_ref(0, 2, {{0, 0}, {1, 1}})};
  nest.stmts.push_back(std::move(s));
  return nest;
}

LoopNest tri_nest(Int n) {
  LoopNest nest;
  nest.name = "tri";
  nest.loops.push_back(loop("i", cst(0), cst(n - 1)));
  nest.loops.push_back(loop("j", var(0) + 1, cst(n - 1)));
  Stmt s;
  s.write = simple_ref(0, 2, {{1, 0}, {0, 0}});
  nest.stmts.push_back(std::move(s));
  return nest;
}

TEST(Matrices, Constructors) {
  EXPECT_EQ(permutation_matrix({1, 0}), (IntMatrix{{0, 1}, {1, 0}}));
  EXPECT_EQ(skew_matrix(2, 1, 0, 3), (IntMatrix{{1, 0}, {3, 1}}));
  EXPECT_EQ(reversal_matrix(2, 0), (IntMatrix{{-1, 0}, {0, 1}}));
  EXPECT_THROW(permutation_matrix({0, 0}), Error);
  EXPECT_THROW(skew_matrix(2, 1, 1, 1), Error);
}

TEST(UnimodularInverse, RoundTrips) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    // Random unimodular: product of elementary skews and permutations.
    const int n = static_cast<int>(rng.uniform(2, 4));
    IntMatrix u = IntMatrix::identity(n);
    for (int k = 0; k < 5; ++k) {
      const int a = static_cast<int>(rng.uniform(0, n - 1));
      int b = static_cast<int>(rng.uniform(0, n - 1));
      if (a == b) b = (b + 1) % n;
      u = u * skew_matrix(n, a, b, rng.uniform(-2, 2));
    }
    const IntMatrix inv = unimodular_inverse(u);
    EXPECT_EQ(u * inv, IntMatrix::identity(n));
    EXPECT_EQ(inv * u, IntMatrix::identity(n));
  }
  EXPECT_THROW(unimodular_inverse(IntMatrix{{2, 0}, {0, 1}}), Error);
}

TEST(ApplyUnimodular, InterchangePreservesTouches) {
  const LoopNest nest = rect_nest(5, 7);
  const LoopNest t = apply_unimodular(nest, permutation_matrix({1, 0}));
  EXPECT_EQ(touches(nest), touches(t));
  // The interchanged nest iterates j outermost: 7 * 5 iterations.
  Program p;
  p.nests.push_back(t);
  EXPECT_EQ(p.nest_iterations(p.nests[0]), 35);
}

TEST(ApplyUnimodular, InterchangeTriangular) {
  const LoopNest nest = tri_nest(6);
  const LoopNest t = apply_unimodular(nest, permutation_matrix({1, 0}));
  EXPECT_EQ(touches(nest), touches(t));
}

TEST(ApplyUnimodular, SkewPreservesTouches) {
  const LoopNest nest = rect_nest(4, 5);
  const LoopNest t = apply_unimodular(nest, skew_matrix(2, 1, 0, 1));
  EXPECT_EQ(touches(nest), touches(t));
}

TEST(ApplyUnimodular, ReversalPreservesTouches) {
  const LoopNest nest = rect_nest(4, 5);
  const LoopNest t = apply_unimodular(nest, reversal_matrix(2, 1));
  EXPECT_EQ(touches(nest), touches(t));
}

TEST(ApplyUnimodular, RandomCompositions) {
  Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    const LoopNest nest = trial % 2 == 0 ? rect_nest(4, 4) : tri_nest(5);
    IntMatrix u = IntMatrix::identity(2);
    for (int k = 0; k < 3; ++k) {
      switch (rng.uniform(0, 2)) {
        case 0:
          u = permutation_matrix({1, 0}) * u;
          break;
        case 1:
          u = skew_matrix(2, 1, 0, rng.uniform(-1, 2)) * u;
          break;
        default:
          u = skew_matrix(2, 0, 1, rng.uniform(-1, 1)) * u;
          break;
      }
    }
    const LoopNest t = apply_unimodular(nest, u);
    EXPECT_EQ(touches(nest), touches(t)) << "transform\n" << u.to_string();
  }
}

TEST(ApplyUnimodular, RejectsNonUnimodular) {
  EXPECT_THROW(apply_unimodular(rect_nest(3, 3), IntMatrix{{2, 0}, {0, 1}}),
               Error);
}

TEST(ApplyUnimodular, ThreeDeep) {
  LoopNest nest;
  nest.loops.push_back(loop("i", cst(0), cst(3)));
  nest.loops.push_back(loop("j", cst(1), cst(4)));
  nest.loops.push_back(loop("k", var(0), var(1) + 2));
  Stmt s;
  s.write = simple_ref(0, 3, {{0, 0}, {1, 0}, {2, 0}});
  nest.stmts.push_back(std::move(s));
  const LoopNest t = apply_unimodular(nest, permutation_matrix({2, 0, 1}));
  EXPECT_EQ(touches(nest), touches(t));
}

}  // namespace
}  // namespace dct::ir
