// Tests for the HPF directive front-end.
#include "hpf/hpf.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "layout/layout.hpp"
#include "support/diagnostics.hpp"

namespace dct::hpf {
namespace {

using decomp::DistKind;

ir::Program prog2d() {
  ir::ProgramBuilder pb("hpf");
  pb.array("A", {16, 16});
  pb.array("B", {16, 16});
  pb.array("X", {16, 16, 4});
  return pb.build();
}

TEST(Hpf, DirectDistribute) {
  const auto d = parse(prog2d(), "DISTRIBUTE A(BLOCK, *)\n");
  ASSERT_TRUE(d.arrays.count("A"));
  const auto& ad = d.arrays.at("A");
  EXPECT_EQ(ad.dims[0].kind, DistKind::Block);
  EXPECT_EQ(ad.dims[1].kind, DistKind::Serial);
  EXPECT_EQ(ad.dims[0].proc_dim, 0);
}

TEST(Hpf, CyclicWithBlockSize) {
  const auto d = parse(prog2d(), "DISTRIBUTE A(CYCLIC(4), CYCLIC)\n");
  const auto& ad = d.arrays.at("A");
  EXPECT_EQ(ad.dims[0].kind, DistKind::BlockCyclic);
  EXPECT_EQ(ad.dims[0].block, 4);
  EXPECT_EQ(ad.dims[1].kind, DistKind::Cyclic);
  EXPECT_NE(ad.dims[0].proc_dim, ad.dims[1].proc_dim);
}

TEST(Hpf, TemplateAlignment) {
  const auto d = parse(prog2d(),
                       "TEMPLATE T(16, 16)\n"
                       "DISTRIBUTE T(BLOCK, CYCLIC)\n"
                       "ALIGN A(i, j) WITH T(i, j)\n"
                       "ALIGN B(i, j) WITH T(j, i)\n");
  const auto& a = d.arrays.at("A");
  EXPECT_EQ(a.dims[0].kind, DistKind::Block);
  EXPECT_EQ(a.dims[1].kind, DistKind::Cyclic);
  // B is transposed against the template.
  const auto& b = d.arrays.at("B");
  EXPECT_EQ(b.dims[0].kind, DistKind::Cyclic);
  EXPECT_EQ(b.dims[1].kind, DistKind::Block);
  // Aligned dims share virtual processor dimensions.
  EXPECT_EQ(a.dims[0].proc_dim, b.dims[1].proc_dim);
  EXPECT_EQ(a.dims[1].proc_dim, b.dims[0].proc_dim);
}

TEST(Hpf, OffsetsIgnored) {
  const auto d = parse(prog2d(),
                       "TEMPLATE T(16, 16)\n"
                       "DISTRIBUTE T(BLOCK, *)\n"
                       "ALIGN A(i, j) WITH T(i+3, j)\n");
  EXPECT_EQ(d.arrays.at("A").dims[0].kind, DistKind::Block);
}

TEST(Hpf, ReplicatedAndCollapsedDims) {
  const auto d = parse(prog2d(),
                       "TEMPLATE T(16, 16, 16)\n"
                       "DISTRIBUTE T(BLOCK, *, CYCLIC)\n"
                       "ALIGN A(i, j) WITH T(i, 1, *)\n");
  const auto& a = d.arrays.at("A");
  EXPECT_EQ(a.dims[0].kind, DistKind::Block);
  EXPECT_EQ(a.dims[1].kind, DistKind::Serial);
}

TEST(Hpf, CommentsAndPrefixes) {
  const auto d = parse(prog2d(),
                       "! a comment line\n"
                       "!HPF$ DISTRIBUTE A(*, BLOCK)\n"
                       "DISTRIBUTE B(BLOCK, *)  ! trailing comment\n");
  EXPECT_EQ(d.arrays.at("A").dims[1].kind, DistKind::Block);
  EXPECT_EQ(d.arrays.at("B").dims[0].kind, DistKind::Block);
}

TEST(Hpf, Errors) {
  EXPECT_THROW(parse(prog2d(), "DISTRIBUTE NOPE(BLOCK)\n"), Error);
  EXPECT_THROW(parse(prog2d(), "DISTRIBUTE A(BLOCK)\n"), Error);  // rank
  EXPECT_THROW(parse(prog2d(), "DISTRIBUTE A(SLICED, *)\n"), Error);
  EXPECT_THROW(parse(prog2d(), "ALIGN A(i, j) WITH T(i, j)\n"), Error);
  EXPECT_THROW(parse(prog2d(), "FROBNICATE A\n"), Error);
  EXPECT_THROW(parse(prog2d(), "DISTRIBUTE A(CYCLIC(0), *)\n"), Error);
}

TEST(Hpf, CaseInsensitive) {
  const auto d = parse(prog2d(), "distribute a(block, *)\n");
  EXPECT_EQ(d.arrays.at("A").dims[0].kind, DistKind::Block);
}

TEST(Hpf, FeedsLayoutDerivation) {
  // The end-to-end promise: HPF input yields the same restructuring the
  // automatic pipeline would produce.
  const ir::Program prog = prog2d();
  const auto d = parse(prog, "DISTRIBUTE X(*, CYCLIC, *)\n");
  const int grid[] = {4};
  const dct::layout::Layout l = dct::layout::derive_layout(
      prog.arrays[static_cast<size_t>(prog.array_id("X"))], d.arrays.at("X"),
      grid);
  EXPECT_FALSE(l.is_identity());
  EXPECT_EQ(l.dims(), (std::vector<linalg::Int>{16, 4, 4, 4}));
}

// ---------------------------------------------------------------------------
// Negative inputs: malformed directives must surface as structured
// kInvalidArgument errors carrying the source line in their context chain,
// not as silent skips or bare asserts.
// ---------------------------------------------------------------------------

// Asserts `text` fails to parse with kInvalidArgument and that the error's
// context chain names the expected 1-based line.
void expect_parse_fail(const std::string& text, int line) {
  try {
    (void)parse(prog2d(), text);
    FAIL() << "expected parse to throw for: " << text;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kInvalidArgument) << text;
    const std::string full = e.full_message();
    EXPECT_NE(full.find("hpf line " + std::to_string(line)),
              std::string::npos)
        << "missing line context in: " << full;
  }
}

TEST(HpfErrors, UnknownDistributionKeyword) {
  expect_parse_fail("DISTRIBUTE A(FOO, *)\n", 1);
}

TEST(HpfErrors, CyclicBlockMustBePositive) {
  expect_parse_fail("DISTRIBUTE A(CYCLIC(0), *)\n", 1);
  expect_parse_fail("DISTRIBUTE A(CYCLIC(-2), *)\n", 1);
}

TEST(HpfErrors, RankMismatchAgainstArray) {
  expect_parse_fail("DISTRIBUTE A(BLOCK)\n", 1);              // A is 2-D
  expect_parse_fail("DISTRIBUTE A(BLOCK, *, CYCLIC)\n", 1);
}

TEST(HpfErrors, RankMismatchAgainstTemplate) {
  expect_parse_fail("TEMPLATE T(16, 16)\nDISTRIBUTE T(BLOCK)\n", 2);
}

TEST(HpfErrors, UnknownArrayOrTemplate) {
  expect_parse_fail("DISTRIBUTE NOSUCH(BLOCK, *)\n", 1);
  expect_parse_fail("ALIGN NOSUCH(i, j) WITH T(i, j)\n", 1);
}

TEST(HpfErrors, UnknownDirective) {
  expect_parse_fail("REDISTRIBUTE A(BLOCK, *)\n", 1);
}

TEST(HpfErrors, UnknownAlignDummy) {
  expect_parse_fail(
      "TEMPLATE T(16, 16)\nDISTRIBUTE T(BLOCK, *)\n"
      "ALIGN A(i, j) WITH T(k, j)\n",
      3);
}

TEST(HpfErrors, AlignMissingWith) {
  expect_parse_fail("ALIGN A(i, j) T(i, j)\n", 1);
}

TEST(HpfErrors, AlignTargetNeverDistributed) {
  expect_parse_fail("TEMPLATE T(16, 16)\nALIGN A(i, j) WITH T(i, j)\n", 2);
}

TEST(HpfErrors, MissingParensAndSeparators) {
  expect_parse_fail("DISTRIBUTE A BLOCK, *\n", 1);   // no '('
  expect_parse_fail("DISTRIBUTE A(BLOCK *\n", 1);    // no ',' or ')'
  expect_parse_fail("DISTRIBUTE A(CYCLIC(2, *)\n", 1);  // unclosed CYCLIC
}

TEST(HpfErrors, NumberOutOfRange) {
  expect_parse_fail(
      "DISTRIBUTE A(CYCLIC(99999999999999999999999999), *)\n", 1);
}

TEST(HpfErrors, ErrorReportsCorrectLineAmongMany) {
  // Valid lines before and after; only line 3 is malformed.
  expect_parse_fail(
      "DISTRIBUTE A(BLOCK, *)\n"
      "DISTRIBUTE B(*, CYCLIC)\n"
      "DISTRIBUTE X(BOGUS, *, *)\n",
      3);
}

}  // namespace
}  // namespace dct::hpf
