// Property tests for Partition::fold — the array-element ownership map —
// and regression tests for Layout::linearize bounds checking.
//
// Partition::fold must use Euclidean (floored) division semantics like
// CoordFold::fold: with C++ truncating / and %, negative indices produce
// a negative Block "owner" (aliasing the -1 unbound marker) and mis-wrap
// CYCLIC/BLOCK-CYCLIC coordinates. The references here are brute-force
// restatements of the distribution definitions, mirroring
// coordfold_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>

#include "layout/layout.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace dct::layout {
namespace {

using decomp::DistKind;

// BLOCK: processor p owns [p*block, (p+1)*block); out-of-range
// coordinates clamp to the boundary processors (totality, matching
// CoordFold::fold).
int block_ref(Int x, int procs, Int block) {
  block = std::max<Int>(1, block);
  if (x < 0) return 0;
  for (int p = 0; p < procs; ++p)
    if (x < static_cast<Int>(p + 1) * block) return p;
  return procs - 1;
}

// CYCLIC: processor p owns every coordinate congruent to p modulo procs.
int cyclic_ref(Int x, int procs) {
  for (int p = 0; p < procs; ++p)
    if ((x - p) % procs == 0) return p;
  ADD_FAILURE() << "no congruent processor for " << x;
  return -1;
}

// BLOCK-CYCLIC(b): blocks of b dealt out cyclically, floor semantics for
// negative coordinates.
int block_cyclic_ref(Int x, int procs, Int block) {
  block = std::max<Int>(1, block);
  Int q = 0;
  while (q * block > x) --q;
  while ((q + 1) * block <= x) ++q;
  return cyclic_ref(q, procs);
}

Partition one_dim(DistKind kind, int procs, Int extent, Int block) {
  Partition part;
  part.num_proc_dims = 1;
  Partition::Dim d;
  d.kind = kind;
  d.proc_dim = 0;
  d.extent = extent;
  d.procs = procs;
  d.block = block;
  part.dims.push_back(d);
  return part;
}

int reference(const Partition::Dim& d, Int idx) {
  switch (d.kind) {
    case DistKind::Serial: return -1;
    case DistKind::Block: return block_ref(idx, d.procs, d.block);
    case DistKind::Cyclic: return cyclic_ref(idx, d.procs);
    case DistKind::BlockCyclic:
      return block_cyclic_ref(idx, d.procs, d.block);
  }
  return -1;
}

TEST(PartitionFold, MatchesBruteForceIncludingNegatives) {
  Rng rng(20260807);
  const DistKind kinds[] = {DistKind::Block, DistKind::Cyclic,
                            DistKind::BlockCyclic};
  for (int trial = 0; trial < 500; ++trial) {
    const DistKind kind = kinds[rng.uniform(0, 2)];
    const int procs = static_cast<int>(rng.uniform(1, 9));
    const Int extent = rng.uniform(1, 64);
    const Int block = kind == DistKind::Block
                          ? (extent + procs - 1) / procs
                          : rng.uniform(1, 7);
    const Partition part = one_dim(kind, procs, extent, block);
    for (Int idx = -3 * extent; idx <= 3 * extent; ++idx) {
      const int got = part.fold(0, idx);
      ASSERT_EQ(got, reference(part.dims[0], idx))
          << "kind=" << static_cast<int>(kind) << " procs=" << procs
          << " block=" << block << " idx=" << idx;
      // Totality: every index folds into [0, procs).
      ASSERT_GE(got, 0);
      ASSERT_LT(got, procs);
    }
  }
}

TEST(PartitionFold, SerialDimIsUnbound) {
  const Partition part = one_dim(DistKind::Serial, 4, 16, 1);
  EXPECT_EQ(part.fold(0, 0), -1);
  EXPECT_EQ(part.fold(0, -5), -1);
  EXPECT_EQ(part.fold(0, 100), -1);
}

TEST(PartitionFold, NegativeIndexNeverAliasesUnboundMarker) {
  // The truncating-division bug made Block fold return idx/block < 0 for
  // negative indices — indistinguishable from the -1 "unbound" marker
  // consumed by owner().
  const Partition part = one_dim(DistKind::Block, 4, 16, 4);
  for (Int idx = -20; idx < 0; ++idx) {
    const std::vector<Int> index = {idx};
    const std::vector<int> coords = part.owner(index);
    ASSERT_EQ(coords.size(), 1u);
    EXPECT_EQ(coords[0], 0) << "idx=" << idx;
  }
}

// ---------------------------------------------------------------------------
// Layout::linearize bounds checking: the fast (closed-form) path must
// reject out-of-range indices exactly like the slow (step-interpreting)
// path instead of silently wrapping into another element's address.
// ---------------------------------------------------------------------------

// A layout whose steps include a non-simple strip (strip size not
// dividing the modulus) takes the slow path; the same shape built with
// dividing strips takes the fast path.
TEST(LayoutLinearize, OutOfRangeFailsOnFastPath) {
  Layout l = Layout::identity({16, 8});
  l.apply(StripMine{0, 4});   // (i mod 4, i div 4, j)
  l.apply(Permute{{0, 2, 1}});
  ASSERT_TRUE(l.all_simple());
  const std::vector<Int> in_range = {15, 7};
  (void)l.linearize(in_range);  // must not throw
  for (const std::vector<Int>& bad :
       {std::vector<Int>{16, 0}, std::vector<Int>{0, 8},
        std::vector<Int>{-1, 0}, std::vector<Int>{0, -1},
        std::vector<Int>{64, 3}}) {
    EXPECT_THROW((void)l.linearize(bad), Error)
        << "(" << bad[0] << "," << bad[1] << ")";
  }
}

TEST(LayoutLinearize, OutOfRangeFailsIdenticallyOnBothPaths) {
  // fast path: strip size divides the extent chain.
  Layout fast = Layout::identity({12});
  fast.apply(StripMine{0, 4});  // dims (4, 3), simple
  ASSERT_TRUE(fast.all_simple());
  // slow path: strip the strip — 3 does not divide 4, so the closed form
  // is abandoned and linearize interprets the transform steps.
  Layout slow = Layout::identity({12});
  slow.apply(StripMine{0, 4});
  slow.apply(StripMine{0, 3});  // (i mod 4) split by 3: not simple
  ASSERT_FALSE(slow.all_simple());

  for (Int idx : {Int{-7}, Int{-1}, Int{12}, Int{13}, Int{48}}) {
    const std::vector<Int> index = {idx};
    EXPECT_THROW((void)fast.linearize(index), Error) << idx;
    EXPECT_THROW((void)slow.linearize(index), Error) << idx;
  }
  // And both accept the full in-range domain.
  for (Int idx = 0; idx < 12; ++idx) {
    const std::vector<Int> index = {idx};
    (void)fast.linearize(index);  // must not throw
    (void)slow.linearize(index);  // must not throw
  }
}

TEST(LayoutLinearize, CeilPaddingSlackAgreesAcrossPaths) {
  // Strip size 5 over extent 12 pads to 3 strips of 5 = 15 elements.
  // Indices 12..14 land in the padding: both paths accept them (they map
  // inside the restructured extents) — the contract is path agreement,
  // not original-extent checking.
  Layout fast = Layout::identity({12});
  fast.apply(StripMine{0, 5});  // dims (5, 3)
  ASSERT_TRUE(fast.all_simple());
  for (Int idx = 12; idx < 15; ++idx)
    (void)fast.linearize(std::vector<Int>{idx});  // must not throw
  EXPECT_THROW((void)fast.linearize(std::vector<Int>{15}), Error);
}

}  // namespace
}  // namespace dct::layout
