// Concurrency regression tests, written to run under ThreadSanitizer
// (the build-tsan CI job builds with -fsanitize=thread and runs exactly
// this binary plus the service tests).
//
// Historically the pipeline consulted process-global state mid-compile
// (getenv for DCT_TRACE / DCT_VALIDATE / DCT_DEBUG_DECOMP), so two
// concurrent compilations with different settings raced. These tests pin
// the fix: every knob travels in CompileOptions, so concurrent compiles
// with *different* options — tracing to different sinks included — are
// clean, and the serving cache keeps its invariants under a thread storm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"
#include "service/cache.hpp"
#include "service/server.hpp"

namespace dct {
namespace {

using service::Engine;
using service::Request;
using service::Response;
using service::Server;
using service::ServerOptions;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The satellite regression: two programs compiled concurrently, both with
// tracing enabled but aimed at per-compilation sinks. Before the
// CompileOptions refactor this setup raced on the env-derived global
// trace flag; now each compile owns its options and its sink.
TEST(Concurrency, ConcurrentTracedCompiles) {
  const std::string path_a = "concurrency_trace_a.jsonl";
  const std::string path_b = "concurrency_trace_b.jsonl";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  constexpr int kRounds = 4;
  std::thread ta([&] {
    core::CompileOptions opts;
    opts.trace = true;
    opts.trace_path = path_a;
    for (int i = 0; i < kRounds; ++i)
      (void)core::compile(apps::lu(16), core::Mode::Full, 4, opts);
  });
  std::thread tb([&] {
    core::CompileOptions opts;
    opts.trace = true;
    opts.trace_path = path_b;
    opts.validate = true;  // different pipeline shape, concurrently
    for (int i = 0; i < kRounds; ++i)
      (void)core::compile(apps::adi(16, 2), core::Mode::Full, 4, opts);
  });
  ta.join();
  tb.join();

  // Each sink holds exactly its own compile's trace lines.
  const std::string a = read_file(path_a), b = read_file(path_b);
  EXPECT_EQ(std::count(a.begin(), a.end(), '\n'), kRounds);
  EXPECT_EQ(std::count(b.begin(), b.end(), '\n'), kRounds);
  EXPECT_NE(a.find("\"lu\""), std::string::npos);
  EXPECT_EQ(a.find("\"adi\""), std::string::npos);
  EXPECT_NE(b.find("\"adi\""), std::string::npos);
  EXPECT_EQ(b.find("\"lu\""), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// Concurrent compiles with *different* debug/validate settings: proves no
// hidden process-global knob is consulted mid-pipeline.
TEST(Concurrency, MixedOptionCompiles) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &failures] {
      core::CompileOptions opts;
      opts.validate = (t % 2 == 0);
      opts.decomp.debug = false;
      try {
        for (int i = 0; i < 3; ++i)
          (void)core::compile(apps::stencil5(16, 2),
                              t % 2 ? core::Mode::Full
                                    : core::Mode::CompDecomp,
                              4, opts);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The satellite cache stress: N threads x M requests over a mixed
// workload. Asserts the three cache invariants at once — single-flight
// (compile count == unique programs when nothing is evicted), the LRU
// bound, and bit-identical results against a sequential baseline.
TEST(Concurrency, CacheStressMatchesSequential) {
  struct Combo {
    std::string app;
    core::Mode mode;
    int procs;
  };
  const std::vector<Combo> combos = {
      {"figure1", core::Mode::Full, 2},  {"figure1", core::Mode::Base, 2},
      {"lu", core::Mode::Full, 4},       {"lu", core::Mode::CompDecomp, 2},
      {"adi", core::Mode::Full, 2},      {"stencil5", core::Mode::Full, 4},
  };

  // Sequential baseline, bypassing the service entirely.
  std::map<std::string, std::uint64_t> expected;
  for (const Combo& c : combos) {
    const core::CompiledProgram cp =
        core::compile(service::build_app(c.app, 20, 2), c.mode, c.procs,
                      core::CompileOptions{});
    const runtime::RunResult rr =
        runtime::simulate(cp, machine::MachineConfig::dash(c.procs));
    expected[c.app + std::to_string(static_cast<int>(c.mode)) +
             std::to_string(c.procs)] = service::values_fingerprint(rr.values);
  }

  ServerOptions sopts;
  sopts.workers = 4;
  sopts.queue_cap = 8;  // small: exercises submit() backpressure
  sopts.cache_cap = combos.size();  // no evictions -> single-flight holds
  sopts.spot_check_every = 4;
  Server server(sopts);

  constexpr int kThreads = 4, kPerThread = 24;
  std::atomic<int> mismatches{0}, errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1234 + t));
      for (int i = 0; i < kPerThread; ++i) {
        const Combo& c = combos[rng() % combos.size()];
        Request r;
        r.id = std::to_string(t) + ":" + std::to_string(i);
        r.app = c.app;
        r.size = 20;
        r.mode = c.mode;
        r.procs = c.procs;
        const Response resp = server.call(r);
        if (!resp.ok) {
          errors.fetch_add(1);
          continue;
        }
        const std::uint64_t want =
            expected.at(c.app + std::to_string(static_cast<int>(c.mode)) +
                        std::to_string(c.procs));
        if (resp.values_hash != want) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent cached results must be bit-identical to sequential";
  const auto stats = server.cache().stats();
  EXPECT_EQ(stats.misses, static_cast<long>(combos.size()))
      << "single-flight: exactly one compile per unique program";
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(stats.hits + stats.inflight_dedup + stats.misses,
            static_cast<long>(kThreads) * kPerThread);
}

// LRU bound under churn: a cache far smaller than the workload's unique
// set must stay within capacity while every request still succeeds.
TEST(Concurrency, TinyCacheChurnStaysBounded) {
  ServerOptions sopts;
  sopts.workers = 4;
  sopts.cache_cap = 2;
  Server server(sopts);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 24; ++i) {
    Request r;
    r.id = std::to_string(i);
    r.app = (i % 2) ? "lu" : "figure1";
    r.size = 16 + 2 * (i % 4);  // 4 sizes x 2 apps = 8 unique keys
    r.procs = 2;
    r.engine = Engine::Compile;
    futs.push_back(server.submit(r));
  }
  for (auto& f : futs) {
    const Response r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  server.drain();
  const auto stats = server.cache().stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0);
}

}  // namespace
}  // namespace dct
