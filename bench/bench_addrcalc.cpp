// Section 4.3 micro-benchmark (google-benchmark): the address-calculation
// optimizations for transformed arrays, measured natively. The transformed
// subscript of a (CYCLIC, *) column distribution is
//     A(i mod b, j, i div b)
// computed three ways:
//   Naive      — integer mod and div on every access;
//   Hoisted    — div/mod recomputed only when the driving index changes
//                (here the index changes every iteration, so this matches
//                naive — included to show when hoisting does not help);
//   Optimized  — the paper's strength reduction: maintain (imod, idiv)
//                with an increment and a compare.
// Also reports the analytic cost-model overheads used by the simulator.
//
// Expected outcome on MODERN hardware: the affine-mod pair (the paper's
// DO-20 example) still shows the optimization winning clearly, but the
// simple subscript case is nearly a wash — today's compilers strength-
// reduce division by a constant into a multiply, something the 1995
// MIPS R3000 tool chain (35-cycle divide) could not do. The simulator's
// cost model (printed first) reflects the R3000 the paper measured on.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "layout/layout.hpp"

namespace {

constexpr long kN = 1 << 14;
constexpr long kB = 13;  // non-power-of-2: a real divide, as on the R3000
// (with a power-of-2 strip size a modern compiler reduces mod/div to bit
// ops and the naive form is already cheap — the paper's MIPS R3000 had a
// ~35-cycle divide with no such escape hatch)

void BM_AddrNaive(benchmark::State& state) {
  std::vector<float> a(kN * 2, 1.0f);
  for (auto _ : state) {
    float sum = 0;
    for (long i = 0; i < kN; ++i) {
      const long addr = (i % kB) + kB * (i / kB);  // mod + div every access
      sum += a[static_cast<size_t>(addr)];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_AddrNaive);

void BM_AddrHoisted(benchmark::State& state) {
  std::vector<float> a(kN * 2, 1.0f);
  for (auto _ : state) {
    float sum = 0;
    // Outer loop over strips: div hoisted, mod linearized inside.
    for (long strip = 0; strip < kN / kB; ++strip) {
      const long base = kB * strip;
      for (long m = 0; m < kB; ++m) sum += a[static_cast<size_t>(base + m)];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_AddrHoisted);

void BM_AddrStrengthReduced(benchmark::State& state) {
  std::vector<float> a(kN * 2, 1.0f);
  for (auto _ : state) {
    float sum = 0;
    long imod = 0, idiv = 0;  // the paper's optimized code shape
    for (long i = 0; i < kN; ++i) {
      sum += a[static_cast<size_t>(imod + kB * idiv)];
      if (++imod >= kB) {
        imod = 0;
        ++idiv;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_AddrStrengthReduced);

/// The strength-reduced modulo of an affine expression with stride (the
/// paper's DO 20 example: x = mod(4*J+c, 64) without any mod in the loop).
void BM_AffineModStrengthReduced(benchmark::State& state) {
  for (auto _ : state) {
    long total = 0;
    long x = 3 % 64, y = 3 / 64;
    for (long j = 0; j < kN; ++j) {
      total += x + y;
      x += 4;
      if (x >= 64) {
        x -= 64;
        ++y;
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_AffineModStrengthReduced);

void BM_AffineModNaive(benchmark::State& state) {
  for (auto _ : state) {
    long total = 0;
    for (long j = 0; j < kN; ++j)
      total += (4 * j + 3) % 64 + (4 * j + 3) / 64;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_AffineModNaive);

}  // namespace

int main(int argc, char** argv) {
  // Print the analytic cost model alongside the native measurements.
  using namespace dct;
  ir::ArrayDecl decl{"A", {kN}, 4, true};
  decomp::ArrayDecomposition ad;
  ad.dims = {decomp::DimDistribution{decomp::DistKind::Cyclic, 0, 0}};
  const int grid[] = {static_cast<int>(kB)};
  const layout::Layout l = layout::derive_layout(decl, ad, grid);
  ir::LoopNest nest;
  nest.loops.push_back(ir::loop("i", ir::cst(0), ir::cst(kN - 1)));
  const ir::ArrayRef ref = ir::simple_ref(0, 1, {{0, 0}});
  std::printf("cost model overhead (cycles/access): naive=%.1f hoisted=%.1f "
              "optimized=%.2f\n",
              layout::address_overhead(nest, ref, l,
                                       layout::AddrStrategy::Naive),
              layout::address_overhead(nest, ref, l,
                                       layout::AddrStrategy::Hoisted),
              layout::address_overhead(nest, ref, l,
                                       layout::AddrStrategy::Optimized));

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
