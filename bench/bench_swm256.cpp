// Figure 12: Swm256 speedups.
//
// Paper shape: the program is highly data-parallel and the base compiler
// already achieves good speedups; the decomposition phase switches to
// two-dimensional blocks (better communication-to-computation ratio)
// which hurts until the data transformation makes the blocks contiguous,
// ending slightly better than base.
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  const linalg::Int n = 128 * scale;  // paper: 256
  const auto r = core::run_sweep(apps::swm256(n, 4), {});
  std::cout << core::render_sweep(
      strf("Figure 12: Swm256 speedups (%ldx%ld)", static_cast<long>(n),
           static_cast<long>(n)),
      r);
  const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
               full = bench::at_max(r, 2);
  bench::check(base > 4, strf("base already scales (%.1f)", base));
  bench::check(cd <= base * 1.1,
               strf("comp decomp alone (%.1f) loses contiguity vs base "
                    "(%.1f)",
                    cd, base));
  bench::check(full >= base * 0.9,
               strf("full optimization regains it (%.1f vs base %.1f)", full,
                    base));
  return 0;
}
