// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "support/env.hpp"
#include "support/str.hpp"

namespace dct::bench {

/// Print a shape expectation and whether the measured data satisfies it.
inline bool check(bool ok, const std::string& what) {
  std::cout << "  [" << (ok ? " ok " : "WARN") << "] " << what << "\n";
  return ok;
}

/// Speedup of mode m at the largest processor count.
inline double at_max(const core::SweepResult& r, size_t m) {
  return r.speedups[m].back();
}

}  // namespace dct::bench
