// Figure 11: Erlebacher speedups.
//
// Paper shape: two-thirds of the program (X and Y derivative phases) is
// perfectly parallel with local accesses under any scheme, so gains are
// modest; the computation decomposition removes the non-local accesses of
// the Z phases, and the data transformation makes DUZ's block-of-rows
// contiguous (DUZ(*,BLOCK,*)) for a further improvement.
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  const linalg::Int n = 48 * scale;  // paper: 64^3
  const auto r = core::run_sweep(apps::erlebacher(n, 2), {});
  std::cout << core::render_sweep(
      strf("Figure 11: Erlebacher speedups (%ld^3)", static_cast<long>(n)),
      r);
  const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
               full = bench::at_max(r, 2);
  bench::check(cd >= base,
               strf("comp decomp (%.1f) >= base (%.1f)", cd, base));
  bench::check(full >= cd,
               strf("data transform adds a modest improvement (%.1f vs %.1f)",
                    full, cd));
  bench::check(full < 32,
               "improvement is modest: two-thirds of the program is already "
               "parallel with local accesses");
  return 0;
}
