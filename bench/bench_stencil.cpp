// Figure 8: five-point stencil speedups.
//
// Paper shape: BASE (block columns) is decent; COMP DECOMP alone assigns
// two-dimensional blocks whose data is non-contiguous in the column-major
// layout and is WORSE than base; after the data transformation the 2-D
// blocks are contiguous and the program reaches near-linear speedup
// (paper: 29 on 32 processors at 512x512).
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  const linalg::Int n = 256 * scale;  // paper: 512
  const auto r = core::run_sweep(apps::stencil5(n, 4), {});
  std::cout << core::render_sweep(
      strf("Figure 8: Five-Point Stencil speedups (%ldx%ld)",
           static_cast<long>(n), static_cast<long>(n)),
      r);
  const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
               full = bench::at_max(r, 2);
  bench::check(cd <= base * 1.05,
               strf("comp decomp alone (%.1f) does not beat base (%.1f): "
                    "non-contiguous 2-D blocks",
                    cd, base));
  bench::check(full > 1.5 * base,
               strf("full optimization (%.1f) >> base (%.1f)", full, base));
  return 0;
}
