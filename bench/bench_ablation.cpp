// Ablation bench for the design choices DESIGN.md calls out:
//
//  (a) barrier elimination [Tseng 95] — vpenta's gain from replacing
//      barriers between aligned doall nests;
//  (b) folding-function choice — LU with the paper's CYCLIC columns vs a
//      naive BLOCK folding of the same decomposition (load imbalance on
//      the triangular iteration space);
//  (c) the Section 4.3 address strategies end-to-end — the same
//      transformed LU under naive / hoisted / optimized subscripts.
#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace dct;
  runtime::ExecOptions eopts;
  eopts.collect_values = false;
  const long s = repro_scale();

  // --- (a) barrier elimination ---
  {
    const ir::Program prog = apps::vpenta(96 * s);
    const double seq =
        runtime::simulate(core::compile(prog, core::Mode::Base, 1),
                          machine::MachineConfig::dash(1), eopts)
            .cycles;
    decomp::ProgramDecomposition with = decomp::decompose(prog);
    decomp::ProgramDecomposition without = with;
    for (auto& nd : without.nests) nd.barrier_after = true;
    const double t_with =
        runtime::simulate(core::compile_with_decomposition(
                              prog, with, core::Mode::Full, 32),
                          machine::MachineConfig::dash(32), eopts)
            .cycles;
    const double t_without =
        runtime::simulate(core::compile_with_decomposition(
                              prog, without, core::Mode::Full, 32),
                          machine::MachineConfig::dash(32), eopts)
            .cycles;
    Table t({"vpenta (P=32)", "speedup"});
    t.add_row({"barriers eliminated", strf("%.2f", seq / t_with)});
    t.add_row({"barrier after every nest", strf("%.2f", seq / t_without)});
    std::cout << "(a) synchronization optimization:\n" << t.to_string();
    bench::check(t_with <= t_without,
                 "eliminating redundant barriers never hurts");
  }

  // --- (b) CYCLIC vs BLOCK folding for LU ---
  {
    const ir::Program prog = apps::lu(192 * s);
    const double seq =
        runtime::simulate(core::compile(prog, core::Mode::Base, 1),
                          machine::MachineConfig::dash(1), eopts)
            .cycles;
    decomp::ProgramDecomposition cyc = decomp::decompose(prog);
    decomp::ProgramDecomposition blk = cyc;
    for (auto& ad : blk.arrays)
      for (auto& d : ad.dims)
        if (d.kind == decomp::DistKind::Cyclic) d.kind = decomp::DistKind::Block;
    Table t({"LU folding (P=32)", "speedup"});
    double sp_cyc = 0, sp_blk = 0;
    {
      const auto r = runtime::simulate(
          core::compile_with_decomposition(prog, cyc, core::Mode::Full, 32),
          machine::MachineConfig::dash(32), eopts);
      sp_cyc = seq / r.cycles;
    }
    {
      const auto r = runtime::simulate(
          core::compile_with_decomposition(prog, blk, core::Mode::Full, 32),
          machine::MachineConfig::dash(32), eopts);
      sp_blk = seq / r.cycles;
    }
    t.add_row({"CYCLIC columns (paper)", strf("%.2f", sp_cyc)});
    t.add_row({"BLOCK columns (naive)", strf("%.2f", sp_blk)});
    std::cout << "\n(b) folding-function choice:\n" << t.to_string();
    std::cout << "  note: CYCLIC trades the BLOCK folding's load imbalance\n"
              << "  (the last processor owns only trailing columns, ~3x the\n"
              << "  average work) for a pivot-production pipeline bubble\n"
              << "  every column. The paper's DASH code hid that bubble with\n"
              << "  locks and early pivot release; our in-order executor\n"
              << "  exposes it, so which folding wins depends on the\n"
              << "  problem size — both effects are visible above.\n";
    bench::check(sp_cyc > 0 && sp_blk > 0,
                 strf("both foldings execute correctly (%.1f vs %.1f)",
                      sp_cyc, sp_blk));
  }

  // --- (c) address strategies end-to-end ---
  {
    const ir::Program prog = apps::lu(192 * s);
    const double seq =
        runtime::simulate(core::compile(prog, core::Mode::Base, 1),
                          machine::MachineConfig::dash(1), eopts)
            .cycles;
    Table t({"LU subscript strategy (P=32)", "speedup"});
    double sp[3];
    int i = 0;
    for (auto strat :
         {layout::AddrStrategy::Naive, layout::AddrStrategy::Hoisted,
          layout::AddrStrategy::Optimized}) {
      const auto r = runtime::simulate(
          core::compile(prog, core::Mode::Full, 32, strat),
          machine::MachineConfig::dash(32), eopts);
      sp[i++] = seq / r.cycles;
    }
    t.add_row({"naive mod/div", strf("%.2f", sp[0])});
    t.add_row({"hoisted", strf("%.2f", sp[1])});
    t.add_row({"strength reduced (paper)", strf("%.2f", sp[2])});
    std::cout << "\n(c) Section 4.3 address optimizations:\n" << t.to_string();
    bench::check(sp[2] > sp[0],
                 strf("without the optimizations the mod/div overhead eats "
                      "the layout win (%.1f -> %.1f)",
                      sp[0], sp[2]));
  }
  return 0;
}
