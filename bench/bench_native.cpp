// Native-backend wall-clock benchmark: the hardware's answer to whether
// the Section 4 transformations pay off outside the simulator's cost
// model. Every application is compiled under BASE / COMP_DECOMP / FULL
// and executed for real by src/native/ — one std::thread per compiled
// processor, transformed array layouts, incremental address walkers,
// std::barrier synchronization — at each requested thread count.
//
// The headline ratio is FULL time vs BASE time at the same thread count:
// same statement schedule, different data layouts and addressing. On a
// machine whose working sets exceed the private cache, FULL's contiguous
// per-thread layouts (strip-mine + permute) must win; that is the paper's
// Figure 12 claim restated in wall-clock terms.
//
// Output: a JSON report (DCT_BENCH_OUT, default BENCH_native.json) with
// per-(app, mode, threads) timings and per-app FULL-vs-BASE ratios.
// Knobs: DCT_NATIVE_THREADS (max thread count, default 4),
// DCT_BENCH_SMOKE=1 (reduced sizes), DCT_BENCH_REPS.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "core/compiler.hpp"
#include "native/native.hpp"

using namespace dct;

namespace {

double time_native(const core::CompiledProgram& cp, int threads, int reps,
                   native::NativeResult* out) {
  native::NativeOptions opts;
  opts.threads = threads;
  opts.collect_values = false;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    native::NativeResult res = native::run_native(cp, opts);
    best = std::min(best, res.seconds);
    *out = std::move(res);
  }
  return best;
}

}  // namespace

int main() {
  const int max_threads =
      std::max(1, static_cast<int>(env_int("DCT_NATIVE_THREADS", 4)));
  const bool smoke = env_int("DCT_BENCH_SMOKE", 0) != 0;
  const int reps = static_cast<int>(env_int("DCT_BENCH_REPS", smoke ? 1 : 3));

  // Sizes chosen so FULL-mode working sets exceed a private L2 (~2 MB):
  // layout locality, addressing and barrier counts are what differ, so
  // the arrays must be big enough for locality to matter.
  std::vector<std::pair<std::string, ir::Program>> programs;
  if (smoke) {
    programs.emplace_back("lu", apps::lu(48));
    programs.emplace_back("stencil5", apps::stencil5(64, 2));
    programs.emplace_back("adi", apps::adi(48, 2));
    programs.emplace_back("vpenta", apps::vpenta(24));
    programs.emplace_back("erlebacher", apps::erlebacher(12, 1));
    programs.emplace_back("swm256", apps::swm256(48, 2));
    programs.emplace_back("tomcatv", apps::tomcatv(48, 2));
  } else {
    programs.emplace_back("lu", apps::lu(384));
    programs.emplace_back("stencil5", apps::stencil5(768, 4));
    programs.emplace_back("adi", apps::adi(512, 3));
    programs.emplace_back("vpenta", apps::vpenta(128));
    programs.emplace_back("erlebacher", apps::erlebacher(64, 2));
    programs.emplace_back("swm256", apps::swm256(512, 3));
    programs.emplace_back("tomcatv", apps::tomcatv(512, 3));
  }
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const std::vector<core::Mode> modes = {core::Mode::Base,
                                         core::Mode::CompDecomp,
                                         core::Mode::Full};

  // seconds[app][mode][threads]
  std::map<std::string, std::map<std::string, std::map<int, double>>> secs;
  std::string rows;
  std::cout << strf("%-12s %-26s %7s %12s %14s %9s\n", "app", "mode",
                    "threads", "seconds", "stmts/sec", "barriers");
  for (const auto& [name, prog] : programs) {
    for (const core::Mode mode : modes) {
      for (const int threads : thread_counts) {
        const auto cp = core::compile(prog, mode, threads);
        native::NativeResult res;
        const double t = time_native(cp, threads, reps, &res);
        const double sps = static_cast<double>(res.statements) / t;
        secs[name][core::to_string(mode)][threads] = t;
        std::cout << strf("%-12s %-26s %7d %12.4f %14.0f %9lld\n",
                          name.c_str(), core::to_string(mode).c_str(),
                          threads, t, sps,
                          static_cast<long long>(res.barriers));
        rows += strf(
            "    {\"app\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
            "\"seconds\": %.6f, \"statements\": %lld, "
            "\"stmts_per_sec\": %.0f, \"barriers\": %lld, "
            "\"parallel_nests\": %d, \"sequential_nests\": %d, "
            "\"restricted_nests\": %d},\n",
            name.c_str(), core::to_string(mode).c_str(), threads, t,
            res.statements, sps, static_cast<long long>(res.barriers),
            res.parallel_nests, res.sequential_nests, res.restricted_nests);
      }
    }
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);  // trailing comma

  // FULL vs BASE at the largest thread count >= 2 (or 1 if that is all
  // the machine offers): the wall-clock payoff of the data transforms.
  const int gate_threads =
      thread_counts.size() > 1 ? thread_counts.back() : thread_counts[0];
  const std::string base_key = core::to_string(core::Mode::Base);
  const std::string full_key = core::to_string(core::Mode::Full);
  std::string ratio_rows;
  double best_ratio = 0;
  std::string best_app;
  for (const auto& [name, by_mode] : secs) {
    const double tb = by_mode.at(base_key).at(gate_threads);
    const double tf = by_mode.at(full_key).at(gate_threads);
    const double ratio = tb / tf;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_app = name;
    }
    ratio_rows += strf("    {\"app\": \"%s\", \"threads\": %d, "
                       "\"full_vs_base\": %.3f},\n",
                       name.c_str(), gate_threads, ratio);
    std::cout << strf("  %-12s FULL vs BASE at %d threads: %.2fx\n",
                      name.c_str(), gate_threads, ratio);
  }
  if (!ratio_rows.empty()) ratio_rows.erase(ratio_rows.size() - 2, 1);

  const char* out_env = std::getenv("DCT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_native.json";
  std::ofstream out(out_path);
  out << "{\n"
      << strf("  \"benchmark\": \"native_wallclock\",\n"
              "  \"max_threads\": %d,\n  \"smoke\": %s,\n  \"reps\": %d,\n",
              max_threads, smoke ? "true" : "false", reps)
      << strf("  \"gate_threads\": %d,\n", gate_threads)
      << strf("  \"best_full_vs_base\": %.3f,\n", best_ratio)
      << strf("  \"best_full_vs_base_app\": \"%s\",\n", best_app.c_str())
      << "  \"full_vs_base\": [\n" << ratio_rows << "  ],\n"
      << "  \"runs\": [\n" << rows << "  ]\n}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  bool ok = true;
  // The layout transforms must pay off in wall-clock terms somewhere.
  // Smoke sizes fit in cache, so the gate only applies at full sizes.
  if (!smoke)
    ok &= bench::check(
        best_ratio > 1.0,
        strf("%s FULL beats BASE at %d threads (%.2fx)", best_app.c_str(),
             gate_threads, best_ratio));
  return ok ? 0 : 1;
}
