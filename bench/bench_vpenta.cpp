// Figure 4: Vpenta speedups.
//
// Paper shape: the base compiler gets only a slight speedup; computation
// decomposition helps a little more (barriers between the aligned loops
// are eliminated); the big jump comes from restructuring the 3-D array so
// each processor's share of every plane is contiguous (F(*,BLOCK,*)).
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  const linalg::Int n = 128 * scale;
  const auto r = core::run_sweep(apps::vpenta(n), {});
  std::cout << core::render_sweep(
      strf("Figure 4: Vpenta speedups (n=%ld)", static_cast<long>(n)), r);
  const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
               full = bench::at_max(r, 2);
  bench::check(cd >= base * 0.95,
               strf("comp decomp (%.1f) >= base (%.1f): barrier elimination",
                    cd, base));
  bench::check(full > 1.1 * cd,
               strf("data transform is the final win: %.1f vs %.1f", full,
                    cd));
  return 0;
}
