// Figure 6: LU decomposition speedups at two dataset sizes.
//
// Paper shape: BASE saturates early (barrier per outer iteration, varying
// parallel-loop extent); COMP DECOMP (cyclic columns, original layout) is
// highly erratic at power-of-two processor counts — at 32 processors all
// of a processor's columns collide in the direct-mapped cache, and P=31
// is far faster than P=32; the DATA TRANSFORM makes each processor's
// cyclic columns contiguous and the curve stabilizes high, with
// superlinear stretches once the working set fits close to the processor.
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  core::SweepOptions opts;
  opts.procs = {1, 2, 4, 8, 16, 24, 31, 32};

  // Paper sizes 256x256 and 1024x1024; default reproduces the smaller and
  // a half-size companion (REPRO_SCALE=4 reaches 1K).
  for (const linalg::Int n : {128 * scale, 256 * scale}) {
    const auto r = core::run_sweep(apps::lu(n), opts);
    std::cout << core::render_sweep(
        strf("Figure 6: LU Decomposition speedups (%ldx%ld)",
             static_cast<long>(n), static_cast<long>(n)),
        r);
    if (n % 256 == 0) {
      // The power-of-two pathology needs columns that alias in the 64KB
      // direct-mapped cache.
      const double cd31 = r.speedups[1][6], cd32 = r.speedups[1][7];
      const double full32 = r.speedups[2][7];
      bench::check(cd31 > 1.5 * cd32,
                   strf("comp-decomp P=31 (%.1f) >> P=32 (%.1f): conflict "
                        "misses on power-of-2",
                        cd31, cd32));
      bench::check(full32 > 1.5 * cd32,
                   strf("data transform rescues P=32: %.1f vs %.1f", full32,
                        cd32));
      bench::check(full32 > bench::at_max(r, 0),
                   "fully optimized beats base at 32 procs");
    }
    std::cout << "\n";
  }
  return 0;
}
