// Figure 10: ADI integration speedups at two dataset sizes.
//
// Paper shape: BASE parallelizes each phase separately (column sweeps,
// then row sweeps), so every processor touches different data in the two
// phases and performance is poor. The global decomposition keeps a static
// column-block distribution (doall first phase, doall/pipeline second) —
// a large win. Each processor's columns are already contiguous, so the
// data transformation has nothing to add (the A(*,BLOCK) layout is the
// identity: the Section 4.2 local optimization).
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  for (const linalg::Int n : {128 * scale, 256 * scale}) {  // paper: 256, 1K
    const auto r = core::run_sweep(apps::adi(n, 4), {});
    std::cout << core::render_sweep(
        strf("Figure 10: ADI Integration speedups (%ldx%ld)",
             static_cast<long>(n), static_cast<long>(n)),
        r);
    const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
                 full = bench::at_max(r, 2);
    bench::check(cd > 1.5 * base,
                 strf("comp decomp (%.1f) >> base (%.1f)", cd, base));
    bench::check(std::abs(full - cd) < 0.15 * cd,
                 strf("data transform adds nothing (%.1f vs %.1f): layout "
                      "already contiguous",
                      full, cd));
    std::cout << "\n";
  }
  return 0;
}
