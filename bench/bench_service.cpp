// Service throughput/latency benchmark: the dctd serving stack measured
// end to end (queue -> cache -> compile -> respond) at 1/2/4 workers,
// cold cache vs warm cache.
//
// The cold pass issues one request per *unique* program (every request
// misses and compiles); the warm pass issues the same number of requests
// against a single already-cached program. The headline gate — warm
// throughput >= 5x cold throughput — is the content-addressed cache's
// reason to exist: serving a cached artifact must be far cheaper than
// compiling it.
//
// Requests use the compile-only engine, so the measurement isolates the
// serving + compilation path (execution time would swamp the cache
// effect and scales separately; bench_native covers it).
//
// Output: a JSON report (DCT_BENCH_OUT, default BENCH_service.json).
// Knobs: DCT_BENCH_SMOKE=1 (reduced request count), DCT_BENCH_REPS.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/server.hpp"

using namespace dct;

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  double seconds = 0;
  double req_per_sec = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  long errors = 0;
};

service::Request make_req(int i, bool unique) {
  service::Request r;
  r.id = std::to_string(i);
  r.app = "lu";
  // Cold pass: every request a distinct size -> distinct cache key ->
  // full compile. Warm pass: one size repeated -> all hits after the
  // first.
  r.size = unique ? 32 + 2 * i : 32;
  r.procs = 4;
  r.engine = service::Engine::Compile;
  return r;
}

PassResult run_pass(service::Server& server, int requests, bool unique) {
  std::vector<std::future<service::Response>> futs;
  futs.reserve(static_cast<size_t>(requests));
  std::vector<double> total_ms;
  total_ms.reserve(static_cast<size_t>(requests));
  PassResult out;

  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < requests; ++i)
    futs.push_back(server.submit(make_req(i, unique)));
  for (auto& f : futs) {
    const service::Response r = f.get();
    if (!r.ok) ++out.errors;
    total_ms.push_back(r.total_ms);
  }
  out.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  out.req_per_sec = requests / std::max(out.seconds, 1e-12);
  std::sort(total_ms.begin(), total_ms.end());
  const auto q = [&total_ms](double p) {
    const size_t i = std::min(
        total_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(total_ms.size())));
    return total_ms[i];
  };
  out.p50_ms = q(0.50);
  out.p95_ms = q(0.95);
  out.p99_ms = q(0.99);
  return out;
}

}  // namespace

int main() {
  const bool smoke = env_int("DCT_BENCH_SMOKE", 0) != 0;
  const int reps = static_cast<int>(env_int("DCT_BENCH_REPS", smoke ? 1 : 3));
  const int requests = smoke ? 48 : 192;

  std::string rows;
  double gate_warm_vs_cold = 0;  // at the highest worker count
  std::cout << strf("%-8s %-6s %10s %12s %10s %10s %10s\n", "workers",
                    "cache", "seconds", "req/sec", "p50 ms", "p95 ms",
                    "p99 ms");
  for (const int workers : {1, 2, 4}) {
    PassResult cold, warm;
    double cold_rps = 0, warm_rps = 0;
    for (int rep = 0; rep < reps; ++rep) {
      service::ServerOptions opts;
      opts.workers = workers;
      opts.queue_cap = static_cast<std::size_t>(requests);
      // Cold must stay cold: capacity below the unique count would only
      // add eviction noise, so give the pass exactly enough room.
      opts.cache_cap = static_cast<std::size_t>(requests);
      opts.spot_check_every = 0;
      service::Server server(opts);

      const PassResult c = run_pass(server, requests, /*unique=*/true);
      // One priming request, then every warm request hits.
      (void)server.call(make_req(0, /*unique=*/false));
      const PassResult w = run_pass(server, requests, /*unique=*/false);
      if (c.req_per_sec > cold_rps) {
        cold_rps = c.req_per_sec;
        cold = c;
      }
      if (w.req_per_sec > warm_rps) {
        warm_rps = w.req_per_sec;
        warm = w;
      }
      server.shutdown();
    }

    for (const auto& [label, pass] :
         {std::pair<const char*, const PassResult&>{"cold", cold},
          std::pair<const char*, const PassResult&>{"warm", warm}}) {
      std::cout << strf("%-8d %-6s %10.4f %12.0f %10.3f %10.3f %10.3f\n",
                        workers, label, pass.seconds, pass.req_per_sec,
                        pass.p50_ms, pass.p95_ms, pass.p99_ms);
      rows += strf(
          "    {\"workers\": %d, \"cache\": \"%s\", \"requests\": %d, "
          "\"seconds\": %.6f, \"req_per_sec\": %.1f, \"p50_ms\": %.3f, "
          "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"errors\": %ld},\n",
          workers, label, requests, pass.seconds, pass.req_per_sec,
          pass.p50_ms, pass.p95_ms, pass.p99_ms, pass.errors);
    }
    const double ratio = warm.req_per_sec / std::max(cold.req_per_sec, 1e-12);
    std::cout << strf("  warm vs cold at %d workers: %.1fx\n", workers,
                      ratio);
    gate_warm_vs_cold = ratio;  // last iteration = highest worker count
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);

  const char* out_env = std::getenv("DCT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_service.json";
  std::ofstream out(out_path);
  out << "{\n"
      << strf("  \"benchmark\": \"service_throughput\",\n"
              "  \"smoke\": %s,\n  \"reps\": %d,\n  \"requests\": %d,\n",
              smoke ? "true" : "false", reps, requests)
      << strf("  \"warm_vs_cold_at_max_workers\": %.2f,\n",
              gate_warm_vs_cold)
      << "  \"runs\": [\n"
      << rows << "  ]\n}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  const bool ok = bench::check(
      gate_warm_vs_cold >= 5.0,
      strf("warm cache >= 5x cold throughput at 4 workers (%.1fx)",
           gate_warm_vs_cold));
  return ok ? 0 : 1;
}
