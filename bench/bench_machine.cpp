// Machine-model sanity bench (Section 6.1): the simulated DASH must show
// the 1 : 10 : 30 : 100-130 latency ratios between L1, L2, local and
// remote memory, plus an ablation of the figure-1 example demonstrating
// how each optimization changes the miss mix.
#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "machine/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace dct;

  machine::MachineConfig cfg = machine::MachineConfig::dash(32);
  machine::Machine m(cfg);
  m.home_page(0, 0);

  Table t({"level", "measured cycles", "paper ratio"});
  m.access(0, 0, false);  // warm
  t.add_row({"L1 cache", strf("%.0f", m.access(0, 0, false)), "1"});
  // Evict from L1 only: touch a conflicting line.
  m.home_page(64 * 1024, 0);
  m.access(0, 64 * 1024, false);
  t.add_row({"L2 cache", strf("%.0f", m.access(0, 0, false)), "10"});
  m.home_page(512 * 1024, 0);
  t.add_row({"local memory", strf("%.0f", m.access(0, 512 * 1024, false)),
             "30"});
  m.home_page(1024 * 1024, 7);
  t.add_row({"remote memory", strf("%.0f", m.access(0, 1024 * 1024, false)),
             "100-130"});
  m.access(5, 2 * 1024 * 1024, true);
  m.home_page(2 * 1024 * 1024, 0);
  t.add_row({"remote dirty", strf("%.0f", m.access(0, 2 * 1024 * 1024, false)),
             "100-130"});
  std::cout << "DASH latency hierarchy (Section 6.1):\n" << t.to_string()
            << "\n";

  // Ablation: miss mix of the Figure 1 example under each configuration.
  const ir::Program prog = apps::figure1(128 * repro_scale(), 4);
  Table mix({"configuration", "l1 hit %", "false sharing", "true sharing",
             "remote fills", "speedup (P=32)"});
  runtime::ExecOptions opts;
  opts.collect_values = false;
  const double seq =
      runtime::simulate(core::compile(prog, core::Mode::Base, 1),
                        machine::MachineConfig::dash(1), opts)
          .cycles;
  for (core::Mode mode :
       {core::Mode::Base, core::Mode::CompDecomp, core::Mode::Full}) {
    const auto r = runtime::simulate(core::compile(prog, mode, 32),
                                     machine::MachineConfig::dash(32), opts);
    mix.add_row({core::to_string(mode),
                 strf("%.1f", 100.0 * static_cast<double>(r.mem.l1_hits) /
                                  static_cast<double>(r.mem.accesses)),
                 strf("%lld", r.mem.coherence_false),
                 strf("%lld", r.mem.coherence_true),
                 strf("%lld", r.mem.remote_fills),
                 strf("%.2f", seq / r.cycles)});
  }
  std::cout << "Figure 1 example: miss mix ablation\n" << mix.to_string();
  return 0;
}
