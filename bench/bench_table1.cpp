// Table 1: summary of experimental results — speedups on 32 processors
// with the base compiler vs all optimizations, which technique is
// critical, and the data decompositions found for the major arrays.
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long s = repro_scale();
  std::vector<core::Table1Row> rows;
  rows.push_back(core::table1_row("vpenta", apps::vpenta(96 * s)));
  rows.push_back(core::table1_row("LU", apps::lu(256 * s)));
  rows.push_back(core::table1_row("stencil", apps::stencil5(256 * s, 4)));
  rows.push_back(core::table1_row("ADI", apps::adi(128 * s, 4)));
  rows.push_back(core::table1_row("erlebacher", apps::erlebacher(48 * s, 2)));
  rows.push_back(core::table1_row("swm256", apps::swm256(128 * s, 4)));
  // tomcatv needs a paper-scale size: at 128 the surface-to-volume ratio
  // genuinely favours a 2-D decomposition over the paper's row blocks.
  rows.push_back(core::table1_row("tomcatv", apps::tomcatv(256 * s, 2)));

  std::cout << "Table 1: Summary of Experimental Results (speedups on 32 "
               "processors)\n\n"
            << core::render_table1(rows) << "\n";

  // Paper-shape checks.
  for (const auto& r : rows)
    bench::check(r.full_speedup >= r.base_speedup * 0.9,
                 r.program + ": fully optimized >= base");
  bench::check(rows[1].decompositions.find("CYCLIC") != std::string::npos,
               "LU: A(*, CYCLIC)");
  bench::check(rows[2].decompositions.find("BLOCK, BLOCK") !=
                   std::string::npos,
               "stencil: A(BLOCK, BLOCK)");
  bench::check(rows[6].decompositions.find("(BLOCK, *)") != std::string::npos,
               "tomcatv: AA(BLOCK, *)");
  return 0;
}
