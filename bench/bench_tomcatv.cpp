// Figure 13: Tomcatv speedups.
//
// Paper shape: the base compiler parallelizes each nest's outermost
// parallel loop, so processors touch column blocks in some nests and row
// blocks in the row-dependent nests — little reuse, maximum speedup ~5.
// The global decomposition keeps a single row-block mapping (good
// temporal locality but rows are non-contiguous column-major), and the
// data transformation makes each processor's rows contiguous: the paper
// reaches 18 on 32 processors (base 4.9).
#include "apps/apps.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dct;
  const long scale = repro_scale();
  // Paper-scale size (SPEC tomcatv is 257x257): at small sizes the
  // decomposition legitimately prefers 2-D blocks; the paper's row blocks
  // emerge at realistic surface-to-volume ratios.
  const linalg::Int n = 256 * scale;
  const auto r = core::run_sweep(apps::tomcatv(n, 2), {});
  std::cout << core::render_sweep(
      strf("Figure 13: Tomcatv speedups (%ldx%ld)", static_cast<long>(n),
           static_cast<long>(n)),
      r);
  const double base = bench::at_max(r, 0), cd = bench::at_max(r, 1),
               full = bench::at_max(r, 2);
  bench::check(full > 1.5 * base,
               strf("fully optimized (%.1f) >> base (%.1f)", full, base));
  bench::check(full > cd,
               strf("data transform needed on top of comp decomp (%.1f vs "
                    "%.1f): rows are not contiguous",
                    full, cd));
  return 0;
}
