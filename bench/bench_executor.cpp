// Simulator-throughput benchmark: how fast the execution engine itself
// runs, not how fast the simulated machine is. Every application is
// compiled under all three modes and simulated twice — once with the
// interpreter (the pre-optimization executor: affine subscripts plus
// Layout::linearize per access, full directory protocol) and once with the
// fast engine (incremental address walkers, hoisted owner computation,
// directory fast path). Both produce bit-identical results; the ratio of
// their statements/sec is the speedup of this engine.
//
// Output: a JSON report (DCT_BENCH_OUT, default BENCH_executor.json in the
// working directory) with per-(app, mode) throughput of both engines and
// the aggregate engine counters. Exits non-zero when the fast paths never
// fired (walker_fast == 0 or dir_fast == 0 in aggregate) — the smoke
// configuration CI runs with DCT_BENCH_SMOKE=1 uses reduced sizes.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"

using namespace dct;

namespace {

double time_simulate(const core::CompiledProgram& cp, int procs,
                     int fast_exec, int reps, runtime::RunResult* out) {
  runtime::ExecOptions opts;
  opts.collect_values = false;
  opts.fast_exec = fast_exec;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    runtime::RunResult res =
        runtime::simulate(cp, machine::MachineConfig::dash(procs), opts);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    *out = std::move(res);
  }
  return best;
}

}  // namespace

int main() {
  const int procs = static_cast<int>(env_int("DCT_BENCH_PROCS", 16));
  const bool smoke = env_int("DCT_BENCH_SMOKE", 0) != 0;
  const int reps = static_cast<int>(env_int("DCT_BENCH_REPS", smoke ? 1 : 3));

  std::vector<std::pair<std::string, ir::Program>> programs;
  if (smoke) {
    programs.emplace_back("lu", apps::lu(24));
    programs.emplace_back("stencil5", apps::stencil5(32, 2));
    programs.emplace_back("adi", apps::adi(24, 2));
    programs.emplace_back("vpenta", apps::vpenta(16));
    programs.emplace_back("erlebacher", apps::erlebacher(8, 1));
    programs.emplace_back("swm256", apps::swm256(24, 2));
    programs.emplace_back("tomcatv", apps::tomcatv(24, 2));
  } else {
    programs.emplace_back("lu", apps::lu(96));
    programs.emplace_back("stencil5", apps::stencil5(192, 4));
    programs.emplace_back("adi", apps::adi(128, 4));
    programs.emplace_back("vpenta", apps::vpenta(64));
    programs.emplace_back("erlebacher", apps::erlebacher(32, 2));
    programs.emplace_back("swm256", apps::swm256(128, 3));
    programs.emplace_back("tomcatv", apps::tomcatv(128, 3));
  }
  const std::vector<core::Mode> modes = {core::Mode::Base,
                                         core::Mode::CompDecomp,
                                         core::Mode::Full};

  long long total_walker_fast = 0, total_dir_fast = 0;
  double stencil5_full_speedup = 0;
  std::string rows;
  std::cout << strf("%-12s %-12s %14s %14s %14s %8s\n", "app", "mode",
                    "interp stmt/s", "fast stmt/s", "fast ns/access",
                    "speedup");
  for (const auto& [name, prog] : programs) {
    for (const core::Mode mode : modes) {
      const auto cp = core::compile(prog, mode, procs);
      runtime::RunResult interp, fast;
      const double t_interp = time_simulate(cp, procs, 0, reps, &interp);
      const double t_fast = time_simulate(cp, procs, 1, reps, &fast);
      bench::check(fast.cycles == interp.cycles &&
                       fast.statements == interp.statements &&
                       fast.mem.accesses == interp.mem.accesses,
                   name + "/" + core::to_string(mode) +
                       ": engines agree on cycles, statements, accesses");
      const double interp_sps =
          static_cast<double>(interp.statements) / t_interp;
      const double fast_sps = static_cast<double>(fast.statements) / t_fast;
      const double ns_per_access =
          t_fast * 1e9 / static_cast<double>(fast.mem.accesses);
      const double speedup = fast_sps / interp_sps;
      total_walker_fast += fast.counters.walker_fast;
      total_dir_fast += fast.counters.dir_fast;
      if (name == "stencil5" && mode == core::Mode::Full)
        stencil5_full_speedup = speedup;
      std::cout << strf("%-12s %-12s %14.0f %14.0f %14.1f %7.2fx\n",
                        name.c_str(), core::to_string(mode).c_str(),
                        interp_sps, fast_sps, ns_per_access, speedup);
      rows += strf(
          "    {\"app\": \"%s\", \"mode\": \"%s\", \"procs\": %d, "
          "\"statements\": %lld, \"accesses\": %lld, "
          "\"interp_sec\": %.6f, \"fast_sec\": %.6f, "
          "\"interp_stmts_per_sec\": %.0f, \"fast_stmts_per_sec\": %.0f, "
          "\"fast_ns_per_access\": %.2f, \"speedup\": %.3f, "
          "\"walker_fast\": %lld, \"linearize_fallback\": %lld, "
          "\"dir_fast\": %lld, \"owner_hoisted\": %lld},\n",
          name.c_str(), core::to_string(mode).c_str(), procs,
          fast.statements, fast.mem.accesses, t_interp, t_fast, interp_sps,
          fast_sps, ns_per_access, speedup, fast.counters.walker_fast,
          fast.counters.linearize_fallback, fast.counters.dir_fast,
          fast.counters.owner_hoisted);
    }
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);  // trailing comma

  const char* out_env = std::getenv("DCT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_executor.json";
  std::ofstream out(out_path);
  out << "{\n"
      << strf("  \"benchmark\": \"executor_throughput\",\n"
              "  \"procs\": %d,\n  \"smoke\": %s,\n  \"reps\": %d,\n",
              procs, smoke ? "true" : "false", reps)
      << strf("  \"stencil5_full_speedup\": %.3f,\n", stencil5_full_speedup)
      << strf("  \"total_walker_fast\": %lld,\n  \"total_dir_fast\": %lld,\n",
              total_walker_fast, total_dir_fast)
      << "  \"runs\": [\n"
      << rows << "  ]\n}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  bool ok = true;
  ok &= bench::check(total_walker_fast > 0,
                     "incremental walkers produced addresses");
  ok &= bench::check(total_dir_fast > 0,
                     "machine directory fast path served hits");
  // Throughput target only at full sizes: smoke runs are too short for a
  // stable ratio (they exist to prove the fast paths fire at all).
  if (!smoke)
    ok &= bench::check(stencil5_full_speedup >= 3.0,
                       strf("stencil5 FULL engine speedup %.2fx >= 3x",
                            stencil5_full_speedup));
  return ok ? 0 : 1;
}
