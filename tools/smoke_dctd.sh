#!/usr/bin/env bash
# End-to-end smoke test for the dctd service binary (run by the CI
# service-smoke job and usable locally):
#
#   tools/smoke_dctd.sh [path-to-dctd]
#
# Drives one dctd process over a JSONL script that covers the full
# response taxonomy — ok, cache hit, fault isolation (crash + unknown
# app), deadline-exceeded, malformed JSON — then asserts on the response
# lines and the metrics dump shape. Exits non-zero on the first unmet
# expectation.
set -euo pipefail

DCTD="${1:-build/tools/dctd}"
[ -x "$DCTD" ] || { echo "dctd binary not found at $DCTD" >&2; exit 1; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
out="$workdir/out.jsonl"
metrics="$workdir/metrics.txt"

# 4 workers, mixed workload: healthy requests interleaved with crashing,
# malformed, unknown-app and already-expired-deadline requests. The drain
# after the first request makes hit1/hit2 deterministic cache HITS
# (without it they could join the first compile in flight instead).
DCT_SERVICE_WORKERS=4 DCT_SERVICE_CACHE_CAP=8 "$DCTD" >"$out" 2>"$metrics" <<'EOF'
{"id":"warm","app":"lu","size":48,"procs":4}
{"cmd":"drain"}
{"id":"hit1","app":"lu","size":48,"procs":4}
{"id":"hit2","app":"lu","size":48,"procs":4}
{"id":"crash","app":"crash"}
{"id":"unknown","app":"nosuch"}
{"id":"badfield","app":"lu","procs":"many"}
not even json
{"id":"deadline","app":"adi","size":48,"procs":4,"deadline_ms":0.0001}
{"id":"native","app":"stencil5","size":32,"procs":2,"engine":"native"}
{"id":"compile","app":"vpenta","size":24,"procs":4,"engine":"compile"}
{"id":"hpf","app":"adi","size":32,"procs":2,"hpf":"!HPF$ DISTRIBUTE X(*, BLOCK)"}
{"cmd":"metrics"}
{"cmd":"shutdown"}
EOF

fail() { echo "FAIL: $1" >&2; echo "--- responses ---" >&2; cat "$out" >&2; \
         echo "--- metrics ---" >&2; cat "$metrics" >&2; exit 1; }

# One response line per request line: 9 served + 2 rejected at parse time
# (the rejected ones carry synthesized line-numbered ids).
[ "$(wc -l <"$out")" -eq 11 ] || fail "expected 11 response lines"

expect() { # expect <id> <pattern>
  grep -F "\"id\":\"$1\"" "$out" | grep -qF "$2" \
    || fail "response $1 missing $2"
}

expect warm     '"ok":true'
expect hit1     '"cache_hit":true'
expect hit2     '"cache_hit":true'
expect crash    '"error_code":"fault"'
expect unknown  '"error_code":"invalid-argument"'
expect line-7   '"error_code":"invalid-argument"'   # non-integer procs
expect line-8   '"error_code":"invalid-argument"'   # not JSON at all
expect deadline '"error_code":"deadline-exceeded"'
expect native   '"ok":true'
expect native   '"seconds":'
expect compile  '"ok":true'
expect hpf      '"ok":true'

# Healthy requests must not be dropped by their faulty neighbours.
[ "$(grep -cF '"ok":true' "$out")" -eq 6 ] || fail "expected 6 ok responses"

# The cached artifact serves bit-identical results: warm + both hits
# report the same values fingerprint.
vals="$(grep -F '"id":"warm"' "$out" | grep -o '"values":"[0-9a-f]*"')"
[ -n "$vals" ] || fail "warm response missing a values fingerprint"
[ "$(grep -cF "$vals" "$out")" -eq 3 ] \
  || fail "cache hits must return bit-identical values"

# Metrics shape: counters and latency quantiles for every stage.
for needle in \
    'dctd_requests_total 11' \
    'dctd_requests_completed 9' \
    'dctd_requests_ok 6' \
    'dctd_requests_error 3' \
    'dctd_requests_rejected 2' \
    'dctd_requests_error_code{code="invalid-argument"} 1' \
    'dctd_requests_error_code{code="fault"} 1' \
    'dctd_requests_error_code{code="deadline-exceeded"} 1' \
    'dctd_cache_hits 2' \
    'dctd_cache_capacity 8' \
    'dctd_queue_depth 0' \
    'dctd_latency_ms{stage="queue",quantile="p50"}' \
    'dctd_latency_ms{stage="compile",quantile="p95"}' \
    'dctd_latency_ms{stage="exec",quantile="p99"}' \
    'dctd_latency_ms{stage="total",quantile="mean"}'; do
  grep -qF "$needle" "$metrics" || fail "metrics missing: $needle"
done

echo "dctd smoke: all checks passed"
