// dctd — the concurrent compile-and-execute service front door.
//
// Reads JSON lines from stdin (see src/service/protocol.hpp for the
// schema), serves them through a worker pool backed by the content-
// addressed compilation cache, and writes one JSON response line to
// stdout per request, in completion order. Control lines:
//
//   {"cmd": "metrics"}   drain, then print the metrics text dump to stderr
//   {"cmd": "drain"}     block until all accepted requests completed
//   {"cmd": "shutdown"}  drain and exit 0 (EOF on stdin does the same)
//
// Configuration (environment, resolved once at startup):
//   DCT_SERVICE_WORKERS      worker threads            (default 2)
//   DCT_SERVICE_CACHE_CAP    cache entries             (default 32)
//   DCT_SERVICE_QUEUE_CAP    queue bound, backpressure (default 64)
//   DCT_SERVICE_DEADLINE_MS  default request deadline  (default 0 = none)
// plus the compilation knobs DCT_VALIDATE / DCT_NATIVE / DCT_TRACE /
// DCT_DEBUG_DECOMP, snapshotted into the per-request CompileOptions.
//
//   $ printf '%s\n' '{"id":"1","app":"lu","size":64,"procs":4}' | ./dctd
#include <iostream>
#include <mutex>
#include <string>

#include "service/protocol.hpp"
#include "service/server.hpp"

int main() {
  using namespace dct;

  service::Server server(service::ServerOptions::from_env());
  std::mutex out_mu;  // response lines must not interleave

  const auto respond = [&out_mu](const service::Response& resp) {
    const std::lock_guard<std::mutex> lock(out_mu);
    std::cout << service::to_json(resp) << "\n" << std::flush;
  };

  std::string line;
  long lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    if (line.empty()) continue;

    service::ParsedLine parsed;
    try {
      parsed = service::parse_line(line);
    } catch (const Error& e) {
      // Malformed input is a per-line failure, never a server failure.
      server.metrics().on_rejected();
      service::Response resp;
      resp.id = "line-" + std::to_string(lineno);
      resp.error_code = to_string(e.code());
      resp.error = e.what();
      respond(resp);
      continue;
    }

    switch (parsed.kind) {
      case service::ParsedLine::Kind::kMetrics:
        server.drain();  // settle counters so the dump is deterministic
        std::cerr << server.metrics_text() << std::flush;
        break;
      case service::ParsedLine::Kind::kDrain:
        server.drain();
        break;
      case service::ParsedLine::Kind::kShutdown:
        server.drain();
        server.shutdown();
        return 0;
      case service::ParsedLine::Kind::kRequest:
        if (parsed.request.id.empty())
          parsed.request.id = "line-" + std::to_string(lineno);
        // Completion-order output: the serving worker prints the response
        // the moment the request finishes (drain() then guarantees every
        // accepted request has been answered on stdout).
        server.submit_async(std::move(parsed.request), respond);
        break;
    }
  }

  server.drain();
  server.shutdown();
  return 0;
}
