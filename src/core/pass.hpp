// The compiler as an explicit pass pipeline.
//
// Each stage of the paper's flow — parallelization (§3.2), global
// computation/data decomposition (§3), folding-function selection,
// barrier elimination [Tseng 95], layout derivation (§4.2), schedule
// lowering, address-strategy costing (§4.3) — is a Pass with a uniform
// interface over a CompilationState. A Mode is a pass list, not a set of
// branches: build_pipeline(Mode) returns the registered sequence, and the
// PassManager runs it while recording per-pass wall time, structured
// remarks and decision counters into a support::RemarkEngine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "support/remark.hpp"

namespace dct::core {

/// Mutable state threaded through the pipeline. `cp` accretes fields pass
/// by pass until it is the finished CompiledProgram.
struct CompilationState {
  CompiledProgram cp;
  /// Mixed-radix strides of the virtual grid within co-activity cliques
  /// (computed by the layout pass, consumed by schedule lowering).
  std::vector<int> stride;
};

/// One pipeline stage.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void run(CompilationState& st, support::RemarkSink& rs) = 0;
};

/// An ordered pass list with instrumentation.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);
  std::vector<std::string> pass_names() const;

  /// Run every pass in order; each gets its own timed record (wall time,
  /// remarks, counters) in `eng`.
  void run(CompilationState& st, support::RemarkEngine& eng) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// The pass list compile() runs for a mode:
///   Base:       parallelize, decompose-base, layout(keep), lower(span-block),
///               addr-strategy
///   CompDecomp: parallelize, decompose, fold-select, barrier-elim,
///               layout(keep), lower, addr-strategy
///   Full:       as CompDecomp with layout(restructure)
/// With opts.validate every pipeline additionally ends in the `verify`
/// pass (the static oracles of src/verify/oracle.hpp). No pass built here
/// consults the environment — everything is captured from `opts`, so
/// pipelines for concurrent compilations are independent.
PassManager build_pipeline(Mode mode, const CompileOptions& opts);
/// Legacy: snapshots the environment knobs (CompileOptions::from_env).
PassManager build_pipeline(Mode mode);

/// The lowering tail used when the decomposition is supplied by the caller
/// (ablation studies, HPF-directed decompositions): layout onward. `mode`
/// selects layout restructuring (Full) and the Base owner model.
PassManager build_lowering_pipeline(Mode mode, const CompileOptions& opts);
PassManager build_lowering_pipeline(Mode mode);

// Individual pass factories — tests and tools compose custom pipelines.
std::unique_ptr<Pass> make_parallelize_pass();
std::unique_ptr<Pass> make_decompose_pass(bool base,
                                          const decomp::DecompOptions& opts = {});
std::unique_ptr<Pass> make_fold_select_pass(
    const decomp::DecompOptions& opts = {});
std::unique_ptr<Pass> make_barrier_elim_pass();
std::unique_ptr<Pass> make_layout_pass(bool restructure);
/// `base_block_owner`: BASE's per-nest owner model (block-distribute the
/// single marked loop by its iteration-hull span) instead of the
/// partition-derived folds.
std::unique_ptr<Pass> make_lower_pass(bool base_block_owner);
std::unique_ptr<Pass> make_addr_strategy_pass();
/// Runs the static validation oracles (src/verify/) over the compiled
/// program and throws Error(kOracleViolation) on any violation;
/// `native_check` adds the native threaded-backend differential.
/// build_pipeline appends it automatically when opts.validate is set.
std::unique_ptr<Pass> make_verify_pass(bool native_check);
/// Legacy: native differential gated by the DCT_NATIVE env var at run time.
std::unique_ptr<Pass> make_verify_pass();

}  // namespace dct::core
