#include "core/experiment.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/env.hpp"
#include "support/parallel.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "verify/oracle.hpp"

namespace dct::core {

namespace {

/// The graceful-degradation chain: Full -> CompDecomp -> Base.
std::optional<Mode> lower_mode(Mode m) {
  switch (m) {
    case Mode::Full: return Mode::CompDecomp;
    case Mode::CompDecomp: return Mode::Base;
    case Mode::Base: return std::nullopt;
  }
  return std::nullopt;
}

bool retryable(Error::Code code) {
  switch (code) {
    case Error::Code::kUnsupportedConfig:
    case Error::Code::kOracleViolation:  // deterministic: retry can't help
    case Error::Code::kCancelled:
    case Error::Code::kDeadlineExceeded:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::string CellFailure::to_string() const {
  std::string disposition = skipped     ? "skipped"
                            : degraded  ? "degraded -> " +
                                              core::to_string(served_mode)
                                        : "failed";
  return strf("%s P=%d [%s] %s (%s, %d attempt%s)%s",
              core::to_string(mode).c_str(), procs, dct::to_string(code),
              disposition.c_str(), stage.empty() ? "-" : stage.c_str(),
              attempts, attempts == 1 ? "" : "s",
              what.empty() ? "" : (": " + what).c_str());
}

SweepResult run_sweep(const ir::Program& prog, const SweepOptions& opts) {
  SweepResult out;
  out.procs = opts.procs;
  out.modes = opts.modes;

  // Sweep-wide cooperative deadline: the executor polls this token at
  // segment granularity, and the thread pool stops dispatching new cells
  // once it trips.
  double dl_ms = opts.deadline_ms;
  if (dl_ms < 0)
    dl_ms = static_cast<double>(env_int("DCT_DEADLINE_MS", 0));
  support::CancelToken cancel;
  if (dl_ms > 0) cancel = support::CancelToken::with_deadline_ms(dl_ms);

  // Every sweep point — the sequential baseline, the per-mode verification
  // runs and the (mode, P) grid — is an independent compile + simulation,
  // so they all go onto one thread pool. Results land in slots indexed by
  // task id, so aggregation below is deterministic and the rendered tables
  // are byte-identical to a serial (threads = 1) sweep.
  struct Task {
    Mode mode;
    int procs;
    bool verify;
  };
  std::vector<Task> tasks;
  tasks.push_back({Mode::Base, 1, false});  // best sequential version
  if (opts.verify)
    for (Mode mode : opts.modes) tasks.push_back({mode, 4, true});
  const size_t grid_base = tasks.size();
  for (Mode mode : opts.modes)
    for (int p : opts.procs) tasks.push_back({mode, p, false});

  const std::vector<std::vector<double>> reference =
      opts.verify ? runtime::run_reference(prog)
                  : std::vector<std::vector<double>>{};
  // One environment snapshot for the whole sweep: every cell compiles with
  // the same explicit options, so cells racing on a thread pool can never
  // observe a mid-sweep setenv (and passes never touch getenv themselves).
  CompileOptions copts = CompileOptions::from_env();
  copts.strategy = opts.strategy;
  const bool validate = copts.validate;

  // Crash boundary around one cell: any failure of any attempt becomes a
  // CellFailure record; the sweep itself always completes.
  struct CellOutcome {
    runtime::RunResult result;
    support::PipelineTrace trace;
    bool ok = false;
    bool has_failure = false;
    CellFailure fail;
  };
  std::vector<CellOutcome> cells(tasks.size());

  // One attempt of one cell under `mode` (which may sit below the task's
  // requested mode when degrading). Throws on any failure.
  auto attempt = [&](const Task& t, Mode mode)
      -> std::pair<runtime::RunResult, support::PipelineTrace> {
    if (opts.fault_hook) opts.fault_hook(mode, t.procs);
    CompiledProgram cp = compile(prog, mode, t.procs, copts);
    support::PipelineTrace trace = std::move(cp.trace);
    runtime::ExecOptions eopts;
    eopts.collect_values = t.verify;
    eopts.cancel = cancel;
    runtime::RunResult rr =
        runtime::simulate(cp, machine::MachineConfig::dash(t.procs), eopts);
    trace.merge(rr.trace);
    if (t.verify) {
      if (rr.values != reference)
        throw Error(Error::Code::kOracleViolation,
                    prog.name + ": transformed program changed results")
            .with_context("verify cell");
      if (validate) {
        // DCT_VALIDATE=1: the verify cells additionally cross-check the
        // two executor engines against each other and the reference.
        const verify::OracleReport rep = verify::check_differential(
            cp, machine::MachineConfig::dash(t.procs));
        if (!rep.ok())
          throw Error(Error::Code::kOracleViolation, rep.to_string())
              .with_context("differential oracle");
      }
    }
    return {std::move(rr), std::move(trace)};
  };

  auto run_cell = [&](int idx) {
    const Task& t = tasks[static_cast<size_t>(idx)];
    CellOutcome& cell = cells[static_cast<size_t>(idx)];
    Mode mode = t.mode;
    while (true) {
      std::optional<Error> last;
      const int tries = 1 + std::max(0, opts.retries);
      for (int a = 0; a < tries && !cell.ok; ++a) {
        ++cell.fail.attempts;
        try {
          auto [rr, trace] = attempt(t, mode);
          cell.result = std::move(rr);
          cell.trace = std::move(trace);
          cell.ok = true;
        } catch (const Error& e) {
          last = e;
        } catch (const std::exception& e) {
          last = Error(Error::Code::kFault, e.what());
        }
        if (last && !retryable(last->code())) break;
      }
      if (cell.ok) {
        if (mode != t.mode) {
          // A fallback result is served: keep the original failure record
          // but mark it degraded, and leave a remark in the trace.
          cell.fail.degraded = true;
          cell.fail.served_mode = mode;
          support::RemarkEngine eng;
          eng.begin_pass("degraded");
          eng.note(strf("%s: %s degraded to %s at P=%d (%s)",
                        prog.name.c_str(), to_string(t.mode).c_str(),
                        to_string(mode).c_str(), t.procs,
                        cell.fail.what.c_str()));
          eng.count("cells_degraded");
          eng.end_pass();
          cell.trace.merge(eng.take_trace());
        }
        return;
      }
      // All attempts at `mode` failed; record and decide the disposition.
      cell.has_failure = true;
      cell.fail.mode = t.mode;
      cell.fail.procs = t.procs;
      cell.fail.code = last->code();
      cell.fail.stage = join(last->context(), "; ");
      cell.fail.what = last->what();
      cell.fail.repro = strf("%s mode=%s procs=%d%s", prog.name.c_str(),
                             to_string(t.mode).c_str(), t.procs,
                             t.verify ? " (verify cell)" : "");
      if (last->code() == Error::Code::kUnsupportedConfig) {
        cell.fail.skipped = true;  // not a fault: config out of contract
        return;
      }
      if (last->code() == Error::Code::kCancelled ||
          last->code() == Error::Code::kDeadlineExceeded)
        return;  // the whole sweep is out of budget; don't degrade
      const std::optional<Mode> down = lower_mode(mode);
      if (!down) return;
      mode = *down;  // graceful degradation: try the next mode down
    }
  };

  const support::ParallelOutcome po = support::parallel_for_collect(
      static_cast<int>(tasks.size()), opts.threads, run_cell, cancel);

  for (size_t i = 0; i < tasks.size(); ++i) {
    CellOutcome& cell = cells[i];
    if (!po.started[i]) {
      // The deadline tripped before this cell was dispatched.
      cell.has_failure = true;
      cell.fail.mode = tasks[i].mode;
      cell.fail.procs = tasks[i].procs;
      cell.fail.code = cancel.valid() && cancel.expired()
                           ? cancel.reason()
                           : Error::Code::kCancelled;
      cell.fail.what = "sweep budget exhausted before the cell started";
      cell.fail.repro = strf("%s mode=%s procs=%d", prog.name.c_str(),
                             to_string(tasks[i].mode).c_str(),
                             tasks[i].procs);
    } else if (po.errors[i]) {
      // run_cell has its own crash boundary, so this is unreachable in
      // practice — but a record beats losing the error.
      try {
        std::rethrow_exception(po.errors[i]);
      } catch (const std::exception& e) {
        cell.has_failure = true;
        cell.ok = false;
        cell.fail.mode = tasks[i].mode;
        cell.fail.procs = tasks[i].procs;
        cell.fail.code = Error::Code::kFault;
        cell.fail.what = e.what();
      }
    }
  }

  for (size_t i = 0; i < tasks.size(); ++i) {
    out.trace.merge(cells[i].trace);
    if (cells[i].has_failure) out.failures.push_back(cells[i].fail);
  }

  out.seq_cycles = cells[0].ok ? cells[0].result.cycles : 0;
  size_t i = grid_base;
  for (size_t m = 0; m < opts.modes.size(); ++m) {
    std::vector<double> series;
    for (size_t p = 0; p < opts.procs.size(); ++p, ++i) {
      const CellOutcome& cell = cells[i];
      series.push_back(cell.ok && cell.result.cycles > 0 &&
                               out.seq_cycles > 0
                           ? out.seq_cycles / cell.result.cycles
                           : 0.0);
    }
    out.speedups.push_back(std::move(series));
    runtime::RunResult last;
    if (!opts.procs.empty() && cells[i - 1].ok)
      last = std::move(cells[i - 1].result);
    out.mem_at_max.push_back(last.mem);
    out.raw_at_max.push_back(std::move(last));
  }

  if (support::trace_enabled())
    support::emit_trace(out.trace.json(
        {{"unit", prog.name},
         {"kind", "sweep"},
         {"points", strf("%d", static_cast<int>(tasks.size()))},
         {"failures", strf("%d", static_cast<int>(out.failures.size()))}}));
  return out;
}

std::string render_failures(const std::vector<CellFailure>& failures) {
  std::ostringstream os;
  os << "cell failures:\n";
  Table t({"mode", "procs", "code", "stage", "attempts", "disposition",
           "error"});
  for (const CellFailure& f : failures) {
    std::string disposition = f.skipped    ? "skipped"
                              : f.degraded ? "degraded -> " +
                                                 to_string(f.served_mode)
                                           : "failed";
    std::string what = f.what;
    if (what.size() > 60) what = what.substr(0, 57) + "...";
    t.add_row({to_string(f.mode), strf("%d", f.procs),
               dct::to_string(f.code), f.stage.empty() ? "-" : f.stage,
               strf("%d", f.attempts), std::move(disposition),
               std::move(what)});
  }
  os << t.to_string();
  return os.str();
}

std::string render_sweep(const std::string& title, const SweepResult& r) {
  std::ostringstream os;
  std::vector<Series> series;
  for (size_t m = 0; m < r.modes.size(); ++m)
    series.push_back(Series{to_string(r.modes[m]), r.speedups[m]});
  os << render_speedup_chart(title, r.procs, series) << "\n";

  std::vector<std::string> header = {"procs"};
  for (Mode m : r.modes) header.push_back(to_string(m));
  Table t(header);
  for (size_t i = 0; i < r.procs.size(); ++i) {
    std::vector<std::string> row = {strf("%d", r.procs[i])};
    for (size_t m = 0; m < r.modes.size(); ++m)
      row.push_back(r.speedups[m][i] > 0 ? strf("%.2f", r.speedups[m][i])
                                         : "-");
    t.add_row(std::move(row));
  }
  os << t.to_string();

  os << "memory behaviour at P=" << r.procs.back() << ":\n";
  for (size_t m = 0; m < r.modes.size(); ++m)
    os << "  " << to_string(r.modes[m]) << ": "
       << r.mem_at_max[m].to_string() << "\n";
  if (!r.failures.empty()) os << render_failures(r.failures);
  return os.str();
}

Table1Row table1_row(const std::string& name, const ir::Program& prog,
                     int procs) {
  SweepOptions opts;
  opts.procs = {procs};
  opts.verify = false;
  const SweepResult r = run_sweep(prog, opts);
  Table1Row row;
  row.program = name;
  row.base_speedup = r.speedups[0][0];
  const double cd = r.speedups[1][0];
  row.full_speedup = r.speedups[2][0];
  // "Critical" as in the paper's Table 1: the technique accounts for a
  // substantial part of the final improvement.
  row.comp_decomp_critical = cd >= 1.2 * row.base_speedup ||
                             row.full_speedup >= 1.5 * row.base_speedup;
  row.data_transform_critical = row.full_speedup >= 1.2 * cd;

  const decomp::ProgramDecomposition dec = decomp::decompose(prog);
  std::vector<std::string> decs;
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    if (dec.arrays[a].replicated ||
        dec.arrays[a].distributed_count() == 0)
      continue;
    decs.push_back(prog.arrays[a].name + dec.arrays[a].hpf_string());
  }
  row.decompositions = join(decs, " ");
  return row;
}

std::string render_table1(const std::vector<Table1Row>& rows) {
  Table t({"Program", "Base", "Fully Optimized", "Comp Decomp",
           "Data Transform", "Data Decompositions"});
  for (const Table1Row& r : rows)
    t.add_row({r.program, strf("%.1f", r.base_speedup),
               strf("%.1f", r.full_speedup),
               r.comp_decomp_critical ? "yes" : "-",
               r.data_transform_critical ? "yes" : "-", r.decompositions});
  return t.to_string();
}

}  // namespace dct::core
