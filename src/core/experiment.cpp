#include "core/experiment.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/parallel.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace dct::core {

SweepResult run_sweep(const ir::Program& prog, const SweepOptions& opts) {
  SweepResult out;
  out.procs = opts.procs;
  out.modes = opts.modes;

  // Every sweep point — the sequential baseline, the per-mode verification
  // runs and the (mode, P) grid — is an independent compile + simulation,
  // so they all go onto one thread pool. Results land in slots indexed by
  // task id, so aggregation below is deterministic and the rendered tables
  // are byte-identical to a serial (threads = 1) sweep.
  struct Task {
    Mode mode;
    int procs;
    bool verify;
  };
  std::vector<Task> tasks;
  tasks.push_back({Mode::Base, 1, false});  // best sequential version
  if (opts.verify)
    for (Mode mode : opts.modes) tasks.push_back({mode, 4, true});
  const size_t grid_base = tasks.size();
  for (Mode mode : opts.modes)
    for (int p : opts.procs) tasks.push_back({mode, p, false});

  const std::vector<std::vector<double>> reference =
      opts.verify ? runtime::run_reference(prog)
                  : std::vector<std::vector<double>>{};

  std::vector<runtime::RunResult> results(tasks.size());
  std::vector<support::PipelineTrace> traces(tasks.size());
  support::parallel_for(
      static_cast<int>(tasks.size()), opts.threads, [&](int i) {
        const Task& t = tasks[static_cast<size_t>(i)];
        CompiledProgram cp = compile(prog, t.mode, t.procs, opts.strategy);
        traces[static_cast<size_t>(i)] = std::move(cp.trace);
        runtime::ExecOptions eopts;
        eopts.collect_values = t.verify;
        results[static_cast<size_t>(i)] = runtime::simulate(
            cp, machine::MachineConfig::dash(t.procs), eopts);
        traces[static_cast<size_t>(i)].merge(
            results[static_cast<size_t>(i)].trace);
        if (t.verify)
          DCT_CHECK(results[static_cast<size_t>(i)].values == reference,
                    prog.name + ": transformed program changed results");
      });

  for (const support::PipelineTrace& t : traces) out.trace.merge(t);

  out.seq_cycles = results[0].cycles;
  size_t i = grid_base;
  for (size_t m = 0; m < opts.modes.size(); ++m) {
    std::vector<double> series;
    for (size_t p = 0; p < opts.procs.size(); ++p, ++i)
      series.push_back(out.seq_cycles / results[i].cycles);
    out.speedups.push_back(std::move(series));
    runtime::RunResult last;
    if (!opts.procs.empty()) last = std::move(results[i - 1]);
    out.mem_at_max.push_back(last.mem);
    out.raw_at_max.push_back(std::move(last));
  }

  if (support::trace_enabled())
    support::emit_trace(out.trace.json(
        {{"unit", prog.name},
         {"kind", "sweep"},
         {"points", strf("%d", static_cast<int>(tasks.size()))}}));
  return out;
}

std::string render_sweep(const std::string& title, const SweepResult& r) {
  std::ostringstream os;
  std::vector<Series> series;
  for (size_t m = 0; m < r.modes.size(); ++m)
    series.push_back(Series{to_string(r.modes[m]), r.speedups[m]});
  os << render_speedup_chart(title, r.procs, series) << "\n";

  std::vector<std::string> header = {"procs"};
  for (Mode m : r.modes) header.push_back(to_string(m));
  Table t(header);
  for (size_t i = 0; i < r.procs.size(); ++i) {
    std::vector<std::string> row = {strf("%d", r.procs[i])};
    for (size_t m = 0; m < r.modes.size(); ++m)
      row.push_back(strf("%.2f", r.speedups[m][i]));
    t.add_row(std::move(row));
  }
  os << t.to_string();

  os << "memory behaviour at P=" << r.procs.back() << ":\n";
  for (size_t m = 0; m < r.modes.size(); ++m)
    os << "  " << to_string(r.modes[m]) << ": "
       << r.mem_at_max[m].to_string() << "\n";
  return os.str();
}

Table1Row table1_row(const std::string& name, const ir::Program& prog,
                     int procs) {
  SweepOptions opts;
  opts.procs = {procs};
  opts.verify = false;
  const SweepResult r = run_sweep(prog, opts);
  Table1Row row;
  row.program = name;
  row.base_speedup = r.speedups[0][0];
  const double cd = r.speedups[1][0];
  row.full_speedup = r.speedups[2][0];
  // "Critical" as in the paper's Table 1: the technique accounts for a
  // substantial part of the final improvement.
  row.comp_decomp_critical = cd >= 1.2 * row.base_speedup ||
                             row.full_speedup >= 1.5 * row.base_speedup;
  row.data_transform_critical = row.full_speedup >= 1.2 * cd;

  const decomp::ProgramDecomposition dec = decomp::decompose(prog);
  std::vector<std::string> decs;
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    if (dec.arrays[a].replicated ||
        dec.arrays[a].distributed_count() == 0)
      continue;
    decs.push_back(prog.arrays[a].name + dec.arrays[a].hpf_string());
  }
  row.decompositions = join(decs, " ");
  return row;
}

std::string render_table1(const std::vector<Table1Row>& rows) {
  Table t({"Program", "Base", "Fully Optimized", "Comp Decomp",
           "Data Transform", "Data Decompositions"});
  for (const Table1Row& r : rows)
    t.add_row({r.program, strf("%.1f", r.base_speedup),
               strf("%.1f", r.full_speedup),
               r.comp_decomp_critical ? "yes" : "-",
               r.data_transform_critical ? "yes" : "-", r.decompositions});
  return t.to_string();
}

}  // namespace dct::core
