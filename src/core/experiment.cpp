#include "core/experiment.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace dct::core {

SweepResult run_sweep(const ir::Program& prog, const SweepOptions& opts) {
  SweepResult out;
  out.procs = opts.procs;
  out.modes = opts.modes;

  runtime::ExecOptions eopts;
  eopts.collect_values = false;

  // Best sequential version: BASE on one processor.
  {
    const CompiledProgram cp =
        compile(prog, Mode::Base, 1, opts.strategy);
    out.seq_cycles =
        runtime::simulate(cp, machine::MachineConfig::dash(1), eopts).cycles;
  }

  if (opts.verify) {
    const auto reference = runtime::run_reference(prog);
    for (Mode mode : opts.modes) {
      const CompiledProgram cp = compile(prog, mode, 4, opts.strategy);
      runtime::ExecOptions vopts;
      const auto r =
          runtime::simulate(cp, machine::MachineConfig::dash(4), vopts);
      DCT_CHECK(r.values == reference,
                prog.name + ": transformed program changed results");
    }
  }

  for (Mode mode : opts.modes) {
    std::vector<double> series;
    runtime::RunResult last;
    for (int p : opts.procs) {
      const CompiledProgram cp = compile(prog, mode, p, opts.strategy);
      last = runtime::simulate(cp, machine::MachineConfig::dash(p), eopts);
      series.push_back(out.seq_cycles / last.cycles);
    }
    out.speedups.push_back(std::move(series));
    out.mem_at_max.push_back(last.mem);
    out.raw_at_max.push_back(std::move(last));
  }
  return out;
}

std::string render_sweep(const std::string& title, const SweepResult& r) {
  std::ostringstream os;
  std::vector<Series> series;
  for (size_t m = 0; m < r.modes.size(); ++m)
    series.push_back(Series{to_string(r.modes[m]), r.speedups[m]});
  os << render_speedup_chart(title, r.procs, series) << "\n";

  std::vector<std::string> header = {"procs"};
  for (Mode m : r.modes) header.push_back(to_string(m));
  Table t(header);
  for (size_t i = 0; i < r.procs.size(); ++i) {
    std::vector<std::string> row = {strf("%d", r.procs[i])};
    for (size_t m = 0; m < r.modes.size(); ++m)
      row.push_back(strf("%.2f", r.speedups[m][i]));
    t.add_row(std::move(row));
  }
  os << t.to_string();

  os << "memory behaviour at P=" << r.procs.back() << ":\n";
  for (size_t m = 0; m < r.modes.size(); ++m)
    os << "  " << to_string(r.modes[m]) << ": "
       << r.mem_at_max[m].to_string() << "\n";
  return os.str();
}

Table1Row table1_row(const std::string& name, const ir::Program& prog,
                     int procs) {
  SweepOptions opts;
  opts.procs = {procs};
  opts.verify = false;
  const SweepResult r = run_sweep(prog, opts);
  Table1Row row;
  row.program = name;
  row.base_speedup = r.speedups[0][0];
  const double cd = r.speedups[1][0];
  row.full_speedup = r.speedups[2][0];
  // "Critical" as in the paper's Table 1: the technique accounts for a
  // substantial part of the final improvement.
  row.comp_decomp_critical = cd >= 1.2 * row.base_speedup ||
                             row.full_speedup >= 1.5 * row.base_speedup;
  row.data_transform_critical = row.full_speedup >= 1.2 * cd;

  const decomp::ProgramDecomposition dec = decomp::decompose(prog);
  std::vector<std::string> decs;
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    if (dec.arrays[a].replicated ||
        dec.arrays[a].distributed_count() == 0)
      continue;
    decs.push_back(prog.arrays[a].name + dec.arrays[a].hpf_string());
  }
  row.decompositions = join(decs, " ");
  return row;
}

std::string render_table1(const std::vector<Table1Row>& rows) {
  Table t({"Program", "Base", "Fully Optimized", "Comp Decomp",
           "Data Transform", "Data Decompositions"});
  for (const Table1Row& r : rows)
    t.add_row({r.program, strf("%.1f", r.base_speedup),
               strf("%.1f", r.full_speedup),
               r.comp_decomp_critical ? "yes" : "-",
               r.data_transform_critical ? "yes" : "-", r.decompositions});
  return t.to_string();
}

}  // namespace dct::core
