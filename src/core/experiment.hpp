// Experiment harness shared by the benchmark binaries: runs a program
// under the three compiler configurations of the paper's evaluation
// across a processor sweep and renders paper-style speedup figures and
// summary tables.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/machine.hpp"
#include "runtime/executor.hpp"

namespace dct::core {

struct SweepOptions {
  std::vector<int> procs = {1, 2, 4, 8, 16, 24, 32};
  std::vector<Mode> modes = {Mode::Base, Mode::CompDecomp, Mode::Full};
  layout::AddrStrategy strategy = layout::AddrStrategy::Optimized;
  bool verify = true;  ///< check bit-exact semantics on the smallest run
  /// Worker threads for the sweep points: 0 = support::default_threads()
  /// (hardware_concurrency, or the DCT_THREADS env), 1 = serial. Results
  /// are byte-identical regardless of the thread count.
  int threads = 0;
};

struct SweepResult {
  std::vector<int> procs;
  double seq_cycles = 0;  ///< best sequential version (BASE on 1 processor)
  /// speedups[m][p] for mode m over the processor sweep.
  std::vector<std::vector<double>> speedups;
  std::vector<Mode> modes;
  /// Memory statistics of the largest-P run per mode.
  std::vector<machine::ProcStats> mem_at_max;
  std::vector<runtime::RunResult> raw_at_max;
  /// Pipeline traces of every compilation in the sweep, aggregated
  /// (per-pass wall time, runs and decision counters summed).
  support::PipelineTrace trace;
};

/// Run the full sweep. The paper's speedups are "calculated over the best
/// sequential version": we use the BASE compilation on one processor.
/// Every (mode, P) point is an independent compile+simulate, so they run
/// on a thread pool (opts.threads) with deterministic result ordering.
SweepResult run_sweep(const ir::Program& prog, const SweepOptions& opts = {});

/// Render the sweep as a paper-style figure (ASCII chart) plus the exact
/// numbers in a table.
std::string render_sweep(const std::string& title, const SweepResult& r);

/// One row of the paper's Table 1.
struct Table1Row {
  std::string program;
  double base_speedup = 0;
  double full_speedup = 0;
  bool comp_decomp_critical = false;
  bool data_transform_critical = false;
  std::string decompositions;
};

Table1Row table1_row(const std::string& name, const ir::Program& prog,
                     int procs = 32);
std::string render_table1(const std::vector<Table1Row>& rows);

}  // namespace dct::core
