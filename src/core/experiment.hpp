// Experiment harness shared by the benchmark binaries: runs a program
// under the three compiler configurations of the paper's evaluation
// across a processor sweep and renders paper-style speedup figures and
// summary tables.
//
// The sweep is fault-isolated: every (mode, P) cell runs inside a crash
// boundary with a configurable retry budget and a cooperative wall-clock
// deadline (DCT_DEADLINE_MS). A cell that keeps failing becomes a
// structured CellFailure record — it never takes the sweep down — and the
// optimized modes degrade down the mode chain (Full -> CompDecomp ->
// Base) before giving up, recording a `degraded` remark when a fallback
// result is served.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/machine.hpp"
#include "runtime/executor.hpp"
#include "support/cancel.hpp"
#include "support/diagnostics.hpp"

namespace dct::core {

struct SweepOptions {
  std::vector<int> procs = {1, 2, 4, 8, 16, 24, 32};
  std::vector<Mode> modes = {Mode::Base, Mode::CompDecomp, Mode::Full};
  layout::AddrStrategy strategy = layout::AddrStrategy::Optimized;
  bool verify = true;  ///< check bit-exact semantics on the smallest run
  /// Worker threads for the sweep points: 0 = support::default_threads()
  /// (hardware_concurrency, or the DCT_THREADS env), 1 = serial. Results
  /// are byte-identical regardless of the thread count.
  int threads = 0;
  /// Extra attempts per cell after a transient failure (unsupported
  /// configs, oracle violations and deadline trips are never retried).
  int retries = 0;
  /// Wall-clock budget for the whole sweep in milliseconds. < 0 reads the
  /// DCT_DEADLINE_MS environment variable; 0 disables the deadline. On
  /// expiry, running simulations stop at their next cancellation poll and
  /// cells not yet started are recorded as cancelled.
  double deadline_ms = -1;
  /// Test seam: called at the start of every cell attempt (before the
  /// compile). A throw is handled exactly like a pass or simulator fault
  /// — fault-injection tests use this to exercise the crash boundary.
  std::function<void(Mode, int)> fault_hook;
};

/// Structured record of one sweep cell that did not complete normally.
struct CellFailure {
  Mode mode = Mode::Base;  ///< requested mode of the cell
  int procs = 0;
  Error::Code code = Error::Code::kGeneric;
  std::string stage;  ///< context chain of the error, innermost first
  std::string what;   ///< message of the (last) failure
  int attempts = 0;   ///< total attempts across the degradation chain
  bool skipped = false;   ///< unsupported configuration, not a fault
  bool degraded = false;  ///< a lower mode's result was served instead
  Mode served_mode = Mode::Base;  ///< meaningful when degraded
  std::string repro;  ///< how to reproduce, e.g. "lu mode=full procs=8"

  std::string to_string() const;
};

struct SweepResult {
  std::vector<int> procs;
  double seq_cycles = 0;  ///< best sequential version (BASE on 1 processor)
  /// speedups[m][p] for mode m over the processor sweep. A cell that
  /// failed (and could not degrade) holds 0 and is rendered as "-".
  std::vector<std::vector<double>> speedups;
  std::vector<Mode> modes;
  /// Memory statistics of the largest-P run per mode.
  std::vector<machine::ProcStats> mem_at_max;
  std::vector<runtime::RunResult> raw_at_max;
  /// Pipeline traces of every compilation in the sweep, aggregated
  /// (per-pass wall time, runs and decision counters summed). Served
  /// fallback results contribute a `degraded` pass record.
  support::PipelineTrace trace;
  /// Every cell that faulted, was skipped, degraded or got cancelled.
  std::vector<CellFailure> failures;

  /// True when every cell produced its own result (skipped and degraded
  /// cells count as failures here — callers that tolerate them should
  /// inspect `failures` directly).
  bool all_cells_ok() const { return failures.empty(); }
};

/// Run the full sweep. The paper's speedups are "calculated over the best
/// sequential version": we use the BASE compilation on one processor.
/// Every (mode, P) point is an independent compile+simulate, so they run
/// on a thread pool (opts.threads) with deterministic result ordering.
/// The sweep always returns: cell faults land in SweepResult::failures.
SweepResult run_sweep(const ir::Program& prog, const SweepOptions& opts = {});

/// The failure table render_sweep appends when a sweep had failures.
std::string render_failures(const std::vector<CellFailure>& failures);

/// Render the sweep as a paper-style figure (ASCII chart) plus the exact
/// numbers in a table.
std::string render_sweep(const std::string& title, const SweepResult& r);

/// One row of the paper's Table 1.
struct Table1Row {
  std::string program;
  double base_speedup = 0;
  double full_speedup = 0;
  bool comp_decomp_critical = false;
  bool data_transform_critical = false;
  std::string decompositions;
};

Table1Row table1_row(const std::string& name, const ir::Program& prog,
                     int procs = 32);
std::string render_table1(const std::vector<Table1Row>& rows);

}  // namespace dct::core
