// The integrated compiler (the paper's primary contribution, end to end):
// parallelization + computation/data decomposition (Section 3) composed
// with data-layout transformation and address-calculation optimization
// (Section 4), targeting a simulated DASH-class machine.
//
// Three configurations mirror the evaluation (Section 6.1):
//   Base          — per-nest parallelization of the outermost parallel
//                   loop, block-distributed; original layouts; a barrier
//                   after every nest.
//   CompDecomp    — the global decomposition algorithm; original layouts.
//   Full          — CompDecomp plus array restructuring (the paper's
//                   "comp decomp + data transform").
#pragma once

#include <algorithm>
#include <vector>

#include "decomp/decomposition.hpp"
#include "ir/program.hpp"
#include "layout/layout.hpp"
#include "support/remark.hpp"

namespace dct::core {

using linalg::Int;

enum class Mode { Base, CompDecomp, Full };
std::string to_string(Mode mode);

/// Explicit per-compilation configuration. Historically the pipeline read
/// environment variables (DCT_VALIDATE, DCT_NATIVE, DCT_DEBUG_DECOMP,
/// DCT_TRACE) mid-flight; that is process-global state, so two concurrent
/// compilations could not hold different settings and raced with setenv.
/// All of it now travels here. The legacy compile() overloads snapshot the
/// environment once at compile entry (from_env), preserving the env-driven
/// behavior for batch tools; long-lived callers (the dctd service) resolve
/// one snapshot at startup and pass it explicitly with every request.
struct CompileOptions {
  layout::AddrStrategy strategy = layout::AddrStrategy::Optimized;
  decomp::DecompOptions decomp;
  /// Append the verify pass (src/verify static oracles) to the pipeline.
  bool validate = false;
  /// Verify pass also differential-tests the native threaded backend.
  bool native_check = false;
  /// Emit the pipeline trace as one JSON line after the compile.
  bool trace = false;
  std::string trace_path;  ///< empty = stderr

  /// Fresh snapshot of DCT_VALIDATE / DCT_NATIVE / DCT_DEBUG_DECOMP /
  /// DCT_TRACE. Read once per call; nothing downstream touches getenv.
  static CompileOptions from_env();
};

/// Folding of one virtual processor dimension onto physical ranks.
struct CoordFold {
  decomp::DistKind kind = decomp::DistKind::Serial;
  int procs = 1;    ///< grid extent of this dimension
  Int block = 1;    ///< BLOCK / BLOCK-CYCLIC block size
  Int offset = 0;   ///< subtracted before folding (Base: loop lower bound)
  int stride = 1;   ///< mixed-radix stride within the clique

  /// Physical coordinate of value v. Total: any Int (including values
  /// below the offset) maps into [0, procs) — BLOCK clamps, CYCLIC and
  /// BLOCK-CYCLIC wrap with floored division semantics.
  int fold(Int v) const;

  /// Digit of this fold encoded in physical rank `myid` (mixed-radix
  /// decode; the inverse of the `digit * stride` contribution to the
  /// owner sum).
  int digit_of(int myid) const { return (myid / stride) % procs; }

  /// First value whose unclamped BLOCK / BLOCK-CYCLIC block index is t.
  /// With block_hi these are the per-thread loop bounds the paper's
  /// generated SPMD code computes from myid (Section 3.3).
  Int block_lo(int t) const {
    return offset + static_cast<Int>(t) * std::max<Int>(1, block);
  }
  /// Last value in block t (inclusive).
  Int block_hi(int t) const { return block_lo(t + 1) - 1; }

  bool operator==(const CoordFold&) const = default;
};

struct CompiledArray {
  layout::Layout layout;      ///< identity unless Full restructures it
  Int base_addr = 0;          ///< byte address of (first copy of) the array
  Int bytes = 0;              ///< allocated bytes per copy
  bool replicated = false;    ///< one copy per cluster
  layout::Partition part;     ///< ownership folding (element -> coords)
};

struct CompiledRef {
  int array = -1;
  bool is_write = false;
  int rank = 0;
  std::vector<Int> coeffs;   ///< rank x depth, row-major
  std::vector<Int> offsets;  ///< rank
  double addr_overhead = 0;  ///< cycles per access (Section 4.3 model)
};

struct CompiledStmt {
  int depth = 0;  ///< executes once per iteration of the outer `depth` loops
  double compute_cycles = 0;
  std::function<double(std::span<const double>)> eval;
  std::vector<CompiledRef> reads;
  std::vector<CompiledRef> writes;  ///< 0 or 1
  /// Owner mapping: pairs of (loop level, fold). Empty = run on proc 0.
  std::vector<std::pair<int, CoordFold>> owner;
};

struct CompiledNest {
  ir::LoopNest nest;  ///< the transformed nest
  std::vector<CompiledStmt> stmts;
  bool barrier_after = true;
};

struct CompiledProgram {
  ir::Program program;  ///< original program (arrays and sizes)
  Mode mode = Mode::Base;
  int procs = 1;
  layout::AddrStrategy strategy = layout::AddrStrategy::Optimized;
  decomp::ProgramDecomposition dec;
  std::vector<int> grid;  ///< physical extent per virtual dimension
  std::vector<CompiledArray> arrays;
  std::vector<CompiledNest> nests;
  /// Structured pipeline trace: per-pass wall time, remarks and decision
  /// counters (see support/remark.hpp; DCT_TRACE=1 prints it as JSON).
  support::PipelineTrace trace;

  std::string report() const;  ///< human-readable compilation summary
};

/// Run the full pipeline for `procs` processors: builds the pass list for
/// `mode` (see core/pass.hpp) and runs it through the PassManager. The
/// processor count is a compile-time input exactly as in the paper's
/// generated SPMD code (block sizes are ceil(d/P)).
///
/// Reentrant: everything the pipeline consults lives in `opts` (or the
/// arguments), so any number of compilations may run concurrently.
CompiledProgram compile(const ir::Program& prog, Mode mode, int procs,
                        const CompileOptions& opts);

/// Legacy entry point: snapshots the environment knobs at call time
/// (CompileOptions::from_env) and overrides the address strategy.
CompiledProgram compile(const ir::Program& prog, Mode mode, int procs,
                        layout::AddrStrategy strategy =
                            layout::AddrStrategy::Optimized);

/// Compile with an externally supplied decomposition (ablation studies,
/// HPF-directed decompositions): layouts, folds and schedules are derived
/// from `dec` exactly as `compile` does from its own analysis. `mode`
/// controls only whether layouts are restructured (Full) or kept (others).
CompiledProgram compile_with_decomposition(const ir::Program& prog,
                                           decomp::ProgramDecomposition dec,
                                           Mode mode, int procs,
                                           const CompileOptions& opts);

CompiledProgram compile_with_decomposition(
    const ir::Program& prog, decomp::ProgramDecomposition dec, Mode mode,
    int procs,
    layout::AddrStrategy strategy = layout::AddrStrategy::Optimized);

}  // namespace dct::core
