#include "core/compiler.hpp"

#include <algorithm>
#include <sstream>

#include "dep/dependence.hpp"
#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::core {

using decomp::DistKind;
using layout::Layout;

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::Base: return "base";
    case Mode::CompDecomp: return "comp decomp";
    case Mode::Full: return "comp decomp + data transform";
  }
  return "?";
}

int CoordFold::fold(Int v) const {
  const Int x = v - offset;
  switch (kind) {
    case DistKind::Serial:
      return 0;
    case DistKind::Block: {
      const Int c = x / std::max<Int>(1, block);
      return static_cast<int>(std::clamp<Int>(c, 0, procs - 1));
    }
    case DistKind::Cyclic:
      return static_cast<int>(x % procs);
    case DistKind::BlockCyclic:
      return static_cast<int>((x / std::max<Int>(1, block)) % procs);
  }
  return 0;
}

namespace {

Int ceil_div(Int a, Int b) { return (a + b - 1) / b; }
Int page_align(Int x, Int page = 4096) { return ceil_div(x, page) * page; }

CompiledRef flatten_ref(const ir::ArrayRef& r, int depth, bool is_write,
                        double overhead) {
  CompiledRef out;
  out.array = r.array;
  out.is_write = is_write;
  out.rank = r.access.rows();
  out.coeffs.assign(static_cast<size_t>(out.rank) * static_cast<size_t>(depth),
                    0);
  for (int row = 0; row < out.rank; ++row)
    for (int c = 0; c < r.access.cols() && c < depth; ++c)
      out.coeffs[static_cast<size_t>(row) * static_cast<size_t>(depth) +
                 static_cast<size_t>(c)] = r.access.at(row, c);
  out.offsets = r.offset;
  out.addr_overhead = overhead;
  return out;
}

}  // namespace

CompiledProgram compile(const ir::Program& prog, Mode mode, int procs,
                        layout::AddrStrategy strategy) {
  return compile_with_decomposition(prog,
                                    mode == Mode::Base
                                        ? decomp::decompose_base(prog)
                                        : decomp::decompose(prog),
                                    mode, procs, strategy);
}

CompiledProgram compile_with_decomposition(const ir::Program& prog,
                                           decomp::ProgramDecomposition dec,
                                           Mode mode, int procs,
                                           layout::AddrStrategy strategy) {
  DCT_CHECK(procs >= 1, "need at least one processor");
  CompiledProgram cp;
  cp.program = prog;
  cp.mode = mode;
  cp.procs = procs;
  cp.strategy = strategy;
  cp.dec = std::move(dec);
  cp.grid = cp.dec.grid_extents(procs);

  // Mixed-radix strides within co-activity cliques.
  std::vector<int> stride(static_cast<size_t>(cp.dec.num_proc_dims), 1);
  for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd)
    for (int q = 0; q < pd; ++q)
      if (cp.dec.clique_id[static_cast<size_t>(q)] ==
          cp.dec.clique_id[static_cast<size_t>(pd)])
        stride[static_cast<size_t>(pd)] *= cp.grid[static_cast<size_t>(q)];

  // ---- arrays: layouts, partitions, address-space allocation ----
  const int clusters = (procs + 3) / 4;  // DASH clustering
  Int next_addr = 0;
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const ir::ArrayDecl& decl = prog.arrays[a];
    CompiledArray ca;
    ca.replicated = cp.dec.arrays[a].replicated;
    ca.layout = mode == Mode::Full
                    ? layout::derive_layout(decl, cp.dec.arrays[a], cp.grid)
                    : Layout::identity(decl.dims);
    ca.part = layout::make_partition(decl, cp.dec.arrays[a], cp.grid,
                                     cp.dec.num_proc_dims);
    ca.bytes = page_align(ca.layout.size() * decl.elem_size);
    ca.base_addr = next_addr;
    next_addr += ca.bytes * (ca.replicated ? clusters : 1);
    cp.arrays.push_back(std::move(ca));
  }

  // Fold parameters of one virtual dimension, from the first array bound
  // to it (group members are aligned, so extents agree).
  auto fold_for_dim = [&](int pd) {
    CoordFold f;
    f.procs = cp.grid[static_cast<size_t>(pd)];
    f.stride = stride[static_cast<size_t>(pd)];
    for (const CompiledArray& ca : cp.arrays)
      for (const auto& d : ca.part.dims)
        if (d.proc_dim == pd) {
          f.kind = d.kind;
          f.block = std::max<Int>(1, d.block);
          return f;
        }
    f.kind = DistKind::Block;
    f.block = 1;
    return f;
  };

  // ---- nests ----
  for (size_t j = 0; j < prog.nests.size(); ++j) {
    const dep::ParallelizedNest& par = cp.dec.par[j];
    const decomp::NestDecomposition& nd = cp.dec.nests[j];
    CompiledNest cn;
    cn.nest = par.nest;
    cn.barrier_after = nd.barrier_after;
    const int depth = par.nest.depth();
    const dep::Hull hull = dep::iteration_hull(par.nest);

    for (size_t s = 0; s < par.nest.stmts.size(); ++s) {
      const ir::Stmt& st = par.nest.stmts[s];
      CompiledStmt cs;
      cs.depth = st.effective_depth(depth);
      cs.compute_cycles = st.compute_cycles;
      cs.eval = st.eval;
      for (const ir::ArrayRef& r : st.reads)
        cs.reads.push_back(flatten_ref(
            r, depth, false,
            layout::address_overhead(
                par.nest, r, cp.arrays[static_cast<size_t>(r.array)].layout,
                strategy)));
      if (st.write)
        cs.writes.push_back(flatten_ref(
            *st.write, depth, true,
            layout::address_overhead(
                par.nest, *st.write,
                cp.arrays[static_cast<size_t>(st.write->array)].layout,
                strategy)));

      if (mode == Mode::Base) {
        // BASE: block-distribute the single marked loop by its span.
        for (size_t l = 0; l < nd.loops.size(); ++l) {
          if (nd.loops[l].sched != decomp::LoopSched::Distributed) continue;
          CoordFold f;
          f.kind = DistKind::Block;
          f.procs = procs;
          f.offset = hull.lo[l];
          const Int span = hull.hi[l] - hull.lo[l] + 1;
          f.block = std::max<Int>(1, ceil_div(span, procs));
          f.stride = 1;
          cs.owner.push_back({static_cast<int>(l), f});
          break;
        }
      } else {
        for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd) {
          int loop = -1;
          if (s < nd.stmts.size() &&
              pd < static_cast<int>(nd.stmts[s].loop_for_dim.size()))
            loop = nd.stmts[s].loop_for_dim[static_cast<size_t>(pd)];
          if (loop < 0) {
            // Fall back to the nest-level mapping.
            for (size_t l = 0; l < nd.loops.size(); ++l)
              if (nd.loops[l].proc_dim == pd) loop = static_cast<int>(l);
          }
          if (loop < 0) continue;
          cs.owner.push_back({loop, fold_for_dim(pd)});
        }
      }
      cn.stmts.push_back(std::move(cs));
    }
    cp.nests.push_back(std::move(cn));
  }
  return cp;
}

std::string CompiledProgram::report() const {
  std::ostringstream os;
  os << "=== " << program.name << " [" << to_string(mode) << ", P=" << procs
     << "] ===\n";
  os << dec.to_string(program);
  for (size_t a = 0; a < arrays.size(); ++a) {
    if (arrays[a].layout.is_identity()) continue;
    os << "  layout " << program.arrays[a].name << ": "
       << arrays[a].layout.to_string() << "\n";
  }
  return os.str();
}

}  // namespace dct::core
