#include "core/compiler.hpp"

#include <algorithm>
#include <sstream>

#include <cstdlib>

#include "core/pass.hpp"
#include "linalg/int_matrix.hpp"
#include "support/diagnostics.hpp"
#include "support/str.hpp"
#include "verify/oracle.hpp"

namespace dct::core {

using decomp::DistKind;
using linalg::floor_div;
using linalg::floor_mod;

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::Base: return "base";
    case Mode::CompDecomp: return "comp decomp";
    case Mode::Full: return "comp decomp + data transform";
  }
  return "?";
}

int CoordFold::fold(Int v) const {
  const Int x = v - offset;
  switch (kind) {
    case DistKind::Serial:
      return 0;
    case DistKind::Block: {
      const Int c = floor_div(x, std::max<Int>(1, block));
      return static_cast<int>(std::clamp<Int>(c, 0, procs - 1));
    }
    case DistKind::Cyclic:
      return static_cast<int>(floor_mod(x, procs));
    case DistKind::BlockCyclic:
      return static_cast<int>(
          floor_mod(floor_div(x, std::max<Int>(1, block)), procs));
  }
  return 0;
}

CompileOptions CompileOptions::from_env() {
  CompileOptions o;
  o.validate = verify::validate_enabled();
  o.native_check = verify::native_check_enabled();
  o.decomp.debug = std::getenv("DCT_DEBUG_DECOMP") != nullptr;
  const support::TraceOptions to = support::TraceOptions::from_env();
  o.trace = to.enabled;
  o.trace_path = to.path;
  return o;
}

namespace {

CompiledProgram run_pipeline(const PassManager& pm, CompilationState st,
                             const CompileOptions& opts) {
  support::RemarkEngine eng;
  pm.run(st, eng);
  st.cp.trace = eng.take_trace();
  if (opts.trace)
    support::emit_trace(
        st.cp.trace.json({{"unit", st.cp.program.name},
                          {"mode", to_string(st.cp.mode)},
                          {"procs", strf("%d", st.cp.procs)}}),
        support::TraceOptions{true, opts.trace_path});
  return std::move(st.cp);
}

}  // namespace

CompiledProgram compile(const ir::Program& prog, Mode mode, int procs,
                        const CompileOptions& opts) {
  DCT_CHECK(procs >= 1, "need at least one processor");
  CompilationState st;
  st.cp.program = prog;
  st.cp.mode = mode;
  st.cp.procs = procs;
  st.cp.strategy = opts.strategy;
  return run_pipeline(build_pipeline(mode, opts), std::move(st), opts);
}

CompiledProgram compile(const ir::Program& prog, Mode mode, int procs,
                        layout::AddrStrategy strategy) {
  CompileOptions opts = CompileOptions::from_env();
  opts.strategy = strategy;
  return compile(prog, mode, procs, opts);
}

CompiledProgram compile_with_decomposition(const ir::Program& prog,
                                           decomp::ProgramDecomposition dec,
                                           Mode mode, int procs,
                                           const CompileOptions& opts) {
  DCT_CHECK(procs >= 1, "need at least one processor");
  CompilationState st;
  st.cp.program = prog;
  st.cp.mode = mode;
  st.cp.procs = procs;
  st.cp.strategy = opts.strategy;
  st.cp.dec = std::move(dec);
  return run_pipeline(build_lowering_pipeline(mode, opts), std::move(st),
                      opts);
}

CompiledProgram compile_with_decomposition(const ir::Program& prog,
                                           decomp::ProgramDecomposition dec,
                                           Mode mode, int procs,
                                           layout::AddrStrategy strategy) {
  CompileOptions opts = CompileOptions::from_env();
  opts.strategy = strategy;
  return compile_with_decomposition(prog, std::move(dec), mode, procs, opts);
}

std::string CompiledProgram::report() const {
  std::ostringstream os;
  os << "=== " << program.name << " [" << to_string(mode) << ", P=" << procs
     << "] ===\n";
  os << dec.to_string(program);
  for (size_t a = 0; a < arrays.size(); ++a) {
    if (arrays[a].layout.is_identity()) continue;
    os << "  layout " << program.arrays[a].name << ": "
       << arrays[a].layout.to_string() << "\n";
  }
  return os.str();
}

}  // namespace dct::core
