#include "core/pass.hpp"

#include <algorithm>
#include <utility>

#include "dep/dependence.hpp"
#include "native/plan.hpp"
#include "support/diagnostics.hpp"
#include "support/str.hpp"
#include "verify/oracle.hpp"

namespace dct::core {

using decomp::DistKind;
using layout::Layout;

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

void PassManager::run(CompilationState& st, support::RemarkEngine& eng) const {
  for (const auto& p : passes_) {
    eng.begin_pass(p->name());
    // Attribute any failure to the pass that raised it: fault isolation
    // upstream (core::run_sweep) records the failing pass per cell.
    try {
      p->run(st, eng);
    } catch (Error& e) {
      eng.end_pass();
      throw e.with_context("pass " + p->name());
    } catch (const std::exception& e) {
      eng.end_pass();
      throw Error(Error::Code::kFault, e.what())
          .with_context("pass " + p->name());
    }
    eng.end_pass();
  }
}

namespace {

Int ceil_div(Int a, Int b) { return (a + b - 1) / b; }
Int page_align(Int x, Int page = 4096) { return ceil_div(x, page) * page; }

// ---------------------------------------------------------------------------
// parallelize — unimodular preprocessing per nest (§3.2)
// ---------------------------------------------------------------------------

class ParallelizePass final : public Pass {
 public:
  std::string name() const override { return "parallelize"; }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    const ir::Program& prog = st.cp.program;
    st.cp.dec.par.clear();
    for (size_t j = 0; j < prog.nests.size(); ++j) {
      support::ScopedSink nest_rs(&rs, static_cast<int>(j),
                                  prog.nests[j].name);
      st.cp.dec.par.push_back(dep::parallelize(prog.nests[j], &nest_rs));
    }
    rs.count("nests", static_cast<long>(prog.nests.size()));
  }
};

// ---------------------------------------------------------------------------
// decompose — alignment + global group selection (§3)
// ---------------------------------------------------------------------------

class DecomposePass final : public Pass {
 public:
  DecomposePass(bool base, decomp::DecompOptions opts)
      : base_(base), opts_(opts) {}
  std::string name() const override {
    return base_ ? "decompose-base" : "decompose";
  }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    // The parallelize pass left its result in dec.par; the decomposition
    // consumes it and rebuilds dec around it.
    std::vector<dep::ParallelizedNest> par = std::move(st.cp.dec.par);
    st.cp.dec =
        base_ ? decomp::decompose_base_from(std::move(par), st.cp.program,
                                            opts_, &rs)
              : decomp::decompose_from(std::move(par), st.cp.program, opts_,
                                       &rs);
  }

 private:
  bool base_;
  decomp::DecompOptions opts_;
};

// ---------------------------------------------------------------------------
// fold-select — folding-function selection per virtual dimension
// ---------------------------------------------------------------------------

class FoldSelectPass final : public Pass {
 public:
  explicit FoldSelectPass(decomp::DecompOptions opts) : opts_(opts) {}
  std::string name() const override { return "fold-select"; }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    decomp::select_folds(st.cp.program, st.cp.dec, opts_, &rs);
  }

 private:
  decomp::DecompOptions opts_;
};

// ---------------------------------------------------------------------------
// barrier-elim — synchronization optimization [Tseng 95]
// ---------------------------------------------------------------------------

class BarrierElimPass final : public Pass {
 public:
  std::string name() const override { return "barrier-elim"; }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    decomp::eliminate_barriers(st.cp.dec, &rs);
  }
};

// ---------------------------------------------------------------------------
// layout — grid folding, per-array layouts/partitions, address space (§4.2)
// ---------------------------------------------------------------------------

class LayoutPass final : public Pass {
 public:
  explicit LayoutPass(bool restructure) : restructure_(restructure) {}
  std::string name() const override { return "layout"; }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    CompiledProgram& cp = st.cp;
    const ir::Program& prog = cp.program;
    cp.grid = cp.dec.grid_extents(cp.procs);

    // Mixed-radix strides within co-activity cliques.
    st.stride.assign(static_cast<size_t>(cp.dec.num_proc_dims), 1);
    for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd)
      for (int q = 0; q < pd; ++q)
        if (cp.dec.clique_id[static_cast<size_t>(q)] ==
            cp.dec.clique_id[static_cast<size_t>(pd)])
          st.stride[static_cast<size_t>(pd)] *=
              cp.grid[static_cast<size_t>(q)];

    const int clusters = (cp.procs + 3) / 4;  // DASH clustering
    Int next_addr = 0;
    cp.arrays.clear();
    for (size_t a = 0; a < prog.arrays.size(); ++a) {
      const ir::ArrayDecl& decl = prog.arrays[a];
      support::ScopedSink arr_rs(&rs, -1, {}, static_cast<int>(a), decl.name);
      CompiledArray ca;
      ca.replicated = cp.dec.arrays[a].replicated;
      ca.layout = restructure_
                      ? layout::derive_layout(decl, cp.dec.arrays[a], cp.grid,
                                              &arr_rs)
                      : Layout::identity(decl.dims);
      ca.part = layout::make_partition(decl, cp.dec.arrays[a], cp.grid,
                                       cp.dec.num_proc_dims);
      ca.bytes = page_align(ca.layout.size() * decl.elem_size);
      ca.base_addr = next_addr;
      next_addr += ca.bytes * (ca.replicated ? clusters : 1);
      if (!ca.layout.is_identity()) {
        arr_rs.note("restructured: " + ca.layout.to_string());
        arr_rs.count("arrays_restructured");
      }
      cp.arrays.push_back(std::move(ca));
    }
    rs.count("bytes_allocated", next_addr);
    rs.count("arrays", static_cast<long>(prog.arrays.size()));
  }

 private:
  bool restructure_;
};

// ---------------------------------------------------------------------------
// lower — owner-computes schedule lowering to CompiledStmts
// ---------------------------------------------------------------------------

class LowerPass final : public Pass {
 public:
  explicit LowerPass(bool base_block_owner)
      : base_block_owner_(base_block_owner) {}
  std::string name() const override { return "lower"; }

  void run(CompilationState& st, support::RemarkSink& rs) override {
    CompiledProgram& cp = st.cp;
    const ir::Program& prog = cp.program;

    // Fold parameters of one virtual dimension, from the first array bound
    // to it (group members are aligned, so extents agree).
    auto fold_for_dim = [&](int pd) {
      CoordFold f;
      f.procs = cp.grid[static_cast<size_t>(pd)];
      f.stride = st.stride[static_cast<size_t>(pd)];
      for (const CompiledArray& ca : cp.arrays)
        for (const auto& d : ca.part.dims)
          if (d.proc_dim == pd) {
            f.kind = d.kind;
            f.block = std::max<Int>(1, d.block);
            return f;
          }
      f.kind = DistKind::Block;
      f.block = 1;
      return f;
    };

    long owner_bindings = 0;
    cp.nests.clear();
    for (size_t j = 0; j < prog.nests.size(); ++j) {
      const dep::ParallelizedNest& par = cp.dec.par[j];
      const decomp::NestDecomposition& nd = cp.dec.nests[j];
      CompiledNest cn;
      cn.nest = par.nest;
      cn.barrier_after = nd.barrier_after;
      const int depth = par.nest.depth();
      const dep::Hull hull = dep::iteration_hull(par.nest);

      for (size_t s = 0; s < par.nest.stmts.size(); ++s) {
        const ir::Stmt& stmt = par.nest.stmts[s];
        CompiledStmt cs;
        cs.depth = stmt.effective_depth(depth);
        cs.compute_cycles = stmt.compute_cycles;
        cs.eval = stmt.eval;
        for (const ir::ArrayRef& r : stmt.reads)
          cs.reads.push_back(flatten_ref(r, depth, false));
        if (stmt.write)
          cs.writes.push_back(flatten_ref(*stmt.write, depth, true));

        if (base_block_owner_) {
          // BASE: block-distribute the single marked loop by its span.
          for (size_t l = 0; l < nd.loops.size(); ++l) {
            if (nd.loops[l].sched != decomp::LoopSched::Distributed) continue;
            CoordFold f;
            f.kind = DistKind::Block;
            f.procs = cp.procs;
            f.offset = hull.lo[l];
            const Int span = hull.hi[l] - hull.lo[l] + 1;
            f.block = std::max<Int>(1, ceil_div(span, cp.procs));
            f.stride = 1;
            cs.owner.push_back({static_cast<int>(l), f});
            break;
          }
        } else {
          for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd) {
            int loop = -1;
            if (s < nd.stmts.size() &&
                pd < static_cast<int>(nd.stmts[s].loop_for_dim.size()))
              loop = nd.stmts[s].loop_for_dim[static_cast<size_t>(pd)];
            if (loop < 0) {
              // Fall back to the nest-level mapping.
              for (size_t l = 0; l < nd.loops.size(); ++l)
                if (nd.loops[l].proc_dim == pd) loop = static_cast<int>(l);
            }
            if (loop < 0) continue;
            cs.owner.push_back({loop, fold_for_dim(pd)});
          }
        }
        owner_bindings += static_cast<long>(cs.owner.size());
        cn.stmts.push_back(std::move(cs));
      }
      if (!cn.barrier_after) {
        support::ScopedSink nest_rs(&rs, static_cast<int>(j), prog.nests[j].name);
        nest_rs.count("barriers_dropped");
      }
      cp.nests.push_back(std::move(cn));
    }
    rs.count("owner_bindings", owner_bindings);
  }

 private:
  static CompiledRef flatten_ref(const ir::ArrayRef& r, int depth,
                                 bool is_write) {
    CompiledRef out;
    out.array = r.array;
    out.is_write = is_write;
    out.rank = r.access.rows();
    out.coeffs.assign(
        static_cast<size_t>(out.rank) * static_cast<size_t>(depth), 0);
    for (int row = 0; row < out.rank; ++row)
      for (int c = 0; c < r.access.cols() && c < depth; ++c)
        out.coeffs[static_cast<size_t>(row) * static_cast<size_t>(depth) +
                   static_cast<size_t>(c)] = r.access.at(row, c);
    out.offsets = r.offset;
    return out;
  }

  bool base_block_owner_;
};

// ---------------------------------------------------------------------------
// addr-strategy — Section 4.3 address-calculation costing per reference
// ---------------------------------------------------------------------------

class AddrStrategyPass final : public Pass {
 public:
  std::string name() const override { return "addr-strategy"; }

  void run(CompilationState& st, support::RemarkSink& rs) override {
    CompiledProgram& cp = st.cp;
    long refs = 0, costed = 0;
    double chosen_total = 0, naive_total = 0;

    for (size_t j = 0; j < cp.nests.size(); ++j) {
      CompiledNest& cn = cp.nests[j];
      for (size_t s = 0; s < cn.stmts.size(); ++s) {
        // Compiled refs were flattened in source order, so they pair with
        // the IR statement's reads/write positionally.
        const ir::Stmt& stmt = cn.nest.stmts[s];
        CompiledStmt& cs = cn.stmts[s];
        auto cost = [&](CompiledRef& cr, const ir::ArrayRef& r) {
          const Layout& l =
              cp.arrays[static_cast<size_t>(cr.array)].layout;
          cr.addr_overhead =
              layout::address_overhead(cn.nest, r, l, cp.strategy);
          ++refs;
          if (cr.addr_overhead > 0) {
            ++costed;
            chosen_total += cr.addr_overhead;
            naive_total += layout::address_overhead(cn.nest, r, l,
                                                    layout::AddrStrategy::Naive);
          }
        };
        for (size_t k = 0; k < cs.reads.size(); ++k)
          cost(cs.reads[k], stmt.reads[k]);
        if (!cs.writes.empty()) cost(cs.writes[0], *stmt.write);
      }
    }
    rs.count("refs", refs);
    rs.count("refs_with_overhead", costed);
    if (costed > 0)
      rs.note(strf("address overhead %.3f cycles/access under the %s "
                   "strategy (naive would pay %.1f)",
                   chosen_total / static_cast<double>(costed),
                   cp.strategy == layout::AddrStrategy::Naive     ? "naive"
                   : cp.strategy == layout::AddrStrategy::Hoisted ? "hoisted"
                                                                  : "optimized",
                   naive_total / static_cast<double>(costed)));
  }
};

// ---------------------------------------------------------------------------
// verify — static validation oracles (src/verify/), DCT_VALIDATE=1
// ---------------------------------------------------------------------------

class VerifyPass final : public Pass {
 public:
  /// native: 1 = run the native differential, 0 = skip, -1 = consult the
  /// DCT_NATIVE env var at run time (the legacy factory).
  explicit VerifyPass(int native) : native_(native) {}
  std::string name() const override { return "verify"; }
  void run(CompilationState& st, support::RemarkSink& rs) override {
    verify::ValidationReport rep = verify::validate_compiled(st.cp);
    const bool native =
        native_ >= 0 ? native_ != 0 : verify::native_check_enabled();
    if (native) {
      rep.oracles.push_back(verify::check_native(st.cp));
      const native::ProgramPlan pp = native::plan_program(st.cp);
      rs.count("native_sequential_nests", pp.sequential_nests);
      rs.count("native_restricted_nests", pp.restricted_nests);
      for (size_t j = 0; j < pp.nests.size(); ++j) {
        support::ScopedSink nest_rs(&rs, static_cast<int>(j),
                                    st.cp.program.nests[j].name);
        nest_rs.note("native plan: " + pp.nests[j].why);
      }
    }
    rs.count("oracle_checks", rep.total_checks());
    for (const verify::OracleReport& o : rep.oracles) {
      rs.count(("checks_" + o.oracle).c_str(), o.checks);
      if (!o.ok()) rs.note(o.to_string());
    }
    rep.raise_if_violated(st.cp.program.name + " [" + to_string(st.cp.mode) +
                          "]");
  }

 private:
  int native_;
};

}  // namespace

std::unique_ptr<Pass> make_parallelize_pass() {
  return std::make_unique<ParallelizePass>();
}
std::unique_ptr<Pass> make_decompose_pass(bool base,
                                          const decomp::DecompOptions& opts) {
  return std::make_unique<DecomposePass>(base, opts);
}
std::unique_ptr<Pass> make_fold_select_pass(
    const decomp::DecompOptions& opts) {
  return std::make_unique<FoldSelectPass>(opts);
}
std::unique_ptr<Pass> make_barrier_elim_pass() {
  return std::make_unique<BarrierElimPass>();
}
std::unique_ptr<Pass> make_layout_pass(bool restructure) {
  return std::make_unique<LayoutPass>(restructure);
}
std::unique_ptr<Pass> make_lower_pass(bool base_block_owner) {
  return std::make_unique<LowerPass>(base_block_owner);
}
std::unique_ptr<Pass> make_addr_strategy_pass() {
  return std::make_unique<AddrStrategyPass>();
}
std::unique_ptr<Pass> make_verify_pass(bool native_check) {
  return std::make_unique<VerifyPass>(native_check ? 1 : 0);
}
std::unique_ptr<Pass> make_verify_pass() {
  return std::make_unique<VerifyPass>(-1);
}

PassManager build_pipeline(Mode mode, const CompileOptions& opts) {
  PassManager pm;
  pm.add(make_parallelize_pass());
  pm.add(make_decompose_pass(mode == Mode::Base, opts.decomp));
  if (mode != Mode::Base) {
    pm.add(make_fold_select_pass(opts.decomp));
    pm.add(make_barrier_elim_pass());
  }
  pm.add(make_layout_pass(mode == Mode::Full));
  pm.add(make_lower_pass(mode == Mode::Base));
  pm.add(make_addr_strategy_pass());
  if (opts.validate) pm.add(make_verify_pass(opts.native_check));
  return pm;
}

PassManager build_pipeline(Mode mode) {
  return build_pipeline(mode, CompileOptions::from_env());
}

PassManager build_lowering_pipeline(Mode mode, const CompileOptions& opts) {
  PassManager pm;
  pm.add(make_layout_pass(mode == Mode::Full));
  pm.add(make_lower_pass(mode == Mode::Base));
  pm.add(make_addr_strategy_pass());
  if (opts.validate) pm.add(make_verify_pass(opts.native_check));
  return pm;
}

PassManager build_lowering_pipeline(Mode mode) {
  return build_lowering_pipeline(mode, CompileOptions::from_env());
}

}  // namespace dct::core
