#include "decomp/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::decomp {

using dep::ParallelizedNest;
using ir::ArrayRef;
using ir::LoopNest;
using ir::Program;
using linalg::Vec;

std::string to_string(DistKind kind) {
  switch (kind) {
    case DistKind::Serial: return "*";
    case DistKind::Block: return "BLOCK";
    case DistKind::Cyclic: return "CYCLIC";
    case DistKind::BlockCyclic: return "BLOCK-CYCLIC";
  }
  return "?";
}

int ArrayDecomposition::distributed_count() const {
  int n = 0;
  for (const auto& d : dims)
    if (d.kind != DistKind::Serial) ++n;
  return n;
}

std::string ArrayDecomposition::hpf_string() const {
  if (replicated) return "(replicated)";
  std::vector<std::string> parts;
  for (const auto& d : dims) parts.push_back(to_string(d.kind));
  return "(" + join(parts, ", ") + ")";
}

std::vector<int> factor_grid(int p, int dims) {
  std::vector<int> grid(static_cast<size_t>(std::max(dims, 1)), 1);
  if (dims <= 1) {
    grid[0] = p;
    return grid;
  }
  int best = 1;
  for (int f = 1; f * f <= p; ++f)
    if (p % f == 0) best = f;
  grid[0] = p / best;
  grid[1] = best;
  return grid;
}

std::vector<int> ProgramDecomposition::grid_extents(int procs) const {
  std::vector<int> out(static_cast<size_t>(num_proc_dims), procs);
  for (int i = 0; i < num_proc_dims; ++i) {
    const auto grid = factor_grid(procs, clique_size[static_cast<size_t>(i)]);
    out[static_cast<size_t>(i)] =
        grid[static_cast<size_t>(clique_pos[static_cast<size_t>(i)])];
  }
  return out;
}

namespace {

constexpr int kConst = -1;    ///< dimension subscript is a constant
constexpr int kComplex = -2;  ///< subscript not a single unit loop variable

/// Classify one subscript row: the single loop variable indexing it (with
/// coefficient ±1), kConst, or kComplex.
int classify_row(const linalg::IntMatrix& access, int row) {
  int loop = kConst;
  for (int c = 0; c < access.cols(); ++c) {
    const Int v = access.at(row, c);
    if (v == 0) continue;
    if (loop != kConst) return kComplex;  // two loop variables
    if (v != 1 && v != -1) return kComplex;
    loop = c;
  }
  return loop;
}

struct RefInfo {
  int array = -1;
  bool is_write = false;
  std::vector<int> dim_loop;    ///< per array dim: loop / kConst / kComplex
  std::vector<Int> dim_offset;  ///< per array dim subscript offset
  double elems = 0;             ///< distinct elements touched x frequency
};

struct StmtInfo {
  std::vector<RefInfo> refs;  ///< write (if any) first
  int write_index = -1;       ///< index of the write in refs, or -1
  double exec = 0;            ///< dynamic executions x frequency
};

struct NestInfo {
  std::vector<StmtInfo> stmts;
  std::vector<double> span;  ///< hull span per loop (>= 1)
  double iters = 1;          ///< approximate iteration count
};

NestInfo gather_nest_info(const ParallelizedNest& par, long frequency) {
  NestInfo info;
  const dep::Hull hull = dep::iteration_hull(par.nest);
  const int d = par.nest.depth();
  info.span.resize(static_cast<size_t>(d), 1.0);
  info.iters = 1.0;
  for (int k = 0; k < d; ++k) {
    const double s =
        hull.empty ? 0.0
                   : static_cast<double>(hull.hi[static_cast<size_t>(k)] -
                                         hull.lo[static_cast<size_t>(k)] + 1);
    info.span[static_cast<size_t>(k)] = std::max(1.0, s);
    info.iters *= info.span[static_cast<size_t>(k)];
  }

  for (const ir::Stmt& s : par.nest.stmts) {
    StmtInfo si;
    const int sd = s.effective_depth(d);
    si.exec = static_cast<double>(frequency);
    for (int k = 0; k < sd; ++k) si.exec *= info.span[static_cast<size_t>(k)];

    auto make_ref = [&](const ArrayRef& r, bool is_write) {
      RefInfo ri;
      ri.array = r.array;
      ri.is_write = is_write;
      ri.dim_loop.resize(static_cast<size_t>(r.access.rows()));
      ri.dim_offset = r.offset;
      std::vector<bool> varying(static_cast<size_t>(d), false);
      for (int row = 0; row < r.access.rows(); ++row) {
        ri.dim_loop[static_cast<size_t>(row)] = classify_row(r.access, row);
        for (int c = 0; c < r.access.cols(); ++c)
          if (r.access.at(row, c) != 0) varying[static_cast<size_t>(c)] = true;
      }
      ri.elems = static_cast<double>(frequency);
      for (int k = 0; k < d; ++k)
        if (varying[static_cast<size_t>(k)])
          ri.elems *= info.span[static_cast<size_t>(k)];
      return ri;
    };
    if (s.write) {
      si.refs.push_back(make_ref(*s.write, true));
      si.write_index = 0;
    }
    for (const ArrayRef& r : s.reads) si.refs.push_back(make_ref(r, false));
    info.stmts.push_back(std::move(si));
  }
  return info;
}

/// Union-find over (array, dim) nodes, refusing unions that would place
/// two dimensions of the same array in one group (each array dimension
/// maps to a distinct virtual processor dimension).
class AlignmentGroups {
 public:
  explicit AlignmentGroups(const Program& prog) {
    base_.push_back(0);
    for (const auto& a : prog.arrays)
      base_.push_back(base_.back() + static_cast<int>(a.dims.size()));
    parent_.resize(static_cast<size_t>(base_.back()));
    std::iota(parent_.begin(), parent_.end(), 0);
    arrays_.resize(parent_.size());
    for (int n = 0; n < base_.back(); ++n)
      arrays_[static_cast<size_t>(n)] = {array_of(n)};
  }

  int node_id(int array, int dim) const {
    return base_[static_cast<size_t>(array)] + dim;
  }
  int array_of(int node) const {
    int a = 0;
    while (base_[static_cast<size_t>(a) + 1] <= node) ++a;
    return a;
  }
  int dim_of(int node) const {
    return node - base_[static_cast<size_t>(array_of(node))];
  }
  int find(int x) {
    while (parent_[static_cast<size_t>(x)] != x)
      x = parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
    return x;
  }
  bool unite(int a, int b) {
    const int ra = find(a), rb = find(b);
    if (ra == rb) return true;
    std::vector<int> common;
    std::set_intersection(arrays_[static_cast<size_t>(ra)].begin(),
                          arrays_[static_cast<size_t>(ra)].end(),
                          arrays_[static_cast<size_t>(rb)].begin(),
                          arrays_[static_cast<size_t>(rb)].end(),
                          std::back_inserter(common));
    if (!common.empty()) return false;
    parent_[static_cast<size_t>(ra)] = rb;
    arrays_[static_cast<size_t>(rb)].insert(
        arrays_[static_cast<size_t>(ra)].begin(),
        arrays_[static_cast<size_t>(ra)].end());
    return true;
  }
  int num_nodes() const { return base_.back(); }

 private:
  std::vector<int> base_;
  std::vector<int> parent_;
  std::vector<std::set<int>> arrays_;
};

/// Evaluation of one nest under one candidate view (subset of active
/// groups the nest's computation actually follows).
struct NestEval {
  std::vector<int> honored;            ///< group ids driving this nest
  std::vector<int> honored_loop;       ///< driving loop per honored group
  std::vector<LoopSched> honored_sched;
  std::vector<std::map<int, int>> stmt_loops;  ///< per stmt: group -> loop
  double comm = 0;
  double boundary = 0;
  double parallelism = 1;
  double score = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// The decomposition algorithm
// ---------------------------------------------------------------------------

ProgramDecomposition decompose(const Program& prog, const DecompOptions& opts) {
  std::vector<ParallelizedNest> par;
  for (const LoopNest& nest : prog.nests) par.push_back(dep::parallelize(nest));
  ProgramDecomposition out = decompose_from(std::move(par), prog, opts);
  select_folds(prog, out, opts);
  eliminate_barriers(out);
  return out;
}

ProgramDecomposition decompose_from(std::vector<ParallelizedNest> par,
                                    const Program& prog,
                                    const DecompOptions& opts,
                                    support::RemarkSink* rs) {
  ProgramDecomposition out;
  const int nnests = static_cast<int>(prog.nests.size());
  out.par = std::move(par);
  DCT_CHECK(static_cast<int>(out.par.size()) == nnests,
            "one parallelized nest required per program nest");

  std::vector<NestInfo> info;
  for (int j = 0; j < nnests; ++j)
    info.push_back(
        gather_nest_info(out.par[static_cast<size_t>(j)],
                         prog.nests[static_cast<size_t>(j)].frequency));

  AlignmentGroups ag(prog);
  const int nnodes = ag.num_nodes();

  // Read-only arrays are replicated (paper: "Read-only and seldom-written
  // data can be replicated"); they take no part in alignment.
  std::vector<bool> written(prog.arrays.size(), false);
  for (const auto& ni : info)
    for (const StmtInfo& si : ni.stmts)
      for (const RefInfo& r : si.refs)
        if (r.is_write) written[static_cast<size_t>(r.array)] = true;

  // Nodes with complex subscripts anywhere cannot be distributed under the
  // single-dimension restriction (paper 4.2).
  std::vector<bool> poisoned(static_cast<size_t>(nnodes), false);
  for (const auto& ni : info)
    for (const StmtInfo& si : ni.stmts)
      for (const RefInfo& r : si.refs)
        for (size_t k = 0; k < r.dim_loop.size(); ++k)
          if (r.dim_loop[k] == kComplex)
            poisoned[static_cast<size_t>(
                ag.node_id(r.array, static_cast<int>(k)))] = true;

  // Alignment: in each nest, dimensions indexed by the same loop are
  // aligned when a write participates (owner-computes locality) or the
  // reads belong to different arrays. Same-array read-read pairs (the LU
  // pivot A(k,k)) represent broadcast traffic, not alignment.
  for (int j = 0; j < nnests; ++j) {
    const int d = out.par[static_cast<size_t>(j)].nest.depth();
    for (int l = 0; l < d; ++l) {
      std::vector<std::pair<int, bool>> on_loop;  // (node, is_write)
      for (const StmtInfo& si : info[static_cast<size_t>(j)].stmts)
        for (const RefInfo& r : si.refs) {
          if (!written[static_cast<size_t>(r.array)]) continue;
          for (size_t k = 0; k < r.dim_loop.size(); ++k)
            if (r.dim_loop[k] == l)
              on_loop.push_back(
                  {ag.node_id(r.array, static_cast<int>(k)), r.is_write});
        }
      for (size_t a = 0; a < on_loop.size(); ++a)
        for (size_t b = a + 1; b < on_loop.size(); ++b) {
          const bool any_write = on_loop[a].second || on_loop[b].second;
          const bool same_array = ag.array_of(on_loop[a].first) ==
                                  ag.array_of(on_loop[b].first);
          if (any_write || !same_array)
            ag.unite(on_loop[a].first, on_loop[b].first);
        }
    }
  }

  // Candidate groups: roots of distributable nodes of written arrays.
  std::vector<int> group_of(static_cast<size_t>(nnodes), -1);
  std::vector<int> groups;  // representative node per group
  for (int n = 0; n < nnodes; ++n) {
    if (!written[static_cast<size_t>(ag.array_of(n))]) continue;
    const int root = ag.find(n);
    if (poisoned[static_cast<size_t>(n)] || poisoned[static_cast<size_t>(root)])
      continue;
    auto it = std::find(groups.begin(), groups.end(), root);
    if (it == groups.end()) {
      groups.push_back(root);
      group_of[static_cast<size_t>(n)] = static_cast<int>(groups.size()) - 1;
    } else {
      group_of[static_cast<size_t>(n)] = static_cast<int>(it - groups.begin());
    }
  }
  const int ngroups = static_cast<int>(groups.size());

  // For tie-breaks: FORTRAN column-major locality prefers distributing
  // higher (slower-varying) dimensions.
  auto group_dim_sum = [&](int g) {
    int sum = 0;
    for (int n = 0; n < nnodes; ++n)
      if (group_of[static_cast<size_t>(n)] == g) sum += ag.dim_of(n);
    return sum;
  };

  // --- per-nest evaluation under an active-group set S ---
  //
  // The nest picks the "view" (subset of S it follows, one loop per group,
  // at most max_proc_dims groups) minimizing its own cost; S-groups it
  // does not follow but whose arrays it writes cost communication.
  auto evaluate_nest = [&](int j, const std::vector<bool>& active) {
    const ParallelizedNest& par = out.par[static_cast<size_t>(j)];
    const NestInfo& ni = info[static_cast<size_t>(j)];
    const double work =
        ni.iters *
        static_cast<double>(prog.nests[static_cast<size_t>(j)].frequency);

    // Which active groups can this nest drive, and by which loop?
    struct Drivable {
      int group;
      int loop;
      LoopSched sched;
      double grid1_par;  ///< parallel factor if sole driver
    };
    std::vector<Drivable> drivable;
    std::vector<std::map<int, int>> stmt_loops(ni.stmts.size());
    for (int g = 0; g < ngroups; ++g) {
      if (!active[static_cast<size_t>(g)]) continue;
      double dominant_exec = -1;
      int dominant_loop = -1;
      for (size_t s = 0; s < ni.stmts.size(); ++s) {
        const StmtInfo& si = ni.stmts[s];
        if (si.write_index < 0) continue;
        const RefInfo& w = si.refs[static_cast<size_t>(si.write_index)];
        for (size_t k = 0; k < w.dim_loop.size(); ++k)
          if (group_of[static_cast<size_t>(
                  ag.node_id(w.array, static_cast<int>(k)))] == g &&
              w.dim_loop[k] >= 0) {
            stmt_loops[s][g] = w.dim_loop[k];
            if (si.exec > dominant_exec) {
              dominant_exec = si.exec;
              dominant_loop = w.dim_loop[k];
            }
          }
      }
      if (dominant_loop < 0) continue;
      Drivable dr;
      dr.group = g;
      dr.loop = dominant_loop;
      if (par.parallel[static_cast<size_t>(dominant_loop)])
        dr.sched = LoopSched::Distributed;
      else if (par.deps.pipelinable(dominant_loop))
        dr.sched = LoopSched::Pipelined;
      else
        dr.sched = LoopSched::Sequential;
      drivable.push_back(dr);
    }

    // Communication/boundary of a given honored set. Offsets along a
    // pipelined dimension are not charged as boundary traffic — the
    // pipeline efficiency factor already models that flow.
    auto charge = [&](const std::vector<int>& honored,
                      const std::vector<int>& honored_loops,
                      const std::vector<LoopSched>& honored_scheds,
                      double grid_each, double& comm, double& boundary) {
      for (size_t s = 0; s < ni.stmts.size(); ++s) {
        const StmtInfo& si = ni.stmts[s];
        for (const RefInfo& r : si.refs) {
          for (size_t k = 0; k < r.dim_loop.size(); ++k) {
            const int g = group_of[static_cast<size_t>(
                ag.node_id(r.array, static_cast<int>(k)))];
            if (g < 0 || !active[static_cast<size_t>(g)]) continue;
            const auto it =
                std::find(honored.begin(), honored.end(), g);
            if (it == honored.end()) {
              // Array dimension distributed but computation not aligned.
              comm += (r.is_write ? 1.0 : 0.5) * r.elems;
              continue;
            }
            const int owner_loop = [&] {
              const auto sit = stmt_loops[s].find(g);
              if (sit != stmt_loops[s].end()) return sit->second;
              return honored_loops[static_cast<size_t>(it - honored.begin())];
            }();
            const int l = r.dim_loop[k];
            if (l >= 0 && l != owner_loop) {
              comm += r.elems;
            } else if (l == owner_loop && r.dim_offset[k] != 0 &&
                       honored_scheds[static_cast<size_t>(it -
                                                          honored.begin())] !=
                           LoopSched::Pipelined) {
              boundary += r.elems / ni.span[static_cast<size_t>(l)] *
                          grid_each;
            } else if (l == kConst && r.is_write) {
              comm += r.elems;
            }
          }
        }
      }
    };

    // Enumerate views of size 0, 1 and 2.
    NestEval best;
    best.comm = 0;
    best.boundary = 0;
    charge({}, {}, {}, 1.0, best.comm, best.boundary);
    best.stmt_loops = stmt_loops;
    best.score = work + 16.0 * best.comm + 4.0 * best.boundary;

    auto consider = [&](const std::vector<const Drivable*>& view) {
      // Distinct driving loops required.
      if (view.size() == 2 && view[0]->loop == view[1]->loop) return;
      const auto grid = factor_grid(opts.procs, static_cast<int>(view.size()));
      double par_factor = 1;
      for (size_t i = 0; i < view.size(); ++i) {
        const double extent = static_cast<double>(grid[i]);
        if (view[i]->sched == LoopSched::Distributed)
          par_factor *= extent;
        else if (view[i]->sched == LoopSched::Pipelined)
          par_factor *= 0.25 * extent;
      }
      NestEval ev;
      std::vector<int> honored, honored_loops;
      for (const Drivable* dr : view) {
        honored.push_back(dr->group);
        honored_loops.push_back(dr->loop);
        ev.honored_sched.push_back(dr->sched);
      }
      charge(honored, honored_loops, ev.honored_sched,
             static_cast<double>(grid[0]) / (view.size() == 2 ? 2.0 : 1.0),
             ev.comm, ev.boundary);
      ev.honored = honored;
      ev.honored_loop = honored_loops;
      ev.stmt_loops = stmt_loops;
      ev.parallelism = par_factor;
      // Communication and boundary traffic are also spread across the
      // machine; everything is charged in per-processor time.
      ev.score = (work + 16.0 * ev.comm + 4.0 * ev.boundary) /
                 std::max(1.0, par_factor);
      // Strict improvement, with a column-major tie-break.
      const bool tie =
          std::abs(ev.score - best.score) <=
          1e-6 * std::max(std::abs(ev.score), std::abs(best.score));
      int ev_dims = 0, best_dims = 0;
      for (int g : ev.honored) ev_dims += group_dim_sum(g);
      for (int g : best.honored) best_dims += group_dim_sum(g);
      if ((!tie && ev.score < best.score) || (tie && ev_dims > best_dims))
        best = std::move(ev);
    };
    for (const Drivable& a : drivable) consider({&a});
    if (opts.max_proc_dims >= 2)
      for (const Drivable& a : drivable)
        for (const Drivable& b : drivable)
          if (a.group != b.group) consider({&a, &b});
    return best;
  };

  auto score_state = [&](const std::vector<bool>& active) {
    double total = 0;
    for (int j = 0; j < nnests; ++j) total += evaluate_nest(j, active).score;
    return total;
  };

  // --- hill-climbing group selection (the paper's greedy, revisited as
  // local search: start from "all serial" and activate/deactivate groups
  // while the global cost estimate improves) ---
  std::vector<bool> active(static_cast<size_t>(ngroups), false);
  double cur = score_state(active);
  if (opts.debug) {
    fprintf(stderr, "[decomp] %s: %d groups, base score %.3g\n",
            prog.name.c_str(), ngroups, cur);
    for (int g = 0; g < ngroups; ++g) {
      std::vector<bool> t(static_cast<size_t>(ngroups), false);
      t[static_cast<size_t>(g)] = true;
      fprintf(stderr, "[decomp]   group %d (node %d, arr %d dim %d): %.3g\n",
              g, groups[static_cast<size_t>(g)],
              ag.array_of(groups[static_cast<size_t>(g)]),
              ag.dim_of(groups[static_cast<size_t>(g)]), score_state(t));
    }
  }
  bool improved = true;
  while (improved) {
    improved = false;
    int best_flip = -1;
    double best_sc = cur;
    int best_dim_sum = -1;
    for (int g = 0; g < ngroups; ++g) {
      std::vector<bool> trial = active;
      trial[static_cast<size_t>(g)] = !trial[static_cast<size_t>(g)];
      const double sc = score_state(trial);
      const bool tie = std::abs(sc - best_sc) <=
                       1e-6 * std::max(std::abs(sc), std::abs(best_sc));
      if ((!tie && sc < best_sc) ||
          (tie && best_flip >= 0 && group_dim_sum(g) > best_dim_sum)) {
        best_sc = sc;
        best_flip = g;
        best_dim_sum = group_dim_sum(g);
      }
    }
    if (best_flip >= 0 && best_sc < cur * (1.0 - 1e-9)) {
      active[static_cast<size_t>(best_flip)] =
          !active[static_cast<size_t>(best_flip)];
      cur = best_sc;
      improved = true;
    }
  }

  // --- build the final decomposition ---
  std::vector<NestEval> evals;
  for (int j = 0; j < nnests; ++j) evals.push_back(evaluate_nest(j, active));

  // Virtual processor dimensions: one per active group actually honored by
  // some nest.
  std::vector<int> dim_of_group(static_cast<size_t>(ngroups), -1);
  for (const NestEval& ev : evals)
    for (int g : ev.honored)
      if (dim_of_group[static_cast<size_t>(g)] < 0) {
        dim_of_group[static_cast<size_t>(g)] = out.num_proc_dims++;
      }

  // Co-activity cliques for grid folding.
  out.clique_size.assign(static_cast<size_t>(out.num_proc_dims), 1);
  out.clique_pos.assign(static_cast<size_t>(out.num_proc_dims), 0);
  out.clique_id.resize(static_cast<size_t>(out.num_proc_dims));
  std::iota(out.clique_id.begin(), out.clique_id.end(), 0);
  for (const NestEval& ev : evals) {
    if (ev.honored.size() < 2) continue;
    std::vector<int> dims;
    for (int g : ev.honored) dims.push_back(dim_of_group[static_cast<size_t>(g)]);
    std::sort(dims.begin(), dims.end());
    for (size_t i = 0; i < dims.size(); ++i) {
      auto& sz = out.clique_size[static_cast<size_t>(dims[i])];
      sz = std::max(sz, static_cast<int>(dims.size()));
      out.clique_pos[static_cast<size_t>(dims[i])] =
          std::max(out.clique_pos[static_cast<size_t>(dims[i])],
                   static_cast<int>(i));
      out.clique_id[static_cast<size_t>(dims[i])] =
          out.clique_id[static_cast<size_t>(dims[0])];
    }
  }

  out.nests.resize(static_cast<size_t>(nnests));
  for (int j = 0; j < nnests; ++j) {
    const NestEval& ev = evals[static_cast<size_t>(j)];
    const ParallelizedNest& nestpar = out.par[static_cast<size_t>(j)];
    NestDecomposition& nd = out.nests[static_cast<size_t>(j)];
    nd.loops.assign(static_cast<size_t>(nestpar.nest.depth()),
                    LoopAssignment{});
    nd.comm_free = ev.comm == 0;
    nd.boundary_free = ev.boundary == 0;
    nd.stmts.assign(nestpar.nest.stmts.size(), StmtMapping{});
    for (size_t s = 0; s < nd.stmts.size(); ++s) {
      nd.stmts[s].loop_for_dim.assign(
          static_cast<size_t>(out.num_proc_dims), -1);
      for (const auto& [g, loop] : ev.stmt_loops[s]) {
        const int pd = dim_of_group[static_cast<size_t>(g)];
        if (pd >= 0) nd.stmts[s].loop_for_dim[static_cast<size_t>(pd)] = loop;
      }
    }
    for (size_t i = 0; i < ev.honored.size(); ++i) {
      const int g = ev.honored[i];
      const int l = ev.honored_loop[i];
      const int pd = dim_of_group[static_cast<size_t>(g)];
      LoopAssignment& la = nd.loops[static_cast<size_t>(l)];
      la.proc_dim = pd;
      la.sched = ev.honored_sched[i];
      // Load-balance fact for folding-function selection: bounds of the
      // distributed loop varying with outer loops, or inner bounds varying
      // with it, mean triangular work.
      bool varying = false;
      const ir::Loop& lp = nestpar.nest.loops[static_cast<size_t>(l)];
      auto has_coeffs = [](const ir::Bound& b) {
        return std::any_of(b.expr.coeffs.begin(), b.expr.coeffs.end(),
                           [](Int c) { return c != 0; });
      };
      for (const ir::Bound& b : lp.lowers) varying |= has_coeffs(b);
      for (const ir::Bound& b : lp.uppers) varying |= has_coeffs(b);
      for (int k2 = l + 1; k2 < nestpar.nest.depth(); ++k2) {
        const ir::Loop& lp2 = nestpar.nest.loops[static_cast<size_t>(k2)];
        auto dep_on_l = [&](const ir::Bound& b) {
          return static_cast<int>(b.expr.coeffs.size()) > l &&
                 b.expr.coeffs[static_cast<size_t>(l)] != 0;
        };
        for (const ir::Bound& b : lp2.lowers) varying |= dep_on_l(b);
        for (const ir::Bound& b : lp2.uppers) varying |= dep_on_l(b);
      }
      la.imbalanced = varying;
    }
    if (rs != nullptr) {
      support::ScopedSink nest_rs(rs, j, prog.nests[static_cast<size_t>(j)].name);
      std::vector<std::string> scheds;
      for (size_t l = 0; l < nd.loops.size(); ++l)
        if (nd.loops[l].proc_dim >= 0)
          scheds.push_back(strf(
              "loop %d %s p%d%s", static_cast<int>(l),
              nd.loops[l].sched == LoopSched::Distributed ? "DOALL" : "PIPE",
              nd.loops[l].proc_dim, nd.loops[l].imbalanced ? " imbalanced" : ""));
      nest_rs.note(strf(
          "%s%s%s",
          scheds.empty() ? "serial (no group honored)" : join(scheds, ", ").c_str(),
          nd.comm_free ? ", comm-free" : ", +comm",
          nd.boundary_free ? "" : ", boundary reads"));
      if (!nd.comm_free) nest_rs.count("nests_with_comm");
    }
  }

  // Array decompositions. Every distributed dimension starts BLOCK; the
  // folding-function selection stage may upgrade it.
  out.arrays.resize(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    ArrayDecomposition& ad = out.arrays[a];
    ad.dims.assign(prog.arrays[a].dims.size(), DimDistribution{});
    if (!written[a]) {
      ad.replicated = true;
      if (rs != nullptr) {
        support::ScopedSink arr_rs(rs, -1, {}, static_cast<int>(a),
                                   prog.arrays[a].name);
        arr_rs.note("read-only: replicated on every cluster");
        arr_rs.count("arrays_replicated");
      }
      continue;
    }
    for (size_t k = 0; k < ad.dims.size(); ++k) {
      const int g = group_of[static_cast<size_t>(
          ag.node_id(static_cast<int>(a), static_cast<int>(k)))];
      if (g < 0 || !active[static_cast<size_t>(g)]) continue;
      const int pd = dim_of_group[static_cast<size_t>(g)];
      if (pd < 0) continue;
      ad.dims[k].kind = DistKind::Block;
      ad.dims[k].proc_dim = pd;
    }
  }
  if (rs != nullptr) {
    rs->count("alignment_groups", ngroups);
    rs->count("active_groups",
              std::count(active.begin(), active.end(), true));
    rs->count("proc_dims", out.num_proc_dims);
  }
  return out;
}

void select_folds(const Program& prog, ProgramDecomposition& d,
                  const DecompOptions& opts, support::RemarkSink* rs) {
  // CYCLIC wins over BLOCK-CYCLIC wins over BLOCK, across every nest that
  // drives the dimension (order-independent).
  std::vector<DistKind> fold(static_cast<size_t>(d.num_proc_dims),
                             DistKind::Block);
  for (const NestDecomposition& nd : d.nests)
    for (const LoopAssignment& la : nd.loops) {
      if (la.proc_dim < 0 || !la.imbalanced) continue;
      DistKind& f = fold[static_cast<size_t>(la.proc_dim)];
      if (la.sched == LoopSched::Distributed)
        f = DistKind::Cyclic;
      else if (la.sched == LoopSched::Pipelined && f == DistKind::Block)
        f = DistKind::BlockCyclic;
    }

  for (size_t a = 0; a < d.arrays.size(); ++a) {
    ArrayDecomposition& ad = d.arrays[a];
    bool changed = false;
    for (DimDistribution& dd : ad.dims) {
      if (dd.kind == DistKind::Serial || dd.proc_dim < 0) continue;
      const DistKind kind = fold[static_cast<size_t>(dd.proc_dim)];
      changed |= kind != dd.kind;
      dd.kind = kind;
      dd.block = kind == DistKind::BlockCyclic ? opts.block_cyclic_block : 0;
    }
    if (rs != nullptr && ad.distributed_count() > 0) {
      support::ScopedSink arr_rs(rs, -1, {}, static_cast<int>(a),
                                 a < prog.arrays.size() ? prog.arrays[a].name
                                                        : std::string());
      arr_rs.note("DISTRIBUTE" + ad.hpf_string());
      if (changed) arr_rs.count("arrays_refolded");
    }
  }
  if (rs != nullptr)
    for (int pd = 0; pd < d.num_proc_dims; ++pd)
      rs->count("fold_" + to_string(fold[static_cast<size_t>(pd)]));
}

void eliminate_barriers(ProgramDecomposition& d, support::RemarkSink* rs) {
  const int nnests = static_cast<int>(d.nests.size());
  // Pure doall schedule honoring at least one group.
  const auto all_doall = [](const NestDecomposition& nd) {
    bool any = false;
    for (const LoopAssignment& la : nd.loops) {
      if (la.proc_dim < 0) continue;
      if (la.sched != LoopSched::Distributed) return false;
      any = true;
    }
    return any;
  };
  for (int j = 0; j < nnests && nnests > 1; ++j) {
    const int next = (j + 1) % nnests;
    const NestDecomposition& a = d.nests[static_cast<size_t>(j)];
    const NestDecomposition& b = d.nests[static_cast<size_t>(next)];
    // Both directions must be free of cross-processor data flow: b's
    // boundary reads could consume data a wrote (flow), and a's boundary
    // reads consume other owners' data that b may overwrite (anti). The
    // simulator's timing model tolerates a missing barrier either way;
    // real threads do not.
    if (a.comm_free && b.comm_free && a.boundary_free && b.boundary_free &&
        all_doall(a) && all_doall(b)) {
      d.nests[static_cast<size_t>(j)].barrier_after = false;
      if (rs != nullptr) {
        support::ScopedSink nest_rs(rs, j, {});
        nest_rs.note(strf("barrier after nest %d eliminated [Tseng 95]", j));
        nest_rs.count("barriers_eliminated");
      }
    }
  }
}

ProgramDecomposition decompose_base(const Program& prog,
                                    const DecompOptions& opts) {
  std::vector<ParallelizedNest> par;
  for (const LoopNest& nest : prog.nests) par.push_back(dep::parallelize(nest));
  return decompose_base_from(std::move(par), prog, opts);
}

ProgramDecomposition decompose_base_from(std::vector<ParallelizedNest> par,
                                         const Program& prog,
                                         const DecompOptions& opts,
                                         support::RemarkSink* rs) {
  (void)opts;
  ProgramDecomposition out;
  out.par = std::move(par);
  DCT_CHECK(out.par.size() == prog.nests.size(),
            "one parallelized nest required per program nest");
  out.num_proc_dims = 1;
  out.clique_size = {1};
  out.clique_id = {0};
  out.clique_pos = {0};
  out.nests.resize(prog.nests.size());
  out.arrays.resize(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a)
    out.arrays[a].dims.assign(prog.arrays[a].dims.size(), DimDistribution{});
  for (size_t j = 0; j < prog.nests.size(); ++j) {
    const ParallelizedNest& par = out.par[j];
    NestDecomposition& nd = out.nests[j];
    nd.loops.assign(static_cast<size_t>(par.nest.depth()), LoopAssignment{});
    nd.stmts.assign(par.nest.stmts.size(), StmtMapping{{-1}});
    nd.comm_free = false;
    nd.barrier_after = true;
    for (int l = 0; l < par.nest.depth(); ++l)
      if (par.parallel[static_cast<size_t>(l)]) {
        nd.loops[static_cast<size_t>(l)] =
            LoopAssignment{LoopSched::Distributed, 0};
        if (rs != nullptr) {
          support::ScopedSink nest_rs(rs, static_cast<int>(j),
                                      prog.nests[j].name);
          nest_rs.note(strf("outermost parallel loop %d block-distributed", l));
          nest_rs.count("distributed_nests");
        }
        break;  // BASE: only the outermost parallel loop
      }
  }
  return out;
}

linalg::Vec computation_coords(const ProgramDecomposition& d, int nest,
                               std::span<const Int> iter) {
  Vec coords(static_cast<size_t>(d.num_proc_dims), -1);
  const NestDecomposition& nd = d.nests[static_cast<size_t>(nest)];
  for (size_t l = 0; l < nd.loops.size(); ++l) {
    const LoopAssignment& la = nd.loops[l];
    if (la.proc_dim >= 0 && la.proc_dim < d.num_proc_dims)
      coords[static_cast<size_t>(la.proc_dim)] = iter[l];
  }
  return coords;
}

std::optional<linalg::Vec> data_coords(const ProgramDecomposition& d,
                                       int array,
                                       std::span<const Int> index) {
  const ArrayDecomposition& ad = d.arrays[static_cast<size_t>(array)];
  if (ad.replicated) return std::nullopt;
  if (ad.distributed_count() == 0) return std::nullopt;
  Vec coords(static_cast<size_t>(d.num_proc_dims), -1);
  for (size_t k = 0; k < ad.dims.size(); ++k)
    if (ad.dims[k].proc_dim >= 0)
      coords[static_cast<size_t>(ad.dims[k].proc_dim)] = index[k];
  return coords;
}

std::string ProgramDecomposition::to_string(const Program& prog) const {
  std::ostringstream os;
  os << "decomposition of " << prog.name << " (rank " << num_proc_dims
     << ")\n";
  for (size_t a = 0; a < prog.arrays.size(); ++a)
    os << "  " << prog.arrays[a].name << " DISTRIBUTE"
       << arrays[a].hpf_string() << "\n";
  for (size_t j = 0; j < nests.size(); ++j) {
    os << "  nest " << prog.nests[j].name << ":";
    for (size_t l = 0; l < nests[j].loops.size(); ++l) {
      const LoopAssignment& la = nests[j].loops[l];
      os << " "
         << (la.sched == LoopSched::Distributed  ? "DOALL"
             : la.sched == LoopSched::Pipelined  ? "PIPE"
             : la.proc_dim >= 0                  ? "OWNER"
                                                 : "seq");
      if (la.proc_dim >= 0) os << "[p" << la.proc_dim << "]";
    }
    os << (nests[j].comm_free ? " comm-free" : " +comm")
       << (nests[j].barrier_after ? "" : " no-barrier") << "\n";
  }
  return os.str();
}

}  // namespace dct::decomp
