// Computation and data decomposition (paper Section 3).
//
// Finds affine mappings of loop iterations (computation decomposition G_j)
// and array elements (data decomposition D_x) onto a virtual processor
// space such that the no-communication condition (Equation 1)
//
//     for every reference F_jx in nest j:  D_x(F_jx(i)) = G_j(i)
//
// holds for as much of the program as possible, maximizing the degree of
// parallelism (rank of the mappings). Following the paper's implementation
// restriction, a single array dimension maps to one virtual processor
// dimension; decompositions are therefore expressible in HPF notation
// (DISTRIBUTE(BLOCK, *) etc.) and that is how we report them.
//
// The algorithm:
//   1. Unimodular preprocessing per nest (dep::parallelize).
//   2. Alignment grouping of (array, dimension) nodes that should share a
//      virtual processor dimension (via common indexing loops).
//   3. Greedy/enumerative selection of which groups to distribute,
//      weighted by execution frequency: communication (references that
//      cannot satisfy Eq. 1) is pushed to the least-executed code, exactly
//      as the paper's greedy does. Read-only arrays are replicated.
//   4. Folding-function selection per virtual dimension: BLOCK by
//      default, CYCLIC when work per iteration grows/shrinks with the
//      iteration number (load balance, e.g. LU), BLOCK-CYCLIC when
//      pipelining needs both balance and granularity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dep/parallelize.hpp"
#include "ir/program.hpp"
#include "support/remark.hpp"

namespace dct::decomp {

using linalg::Int;

enum class DistKind { Serial, Block, Cyclic, BlockCyclic };
std::string to_string(DistKind kind);

/// Distribution of one array dimension.
struct DimDistribution {
  DistKind kind = DistKind::Serial;
  int proc_dim = -1;  ///< virtual processor dimension, -1 when Serial
  Int block = 0;      ///< block size for BlockCyclic
};

/// Data decomposition D_x of one array.
struct ArrayDecomposition {
  std::vector<DimDistribution> dims;
  bool replicated = false;  ///< read-only data replicated on every cluster

  int distributed_count() const;
  /// HPF-style rendering, e.g. "(*, CYCLIC)".
  std::string hpf_string() const;
};

enum class LoopSched {
  Sequential,   ///< executed (redundantly or by the owner) in order
  Distributed,  ///< DOALL split across a processor-grid dimension
  Pipelined     ///< doacross with point-to-point synchronization
};

struct LoopAssignment {
  LoopSched sched = LoopSched::Sequential;
  int proc_dim = -1;
  /// Work along this loop is triangular (its bounds vary with outer loops
  /// or inner bounds vary with it) — the fact folding-function selection
  /// acts on (BLOCK would load-imbalance).
  bool imbalanced = false;
};

/// Owner-computes mapping of one statement: for each virtual processor
/// dimension, the loop whose value gives the owner coordinate (-1 when the
/// statement does not constrain that dimension — it then inherits the
/// nest-level mapping). Imperfect nests (LU's divide) give different
/// statements of one nest different owners.
struct StmtMapping {
  std::vector<int> loop_for_dim;
};

/// Computation decomposition G_j of one (transformed) nest.
struct NestDecomposition {
  /// Nest-level schedule, from the dominant (most-executed) statement.
  std::vector<LoopAssignment> loops;
  std::vector<StmtMapping> stmts;  ///< per-statement owner mappings
  bool comm_free = true;  ///< Eq. 1 satisfied for all major references
  /// No nearest-neighbour boundary reads under the honored mapping (those
  /// cross owners even when Eq. 1 holds for the owner loop).
  bool boundary_free = true;
  /// Synchronization optimization [Tseng 95]: the barrier after this nest
  /// can be dropped when the next nest's decomposition matches.
  bool barrier_after = true;
};

struct ProgramDecomposition {
  std::vector<dep::ParallelizedNest> par;  ///< transformed nests
  std::vector<NestDecomposition> nests;
  std::vector<ArrayDecomposition> arrays;
  int num_proc_dims = 0;  ///< number of virtual processor dimensions

  /// Grid folding data: virtual dimensions used *simultaneously* by some
  /// nest must split the physical processors among themselves; dimensions
  /// never co-active each get the full machine. For dimension i,
  /// `clique_size[i]` is the size of its co-activity clique and
  /// `clique_pos[i]` its position — the runtime computes the physical
  /// extent as factor_grid(P, clique_size)[clique_pos].
  std::vector<int> clique_size;
  std::vector<int> clique_pos;
  std::vector<int> clique_id;  ///< clique identifier per dimension
  /// Physical extent of each virtual dimension for `procs` processors.
  std::vector<int> grid_extents(int procs) const;

  std::string to_string(const ir::Program& prog) const;
};

/// Near-square factorization of p into `dims` grid extents (descending),
/// e.g. factor_grid(32, 2) == {8, 4}.
std::vector<int> factor_grid(int p, int dims);

struct DecompOptions {
  int max_proc_dims = 2;  ///< virtual processor space rank limit
  int procs = 32;         ///< reference machine size for the cost model
  Int block_cyclic_block = 8;
  /// Dump group-selection scoring to stderr. Threaded explicitly (not read
  /// from DCT_DEBUG_DECOMP mid-pipeline) so concurrent compilations with
  /// different settings cannot race on process state; the env var is
  /// resolved once per compile entry by core::CompileOptions::from_env().
  bool debug = false;
};

/// The paper's full global algorithm (Section 3): parallelizes every nest,
/// then runs decompose_from + select_folds + eliminate_barriers.
ProgramDecomposition decompose(const ir::Program& prog,
                               const DecompOptions& opts = {});

/// The BASE compiler of the evaluation (Section 6.1): each nest analyzed
/// in isolation, outermost parallel loop block-distributed, data layouts
/// untouched, a barrier after every nest.
ProgramDecomposition decompose_base(const ir::Program& prog,
                                    const DecompOptions& opts = {});

// --- pipeline stages (the pass-at-a-time interface compile() drives) ---
//
// decompose() and decompose_base() above remain the one-shot entry points;
// the PassManager runs these stages individually so each gets its own
// wall-time and remarks.

/// Alignment grouping + global group selection + computation mapping, on
/// nests already parallelized by the caller. Distributed dimensions come
/// out BLOCK with load-imbalance facts recorded (see select_folds); every
/// nest keeps its barrier (see eliminate_barriers).
ProgramDecomposition decompose_from(std::vector<dep::ParallelizedNest> par,
                                    const ir::Program& prog,
                                    const DecompOptions& opts = {},
                                    support::RemarkSink* rs = nullptr);

/// BASE-mode decomposition over pre-parallelized nests.
ProgramDecomposition decompose_base_from(
    std::vector<dep::ParallelizedNest> par, const ir::Program& prog,
    const DecompOptions& opts = {}, support::RemarkSink* rs = nullptr);

/// Folding-function selection per virtual dimension: BLOCK by default,
/// CYCLIC when a distributed loop is load-imbalanced, BLOCK-CYCLIC when a
/// pipelined loop needs both balance and granularity.
void select_folds(const ir::Program& prog, ProgramDecomposition& d,
                  const DecompOptions& opts = {},
                  support::RemarkSink* rs = nullptr);

/// Barrier elimination [Tseng 95]: drop the barrier after a nest when no
/// data can flow across processors into the next one (cyclically, matching
/// the time-loop steady state).
void eliminate_barriers(ProgramDecomposition& d,
                        support::RemarkSink* rs = nullptr);

/// Virtual-processor coordinates of an iteration of nest `j` under the
/// decomposition (the affine G_j, evaluated). Entries are -1 on processor
/// dimensions this nest does not use.
linalg::Vec computation_coords(const ProgramDecomposition& d, int nest,
                               std::span<const Int> iter);
/// Virtual-processor coordinates of an array element under D_x; nullopt
/// when the array is replicated or fully serial.
std::optional<linalg::Vec> data_coords(const ProgramDecomposition& d,
                                       int array, std::span<const Int> index);

}  // namespace dct::decomp
