// Unimodular loop transformations (Wolf–Lam loop transformation theory).
//
// A unimodular matrix U maps the iteration vector i of a nest to a new
// vector j = U * i. Array references transform as F' = F * U^{-1}; loop
// bounds are regenerated with Fourier–Motzkin elimination on the affine
// inequality system describing the iteration polytope.
#pragma once

#include <vector>

#include "ir/program.hpp"

namespace dct::ir {

/// Permutation matrix: new level l reads old loop perm[l] (j_l = i_perm[l]).
linalg::IntMatrix permutation_matrix(const std::vector<int>& perm);

/// Skew matrix: identity with j_target += factor * i_source added.
linalg::IntMatrix skew_matrix(int depth, int target, int source,
                              linalg::Int factor);

/// Reversal matrix: identity with row `level` negated.
linalg::IntMatrix reversal_matrix(int depth, int level);

/// Apply a unimodular transform to a nest: returns the equivalent nest
/// over j = U * i (same set of executed statement instances, new
/// enumeration order). Throws if U is not unimodular or if the transformed
/// bounds cannot be expressed (never happens for unimodular U with affine
/// bounds — Fourier–Motzkin is closed over them).
LoopNest apply_unimodular(const LoopNest& nest, const linalg::IntMatrix& u);

/// Exact integer inverse of a unimodular matrix.
linalg::IntMatrix unimodular_inverse(const linalg::IntMatrix& u);

}  // namespace dct::ir
