#include "ir/transform.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/diagnostics.hpp"

namespace dct::ir {

using linalg::checked_add;
using linalg::checked_mul;
using linalg::IntMatrix;

IntMatrix permutation_matrix(const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  IntMatrix m(n, n);
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int l = 0; l < n; ++l) {
    const int src = perm[static_cast<size_t>(l)];
    DCT_CHECK(src >= 0 && src < n && !seen[static_cast<size_t>(src)],
              "not a permutation");
    seen[static_cast<size_t>(src)] = true;
    m.at(l, src) = 1;
  }
  return m;
}

IntMatrix skew_matrix(int depth, int target, int source, linalg::Int factor) {
  DCT_CHECK(target != source, "skew target must differ from source");
  IntMatrix m = IntMatrix::identity(depth);
  m.at(target, source) = factor;
  return m;
}

IntMatrix reversal_matrix(int depth, int level) {
  IntMatrix m = IntMatrix::identity(depth);
  m.at(level, level) = -1;
  return m;
}

IntMatrix unimodular_inverse(const IntMatrix& u) {
  DCT_CHECK(u.rows() == u.cols(), "inverse of non-square matrix");
  DCT_CHECK(std::abs(linalg::determinant(u)) == 1, "matrix is not unimodular");
  const int n = u.rows();
  IntMatrix inv(n, n);
  for (int c = 0; c < n; ++c) {
    linalg::Vec e(static_cast<size_t>(n), 0);
    e[static_cast<size_t>(c)] = 1;
    const auto sol = linalg::solve(u, e);
    DCT_CHECK(sol.has_value() && sol->denom == 1, "unimodular inverse failed");
    for (int r = 0; r < n; ++r) inv.at(r, c) = sol->x[static_cast<size_t>(r)];
  }
  return inv;
}

namespace {

/// One affine inequality c · x + c0 >= 0 over the iteration vector.
struct Ineq {
  linalg::Vec c;
  linalg::Int c0 = 0;
};

Ineq scale(const Ineq& q, linalg::Int s) {
  Ineq out = q;
  for (auto& v : out.c) v = checked_mul(v, s);
  out.c0 = checked_mul(out.c0, s);
  return out;
}

Ineq add(const Ineq& a, const Ineq& b) {
  Ineq out;
  out.c.resize(a.c.size());
  for (size_t i = 0; i < a.c.size(); ++i)
    out.c[i] = checked_add(a.c[i], b.c[i]);
  out.c0 = checked_add(a.c0, b.c0);
  return out;
}

/// Reduce an inequality by the gcd of its coefficients (with floor on the
/// constant — valid for integer points).
void normalize(Ineq& q) {
  linalg::Int g = 0;
  for (auto v : q.c) g = linalg::gcd(g, v);
  if (g > 1) {
    for (auto& v : q.c) v /= g;
    q.c0 = linalg::floor_div(q.c0, g);
  }
}

}  // namespace

LoopNest apply_unimodular(const LoopNest& nest, const IntMatrix& u) {
  const int d = nest.depth();
  DCT_CHECK(u.rows() == d && u.cols() == d, "transform shape mismatch");
  const IntMatrix v = unimodular_inverse(u);  // i = v * j

  // Build the iteration-polytope inequality system over i, then substitute
  // i = v * j to express it over j.
  std::vector<Ineq> system;
  for (int k = 0; k < d; ++k) {
    const Loop& lp = nest.loops[static_cast<size_t>(k)];
    for (const Bound& b : lp.lowers) {
      // divisor * i_k - expr >= 0
      Ineq q;
      q.c.assign(static_cast<size_t>(d), 0);
      q.c[static_cast<size_t>(k)] = b.divisor;
      for (size_t i = 0; i < b.expr.coeffs.size(); ++i)
        q.c[i] = linalg::checked_sub(q.c[i], b.expr.coeffs[i]);
      q.c0 = -b.expr.constant;
      system.push_back(std::move(q));
    }
    for (const Bound& b : lp.uppers) {
      // expr - divisor * i_k >= 0
      Ineq q;
      q.c.assign(static_cast<size_t>(d), 0);
      for (size_t i = 0; i < b.expr.coeffs.size(); ++i) q.c[i] = b.expr.coeffs[i];
      q.c[static_cast<size_t>(k)] =
          linalg::checked_sub(q.c[static_cast<size_t>(k)], b.divisor);
      q.c0 = b.expr.constant;
      system.push_back(std::move(q));
    }
  }
  for (Ineq& q : system) {
    linalg::Vec cj(static_cast<size_t>(d), 0);
    for (int col = 0; col < d; ++col)
      for (int row = 0; row < d; ++row)
        cj[static_cast<size_t>(col)] =
            checked_add(cj[static_cast<size_t>(col)],
                        checked_mul(q.c[static_cast<size_t>(row)], v.at(row, col)));
    q.c = std::move(cj);
    normalize(q);
  }

  // Fourier–Motzkin: peel bounds for levels d-1 .. 0.
  LoopNest out;
  out.name = nest.name;
  out.frequency = nest.frequency;
  out.loops.resize(static_cast<size_t>(d));
  for (int k = d - 1; k >= 0; --k) {
    Loop& lp = out.loops[static_cast<size_t>(k)];
    lp.var_name = "j" + std::to_string(k);
    std::vector<Ineq> lower, upper, rest;
    for (const Ineq& q : system) {
      const linalg::Int ck = q.c[static_cast<size_t>(k)];
      if (ck > 0)
        lower.push_back(q);
      else if (ck < 0)
        upper.push_back(q);
      else
        rest.push_back(q);
    }
    DCT_CHECK(!lower.empty() && !upper.empty(),
              "transformed nest is unbounded at level " + std::to_string(k));
    for (const Ineq& q : lower) {
      // ck * j_k >= -(rest of q)  =>  j_k >= ceil(expr / ck)
      Bound b;
      b.divisor = q.c[static_cast<size_t>(k)];
      b.expr.coeffs.assign(q.c.begin(), q.c.begin() + k);
      for (auto& cv : b.expr.coeffs) cv = -cv;
      b.expr.constant = -q.c0;
      lp.lowers.push_back(std::move(b));
    }
    for (const Ineq& q : upper) {
      // (-ck) * j_k <= rest of q  =>  j_k <= floor(expr / -ck)
      Bound b;
      b.divisor = -q.c[static_cast<size_t>(k)];
      b.expr.coeffs.assign(q.c.begin(), q.c.begin() + k);
      b.expr.constant = q.c0;
      lp.uppers.push_back(std::move(b));
    }
    // Eliminate j_k for the outer levels.
    system = std::move(rest);
    for (const Ineq& lo : lower)
      for (const Ineq& hi : upper) {
        Ineq combined =
            add(scale(hi, lo.c[static_cast<size_t>(k)]),
                scale(lo, -hi.c[static_cast<size_t>(k)]));
        DCT_CHECK(combined.c[static_cast<size_t>(k)] == 0, "FM elimination bug");
        normalize(combined);
        system.push_back(std::move(combined));
      }
  }

  // Transform the statements: F' = F * V, offsets unchanged.
  out.stmts = nest.stmts;
  for (Stmt& s : out.stmts) {
    for (ArrayRef& r : s.reads) r.access = r.access * v;
    if (s.write) s.write->access = s.write->access * v;
  }
  return out;
}

}  // namespace dct::ir
