// Affine kernel IR.
//
// The paper's algorithms consume an affine abstraction of the input
// program: loop nests as multi-dimensional iteration spaces with affine
// (possibly triangular) bounds, arrays as multi-dimensional index spaces,
// and array references as affine maps from iteration space to array space.
// This module provides that abstraction plus a builder API; the seven
// benchmark applications (src/apps) are expressed directly in it.
//
// Statements additionally carry a numeric evaluator so a transformed
// program can be *executed* and checked bit-for-bit against the original
// (layout legality, Section 4.1.3: a data transform must preserve program
// semantics).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "linalg/int_matrix.hpp"

namespace dct::ir {

using linalg::Int;
using linalg::IntMatrix;
using linalg::Vec;

/// Affine expression over the index variables of the enclosing loop nest:
/// value(i) = coeffs · i[0..depth) + constant. `coeffs` may be shorter than
/// the iteration vector (missing entries are zero), which lets bounds refer
/// only to outer loops.
struct AffineExpr {
  Vec coeffs;
  Int constant = 0;

  Int eval(std::span<const Int> iter) const;
  /// True if no loop variable with index >= first appears.
  bool depends_only_on_outer(int first) const;
  std::string to_string() const;
};

/// Build an expression referencing loop variable `depth` (0 = outermost).
AffineExpr var(int depth, Int coeff = 1);
AffineExpr cst(Int value);
AffineExpr operator+(AffineExpr a, const AffineExpr& b);
AffineExpr operator-(AffineExpr a, const AffineExpr& b);
AffineExpr operator*(AffineExpr a, Int s);
AffineExpr operator+(AffineExpr a, Int c);
AffineExpr operator-(AffineExpr a, Int c);

/// Array declaration; extents are concrete (programs are built per size).
struct ArrayDecl {
  std::string name;
  std::vector<Int> dims;  ///< extent per dimension, 0-based indexing
  int elem_size = 8;      ///< bytes per element (4 REAL, 8 DOUBLE PRECISION)
  /// Section 4.1.3: aliasing/reshaping can make restructuring illegal;
  /// such arrays must keep their original layout.
  bool transformable = true;

  Int elem_count() const;
  Int byte_size() const;
};

/// Affine array reference: index(i) = access * i + offset.
struct ArrayRef {
  int array = -1;   ///< index into Program::arrays
  IntMatrix access;  ///< (array rank) x (nest depth)
  Vec offset;        ///< array rank

  Vec index(std::span<const Int> iter) const;
  std::string to_string(const struct Program& prog) const;
};

/// Convenience: build an ArrayRef whose dimension d reads loop variable
/// `dims[d].first` scaled by 1 with offset `dims[d].second`; a loop index
/// of -1 means the dimension is a constant equal to the offset.
ArrayRef simple_ref(int array, int depth,
                    const std::vector<std::pair<int, Int>>& dims);

/// One assignment statement: write = eval(reads). The evaluator is used by
/// the semantic-verification executor; the performance simulator only needs
/// the reference structure and the compute cost.
struct Stmt {
  std::vector<ArrayRef> reads;
  std::optional<ArrayRef> write;
  double compute_cycles = 4.0;  ///< scalar FP work per execution
  std::function<double(std::span<const double>)> eval;
  /// Imperfect-nest support: the statement executes once per iteration of
  /// the outermost `depth` loops, positioned before the deeper loop body
  /// (-1 = full nest depth). Access matrices still have full-depth columns
  /// (zero on the unused inner loops).
  int depth = -1;

  int effective_depth(int nest_depth) const {
    return depth < 0 ? nest_depth : depth;
  }
};

/// One affine bound: expr / divisor, rounded up (lower bounds) or down
/// (upper bounds). Divisors > 1 arise from Fourier–Motzkin bound
/// generation after unimodular transforms.
struct Bound {
  AffineExpr expr;
  Int divisor = 1;
};

/// One loop of a nest with inclusive affine bounds. A loop may carry
/// several lower/upper bounds (the effective bound is their max/min
/// respectively) — Fourier–Motzkin bound generation after a unimodular
/// transform naturally produces such bound sets.
struct Loop {
  std::string var_name;
  std::vector<Bound> lowers;  ///< effective lower = max of ceil(expr/div)
  std::vector<Bound> uppers;  ///< effective upper = min of floor(expr/div)

  Int lower_bound(std::span<const Int> iter) const;
  Int upper_bound(std::span<const Int> iter) const;
};

/// Convenience constructor for the common single-bound case.
Loop loop(std::string var_name, AffineExpr lower, AffineExpr upper);

/// A perfectly nested affine loop nest executing `stmts` in order per
/// iteration of the full index vector.
struct LoopNest {
  std::string name;
  std::vector<Loop> loops;  ///< outermost first
  std::vector<Stmt> stmts;
  /// Static execution-frequency weight; the decomposition pass orders its
  /// greedy constraint processing by this (paper §3.2: "starting with the
  /// constraints among the more frequently executed loops").
  long frequency = 1;

  int depth() const { return static_cast<int>(loops.size()); }
};

/// A program: arrays plus a sequence of nests, the whole sequence repeated
/// `time_steps` times (the outer sequential time loop of stencil codes).
struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<LoopNest> nests;
  int time_steps = 1;

  const ArrayDecl& array(int id) const;
  int array_id(const std::string& name) const;
  /// Total iterations of one nest (walks the affine bounds).
  long long nest_iterations(const LoopNest& nest) const;
  std::string to_string() const;
};

/// Walk every iteration of `nest` in original (lexicographic) order,
/// invoking fn(iter). Used by reference executors and dependence tests.
void for_each_iteration(const LoopNest& nest,
                        const std::function<void(std::span<const Int>)>& fn);

/// Fluent builder used by the application kernels.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  int array(const std::string& name, std::vector<Int> dims, int elem_size = 8,
            bool transformable = true);
  LoopNest& nest(const std::string& name, long frequency = 1);
  void set_time_steps(int steps);

  Program build();

 private:
  Program prog_;
};

}  // namespace dct::ir
