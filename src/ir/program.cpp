#include "ir/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::ir {

Int AffineExpr::eval(std::span<const Int> iter) const {
  Int v = constant;
  DCT_CHECK(coeffs.size() <= iter.size(), "expression deeper than nest");
  for (size_t d = 0; d < coeffs.size(); ++d)
    v = linalg::checked_add(v, linalg::checked_mul(coeffs[d], iter[d]));
  return v;
}

bool AffineExpr::depends_only_on_outer(int first) const {
  for (size_t d = static_cast<size_t>(first); d < coeffs.size(); ++d)
    if (coeffs[d] != 0) return false;
  return true;
}

std::string AffineExpr::to_string() const {
  std::ostringstream os;
  bool any = false;
  for (size_t d = 0; d < coeffs.size(); ++d) {
    if (coeffs[d] == 0) continue;
    if (any) os << (coeffs[d] > 0 ? "+" : "");
    if (coeffs[d] == -1)
      os << "-";
    else if (coeffs[d] != 1)
      os << coeffs[d] << "*";
    os << "i" << d;
    any = true;
  }
  if (constant != 0 || !any) {
    if (any && constant > 0) os << "+";
    os << constant;
  }
  return os.str();
}

AffineExpr var(int depth, Int coeff) {
  AffineExpr e;
  e.coeffs.assign(static_cast<size_t>(depth) + 1, 0);
  e.coeffs[static_cast<size_t>(depth)] = coeff;
  return e;
}

AffineExpr cst(Int value) { return AffineExpr{{}, value}; }

AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
  if (a.coeffs.size() < b.coeffs.size()) a.coeffs.resize(b.coeffs.size(), 0);
  for (size_t d = 0; d < b.coeffs.size(); ++d)
    a.coeffs[d] = linalg::checked_add(a.coeffs[d], b.coeffs[d]);
  a.constant = linalg::checked_add(a.constant, b.constant);
  return a;
}

AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
  AffineExpr neg = b;
  for (Int& c : neg.coeffs) c = -c;
  neg.constant = -neg.constant;
  return std::move(a) + neg;
}

AffineExpr operator*(AffineExpr a, Int s) {
  for (Int& c : a.coeffs) c = linalg::checked_mul(c, s);
  a.constant = linalg::checked_mul(a.constant, s);
  return a;
}

AffineExpr operator+(AffineExpr a, Int c) {
  a.constant = linalg::checked_add(a.constant, c);
  return a;
}

AffineExpr operator-(AffineExpr a, Int c) { return std::move(a) + (-c); }

namespace {
// ceil(a/b) for b > 0.
Int ceil_div(Int a, Int b) { return -linalg::floor_div(-a, b); }
}  // namespace

Int Loop::lower_bound(std::span<const Int> iter) const {
  DCT_CHECK(!lowers.empty(), "loop has no lower bound");
  Int v = ceil_div(lowers[0].expr.eval(iter), lowers[0].divisor);
  for (size_t i = 1; i < lowers.size(); ++i)
    v = std::max(v, ceil_div(lowers[i].expr.eval(iter), lowers[i].divisor));
  return v;
}

Int Loop::upper_bound(std::span<const Int> iter) const {
  DCT_CHECK(!uppers.empty(), "loop has no upper bound");
  Int v = linalg::floor_div(uppers[0].expr.eval(iter), uppers[0].divisor);
  for (size_t i = 1; i < uppers.size(); ++i)
    v = std::min(v,
                 linalg::floor_div(uppers[i].expr.eval(iter), uppers[i].divisor));
  return v;
}

Loop loop(std::string var_name, AffineExpr lower, AffineExpr upper) {
  return Loop{std::move(var_name),
              {Bound{std::move(lower), 1}},
              {Bound{std::move(upper), 1}}};
}

Int ArrayDecl::elem_count() const {
  Int n = 1;
  for (Int d : dims) n = linalg::checked_mul(n, d);
  return n;
}

Int ArrayDecl::byte_size() const {
  return linalg::checked_mul(elem_count(), elem_size);
}

Vec ArrayRef::index(std::span<const Int> iter) const {
  DCT_CHECK(access.cols() <= static_cast<int>(iter.size()),
            "reference deeper than nest");
  Vec out(offset);
  for (int r = 0; r < access.rows(); ++r)
    for (int c = 0; c < access.cols(); ++c)
      out[static_cast<size_t>(r)] = linalg::checked_add(
          out[static_cast<size_t>(r)],
          linalg::checked_mul(access.at(r, c), iter[static_cast<size_t>(c)]));
  return out;
}

std::string ArrayRef::to_string(const Program& prog) const {
  std::ostringstream os;
  os << prog.array(array).name << "(";
  for (int r = 0; r < access.rows(); ++r) {
    if (r) os << ",";
    AffineExpr e;
    e.coeffs = access.row(r);
    e.constant = offset[static_cast<size_t>(r)];
    os << e.to_string();
  }
  os << ")";
  return os.str();
}

ArrayRef simple_ref(int array, int depth,
                    const std::vector<std::pair<int, Int>>& dims) {
  ArrayRef ref;
  ref.array = array;
  ref.access = IntMatrix(static_cast<int>(dims.size()), depth);
  ref.offset.resize(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    const auto& [loop, off] = dims[d];
    if (loop >= 0) {
      DCT_CHECK(loop < depth, "loop index out of nest");
      ref.access.at(static_cast<int>(d), loop) = 1;
    }
    ref.offset[d] = off;
  }
  return ref;
}

const ArrayDecl& Program::array(int id) const {
  DCT_CHECK(id >= 0 && id < static_cast<int>(arrays.size()), "bad array id");
  return arrays[static_cast<size_t>(id)];
}

int Program::array_id(const std::string& name) const {
  for (size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == name) return static_cast<int>(i);
  DCT_CHECK(false, "unknown array " + name);
  return -1;
}

void for_each_iteration(const LoopNest& nest,
                        const std::function<void(std::span<const Int>)>& fn) {
  const int depth = nest.depth();
  if (depth == 0) return;
  Vec iter(static_cast<size_t>(depth), 0);
  // Recursive walk flattened into an explicit loop over levels.
  int level = 0;
  std::vector<Int> upper(static_cast<size_t>(depth));
  iter[0] = nest.loops[0].lower_bound(iter);
  upper[0] = nest.loops[0].upper_bound(iter);
  while (level >= 0) {
    if (iter[static_cast<size_t>(level)] > upper[static_cast<size_t>(level)]) {
      --level;
      if (level >= 0) ++iter[static_cast<size_t>(level)];
      continue;
    }
    if (level == depth - 1) {
      fn(std::span<const Int>(iter));
      ++iter[static_cast<size_t>(level)];
    } else {
      ++level;
      iter[static_cast<size_t>(level)] =
          nest.loops[static_cast<size_t>(level)].lower_bound(iter);
      upper[static_cast<size_t>(level)] =
          nest.loops[static_cast<size_t>(level)].upper_bound(iter);
    }
  }
}

long long Program::nest_iterations(const LoopNest& nest) const {
  long long n = 0;
  for_each_iteration(nest, [&](std::span<const Int>) { ++n; });
  return n;
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program " << name << " (time_steps=" << time_steps << ")\n";
  for (const auto& a : arrays) {
    os << "  array " << a.name << "(";
    for (size_t d = 0; d < a.dims.size(); ++d)
      os << (d ? "," : "") << a.dims[d];
    os << ") elem=" << a.elem_size << "B"
       << (a.transformable ? "" : " [not transformable]") << "\n";
  }
  for (const auto& nest : nests) {
    os << "  nest " << nest.name << " freq=" << nest.frequency << "\n";
    for (int l = 0; l < nest.depth(); ++l) {
      const Loop& lp = nest.loops[static_cast<size_t>(l)];
      std::vector<std::string> lo, hi;
      for (const auto& b : lp.lowers)
        lo.push_back(b.divisor == 1
                         ? b.expr.to_string()
                         : strf("ceil((%s)/%lld)", b.expr.to_string().c_str(),
                                static_cast<long long>(b.divisor)));
      for (const auto& b : lp.uppers)
        hi.push_back(b.divisor == 1
                         ? b.expr.to_string()
                         : strf("floor((%s)/%lld)", b.expr.to_string().c_str(),
                                static_cast<long long>(b.divisor)));
      os << std::string(static_cast<size_t>(4 + 2 * l), ' ') << "for "
         << lp.var_name << " = max(" << join(lo, ",") << ") .. min("
         << join(hi, ",") << ")\n";
    }
    for (const auto& s : nest.stmts) {
      os << std::string(static_cast<size_t>(4 + 2 * nest.depth()), ' ');
      if (s.write) os << s.write->to_string(*this) << " = f(";
      for (size_t i = 0; i < s.reads.size(); ++i)
        os << (i ? ", " : "") << s.reads[i].to_string(*this);
      if (s.write) os << ")";
      os << "\n";
    }
  }
  return os.str();
}

ProgramBuilder::ProgramBuilder(std::string name) { prog_.name = std::move(name); }

int ProgramBuilder::array(const std::string& name, std::vector<Int> dims,
                          int elem_size, bool transformable) {
  for (const auto& a : prog_.arrays)
    DCT_CHECK(a.name != name, "duplicate array " + name);
  for (Int d : dims) DCT_CHECK(d > 0, "array extent must be positive");
  prog_.arrays.push_back(
      ArrayDecl{name, std::move(dims), elem_size, transformable});
  return static_cast<int>(prog_.arrays.size()) - 1;
}

LoopNest& ProgramBuilder::nest(const std::string& name, long frequency) {
  prog_.nests.push_back(LoopNest{});
  prog_.nests.back().name = name;
  prog_.nests.back().frequency = frequency;
  return prog_.nests.back();
}

void ProgramBuilder::set_time_steps(int steps) {
  DCT_CHECK(steps >= 1, "time steps must be positive");
  prog_.time_steps = steps;
}

Program ProgramBuilder::build() { return std::move(prog_); }

}  // namespace dct::ir
