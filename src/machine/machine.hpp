// Cache-coherent NUMA multiprocessor simulator modelled on the Stanford
// DASH machine the paper evaluates on (Section 6.1):
//
//  * processors organized in clusters (DASH: 8 clusters x 4 processors);
//  * per-processor direct-mapped L1 (64KB) and L2 (256KB), 16B lines;
//  * directory-based write-invalidate coherence;
//  * 4KB pages homed on a cluster (the paper: first-touch);
//  * latencies 1 : 10 : 30 : 100-130 for L1 : L2 : local : remote memory.
//
// The simulator classifies misses (cold / replacement / coherence, the
// latter split into true and false sharing by comparing the invalidating
// write's word with the word re-read) — the quantities the paper's
// optimizations target.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/int_matrix.hpp"

namespace dct::machine {

using linalg::Int;

struct CacheConfig {
  Int size_bytes = 64 * 1024;
  Int line_bytes = 16;
  int assoc = 1;  ///< direct-mapped
};

struct MachineConfig {
  int procs = 32;
  int procs_per_cluster = 4;
  CacheConfig l1{64 * 1024, 16, 1};
  CacheConfig l2{256 * 1024, 16, 1};
  Int page_bytes = 4096;
  // Access latencies in cycles.
  double lat_l1 = 1;
  double lat_l2 = 10;
  double lat_local = 30;
  double lat_remote = 100;
  double lat_remote_dirty = 130;
  /// Barrier cost: base plus a per-processor component (log-tree-ish
  /// hardware barriers still serialize hot spots on DASH).
  double barrier_base = 200;
  double barrier_per_proc = 20;
  /// Acquiring a free lock / producer-consumer hand-off.
  double lock_cycles = 60;
  /// Take the L1-hit fast path that skips the directory hash lookup when
  /// the line's coherence state provably cannot change (see
  /// Machine::access). Identical latencies and statistics either way —
  /// only ProcStats::dir_fast_hits differs; off = always exercise the
  /// full directory protocol (DCT_FAST_EXEC=0 disables it).
  bool fast_directory = true;

  int clusters() const { return (procs + procs_per_cluster - 1) / procs_per_cluster; }
  int cluster_of(int proc) const { return proc / procs_per_cluster; }

  /// The DASH configuration of the paper with a given processor count.
  static MachineConfig dash(int procs);
};

/// Per-processor memory statistics.
struct ProcStats {
  long long accesses = 0;
  long long l1_hits = 0;
  long long l2_hits = 0;
  long long local_fills = 0;
  long long remote_fills = 0;
  long long remote_dirty_fills = 0;
  long long upgrades = 0;  ///< write hits needing exclusivity
  long long cold_misses = 0;
  long long replace_misses = 0;
  long long coherence_true = 0;
  long long coherence_false = 0;
  /// L1 hits served by the directory fast path (subset of l1_hits; the
  /// only counter that depends on MachineConfig::fast_directory).
  long long dir_fast_hits = 0;
  double memory_cycles = 0;

  void add(const ProcStats& o);
  std::string to_string() const;
};

/// One processor's two-level cache hierarchy plus the shared directory.
class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  /// Simulate one access; returns its latency in cycles and updates the
  /// per-processor statistics.
  ///
  /// Fast path (cfg.fast_directory): an L1 hit whose slot carries the
  /// right fast flag — read: the processor is a recorded sharer; write:
  /// the processor is the dirty owner — needs no directory transition at
  /// all, so the `directory_` hash lookup is skipped entirely. The slow
  /// path maintains the flags; invalidations and downgrades clear them.
  double access(int proc, Int byte_addr, bool is_write) {
    if (fast_enabled_) {
      Proc& p = procs_[static_cast<size_t>(proc)];
      const Int line = byte_addr >> line_shift_;
      const size_t slot = static_cast<size_t>(line) & l1_slot_mask_;
      if (p.l1.tag[slot] == line &&
          (p.l1.fast[slot] & (is_write ? kWriteFast : kReadFast)) != 0) {
        // One dense counter; folded into ProcStats when stats are read
        // (a fast hit bumps accesses, l1_hits, dir_fast_hits and lat_l1
        // memory cycles — all derivable from the count).
        ++fast_hits_[static_cast<size_t>(proc)];
        return cfg_.lat_l1;
      }
    }
    return access_slow(proc, byte_addr, is_write);
  }

  /// Cost of a barrier across `participants` processors.
  double barrier_cost(int participants) const;

  /// Assign the home cluster of the page containing `byte_addr`
  /// (idempotent: the first assignment wins — first touch).
  void home_page(Int byte_addr, int cluster);

  const MachineConfig& config() const { return cfg_; }
  /// Per-processor statistics with the deferred fast-path hits folded in.
  ProcStats stats(int proc) const;
  ProcStats total_stats() const;

 private:
  static constexpr std::uint8_t kReadFast = 1;   ///< sharer; reads are free
  static constexpr std::uint8_t kWriteFast = 2;  ///< dirty owner

  struct CacheLevel {
    Int lines = 0;  ///< number of sets (direct-mapped)
    std::vector<Int> tag;  ///< -1 = invalid; tag = line address
    /// L1 only: per-slot fast-path flags (kReadFast | kWriteFast), valid
    /// while the tag matches. Empty for L2.
    std::vector<std::uint8_t> fast;
  };
  struct Proc {
    CacheLevel l1, l2;
  };
  /// Directory entry per line.
  struct Line {
    std::uint64_t sharers = 0;  ///< bitmask of caching processors
    int dirty_owner = -1;       ///< processor with the modified copy
    /// Classification helpers.
    std::uint64_t invalidated_from = 0;  ///< procs that lost this line
    std::uint8_t last_inval_word = 0;
    bool touched = false;
  };

  double access_slow(int proc, Int byte_addr, bool is_write);
  bool lookup(CacheLevel& c, Int line) const;
  void insert(int proc, CacheLevel& c, Int line);
  void evict_notify(int proc, Int line);
  void drop_line(int proc, Int line);
  void clear_write_fast(int proc, Int line);
  int home_cluster(Int line);

  MachineConfig cfg_;
  /// The fast path additionally requires power-of-two line size and L1
  /// set count so the address split is a shift and a mask; otherwise it is
  /// disabled and every access takes the full protocol (same results).
  bool fast_enabled_ = true;
  int line_shift_ = 0;
  size_t l1_slot_mask_ = 0;
  std::vector<Proc> procs_;
  std::vector<ProcStats> stats_;
  /// Directory-fast-path hits per processor, folded into stats_ on read.
  std::vector<long long> fast_hits_;
  std::unordered_map<Int, Line> directory_;
  std::unordered_map<Int, int> page_home_;
  int next_rr_cluster_ = 0;
};

}  // namespace dct::machine
