#include "machine/machine.hpp"

#include <bit>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::machine {

MachineConfig MachineConfig::dash(int procs) {
  MachineConfig cfg;
  cfg.procs = procs;
  return cfg;
}

void ProcStats::add(const ProcStats& o) {
  accesses += o.accesses;
  l1_hits += o.l1_hits;
  l2_hits += o.l2_hits;
  local_fills += o.local_fills;
  remote_fills += o.remote_fills;
  remote_dirty_fills += o.remote_dirty_fills;
  upgrades += o.upgrades;
  cold_misses += o.cold_misses;
  replace_misses += o.replace_misses;
  coherence_true += o.coherence_true;
  coherence_false += o.coherence_false;
  dir_fast_hits += o.dir_fast_hits;
  memory_cycles += o.memory_cycles;
}

std::string ProcStats::to_string() const {
  return strf(
      "accesses=%lld l1=%lld l2=%lld local=%lld remote=%lld dirty=%lld "
      "upgrades=%lld cold=%lld replace=%lld coh_true=%lld coh_false=%lld",
      accesses, l1_hits, l2_hits, local_fills, remote_fills,
      remote_dirty_fills, upgrades, cold_misses, replace_misses,
      coherence_true, coherence_false);
}

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg), fast_enabled_(cfg.fast_directory) {
  DCT_CHECK(cfg.procs >= 1 && cfg.procs <= 64, "1..64 processors supported");
  DCT_CHECK(cfg.l1.assoc == 1 && cfg.l2.assoc == 1,
            "only direct-mapped caches modelled (as on DASH)");
  procs_.resize(static_cast<size_t>(cfg.procs));
  stats_.resize(static_cast<size_t>(cfg.procs));
  fast_hits_.assign(static_cast<size_t>(cfg.procs), 0);
  for (auto& p : procs_) {
    p.l1.lines = cfg.l1.size_bytes / cfg.l1.line_bytes;
    p.l1.tag.assign(static_cast<size_t>(p.l1.lines), -1);
    p.l1.fast.assign(static_cast<size_t>(p.l1.lines), 0);
    p.l2.lines = cfg.l2.size_bytes / cfg.l2.line_bytes;
    p.l2.tag.assign(static_cast<size_t>(p.l2.lines), -1);
  }
  directory_.reserve(1 << 16);
  page_home_.reserve(1 << 12);
  const Int lines = procs_[0].l1.lines;
  const auto pow2 = [](Int v) { return v > 0 && (v & (v - 1)) == 0; };
  if (pow2(cfg_.l1.line_bytes) && pow2(lines)) {
    line_shift_ = std::countr_zero(static_cast<std::uint64_t>(cfg_.l1.line_bytes));
    l1_slot_mask_ = static_cast<size_t>(lines - 1);
  } else {
    fast_enabled_ = false;
  }
}

bool Machine::lookup(CacheLevel& c, Int line) const {
  return c.tag[static_cast<size_t>(line % c.lines)] == line;
}

void Machine::insert(int proc, CacheLevel& c, Int line) {
  const size_t set = static_cast<size_t>(line % c.lines);
  Int& slot = c.tag[set];
  if (slot == line) return;
  if (slot >= 0) evict_notify(proc, slot);
  slot = line;
  if (!c.fast.empty()) c.fast[set] = 0;
}

/// A line fell out of one cache level; if it is in neither level, the
/// processor no longer caches it.
void Machine::evict_notify(int proc, Int line) {
  Proc& p = procs_[static_cast<size_t>(proc)];
  if (lookup(p.l1, line) || lookup(p.l2, line)) return;
  auto it = directory_.find(line);
  if (it == directory_.end()) return;
  it->second.sharers &= ~(1ull << proc);
  if (it->second.dirty_owner == proc) it->second.dirty_owner = -1;
}

void Machine::drop_line(int proc, Int line) {
  Proc& p = procs_[static_cast<size_t>(proc)];
  const size_t set1 = static_cast<size_t>(line % p.l1.lines);
  if (p.l1.tag[set1] == line) {
    p.l1.tag[set1] = -1;
    p.l1.fast[set1] = 0;
  }
  Int& s2 = p.l2.tag[static_cast<size_t>(line % p.l2.lines)];
  if (s2 == line) s2 = -1;
}

/// A dirty line was downgraded to shared: its (former) owner may no longer
/// write it without a directory transition.
void Machine::clear_write_fast(int proc, Int line) {
  Proc& p = procs_[static_cast<size_t>(proc)];
  const size_t set = static_cast<size_t>(line % p.l1.lines);
  if (p.l1.tag[set] == line)
    p.l1.fast[set] &= static_cast<std::uint8_t>(~kWriteFast);
}

int Machine::home_cluster(Int line) {
  const Int page = line * cfg_.l1.line_bytes / cfg_.page_bytes;
  auto it = page_home_.find(page);
  if (it != page_home_.end()) return it->second;
  // Unassigned page: spread round-robin (models an OS allocating pages of
  // a parallel-initialized program across clusters).
  const int cl = next_rr_cluster_;
  next_rr_cluster_ = (next_rr_cluster_ + 1) % cfg_.clusters();
  page_home_.emplace(page, cl);
  return cl;
}

void Machine::home_page(Int byte_addr, int cluster) {
  const Int page = byte_addr / cfg_.page_bytes;
  page_home_.emplace(page, cluster % cfg_.clusters());
}

double Machine::barrier_cost(int participants) const {
  return cfg_.barrier_base + cfg_.barrier_per_proc * participants;
}

double Machine::access_slow(int proc, Int byte_addr, bool is_write) {
  const Int line = byte_addr / cfg_.l1.line_bytes;
  const int word =
      static_cast<int>((byte_addr % cfg_.l1.line_bytes) / 4);  // 4B words
  Proc& p = procs_[static_cast<size_t>(proc)];
  ProcStats& st = stats_[static_cast<size_t>(proc)];
  ++st.accesses;

  Line& dir = directory_[line];
  const std::uint64_t self = 1ull << proc;
  double latency = 0;

  const bool in_l1 = lookup(p.l1, line);
  const bool in_l2 = in_l1 || lookup(p.l2, line);

  if (in_l2) {
    latency = in_l1 ? cfg_.lat_l1 : cfg_.lat_l2;
    if (in_l1)
      ++st.l1_hits;
    else {
      ++st.l2_hits;
      insert(proc, p.l1, line);
    }
    if (is_write) {
      if (dir.dirty_owner != proc) {
        // Upgrade: invalidate the other sharers.
        const std::uint64_t others = dir.sharers & ~self;
        if (others != 0) {
          ++st.upgrades;
          latency += cfg_.lat_remote - cfg_.lat_l1;  // ownership round trip
          for (int q = 0; q < cfg_.procs; ++q)
            if (others & (1ull << q)) {
              drop_line(q, line);
              dir.invalidated_from |= (1ull << q);
            }
          dir.last_inval_word = static_cast<std::uint8_t>(word);
          dir.sharers = self;
        }
        dir.dirty_owner = proc;
      }
    }
    dir.sharers |= self;
    dir.touched = true;
    p.l1.fast[static_cast<size_t>(line % p.l1.lines)] = static_cast<
        std::uint8_t>(kReadFast | (dir.dirty_owner == proc ? kWriteFast : 0));
    st.memory_cycles += latency;
    return latency;
  }

  // Miss: classify.
  if (!dir.touched) {
    ++st.cold_misses;
  } else if (dir.invalidated_from & self) {
    if (dir.last_inval_word == static_cast<std::uint8_t>(word))
      ++st.coherence_true;
    else
      ++st.coherence_false;
    dir.invalidated_from &= ~self;
  } else {
    ++st.replace_misses;
  }
  dir.touched = true;

  // Fetch latency by where the data lives.
  const int home = home_cluster(line);
  const bool local = home == cfg_.cluster_of(proc);
  if (dir.dirty_owner >= 0 && dir.dirty_owner != proc) {
    latency = cfg_.lat_remote_dirty;
    ++st.remote_dirty_fills;
  } else if (local) {
    latency = cfg_.lat_local;
    ++st.local_fills;
  } else {
    latency = cfg_.lat_remote;
    ++st.remote_fills;
  }

  if (is_write) {
    // Invalidate every other copy.
    const std::uint64_t others = dir.sharers & ~self;
    for (int q = 0; q < cfg_.procs; ++q)
      if (others & (1ull << q)) {
        drop_line(q, line);
        dir.invalidated_from |= (1ull << q);
      }
    if (others != 0) dir.last_inval_word = static_cast<std::uint8_t>(word);
    dir.sharers = self;
    dir.dirty_owner = proc;
  } else {
    if (dir.dirty_owner >= 0 && dir.dirty_owner != proc) {
      clear_write_fast(dir.dirty_owner, line);
      dir.dirty_owner = -1;  // downgraded to shared, memory updated
    }
    dir.sharers |= self;
  }

  insert(proc, p.l2, line);
  insert(proc, p.l1, line);
  p.l1.fast[static_cast<size_t>(line % p.l1.lines)] = static_cast<
      std::uint8_t>(kReadFast | (dir.dirty_owner == proc ? kWriteFast : 0));
  st.memory_cycles += latency;
  return latency;
}

ProcStats Machine::stats(int proc) const {
  ProcStats s = stats_[static_cast<size_t>(proc)];
  const long long fh = fast_hits_[static_cast<size_t>(proc)];
  s.accesses += fh;
  s.l1_hits += fh;
  s.dir_fast_hits += fh;
  s.memory_cycles += static_cast<double>(fh) * cfg_.lat_l1;
  return s;
}

ProcStats Machine::total_stats() const {
  ProcStats total;
  for (int p = 0; p < cfg_.procs; ++p) total.add(stats(p));
  return total;
}

}  // namespace dct::machine
