#include "hpf/hpf.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::hpf {

using decomp::DimDistribution;
using decomp::DistKind;

namespace {

/// Malformed-directive failure: a structured kInvalidArgument error whose
/// context chain carries the source line, so the experiment harness (and
/// tests) can attribute the failure without parsing the message.
[[noreturn]] void parse_fail(int lineno, const std::string& msg) {
  Error e(Error::Code::kInvalidArgument, msg);
  e.with_context(strf("hpf line %d", lineno));
  throw e;
}

/// Tiny recursive-descent tokenizer over one directive line.
class Cursor {
 public:
  Cursor(const std::string& line, int lineno)
      : s_(line), lineno_(lineno) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c))
      parse_fail(lineno_,
                 strf("expected '%c' near position %zu", c, pos_));
  }
  std::string ident() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) parse_fail(lineno_, "identifier expected");
    std::string out = s_.substr(start, pos_ - start);
    std::transform(out.begin(), out.end(), out.begin(), ::toupper);
    return out;
  }
  long number() {
    skip_ws();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ == start ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_ - 1])))
      parse_fail(lineno_, "number expected");
    try {
      return std::stol(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      parse_fail(lineno_, "number out of range");
    }
  }
  bool peek_alpha() {
    skip_ws();
    return pos_ < s_.size() &&
           std::isalpha(static_cast<unsigned char>(s_[pos_]));
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  int lineno() const { return lineno_; }

 private:
  std::string s_;
  size_t pos_ = 0;
  int lineno_;
};

struct Template {
  int rank = 0;
  std::vector<DimDistribution> dist;  ///< empty until DISTRIBUTE seen
};

/// ALIGN A(i,j) WITH T(j, i+1): for each template dim, the source array
/// dim (or -1 for a constant/replicated subscript).
struct Alignment {
  std::string target;                 ///< template or array name
  std::vector<int> array_dim_of_tdim; ///< per target dim
};

std::vector<DimDistribution> parse_dist_format(Cursor& c) {
  std::vector<DimDistribution> dims;
  c.expect('(');
  while (true) {
    DimDistribution d;
    if (c.eat('*')) {
      d.kind = DistKind::Serial;
    } else {
      const std::string kw = c.ident();
      if (kw == "BLOCK") {
        d.kind = DistKind::Block;
      } else if (kw == "CYCLIC") {
        d.kind = DistKind::Cyclic;
        if (c.eat('(')) {
          d.block = c.number();
          if (d.block < 1)
            parse_fail(c.lineno(),
                       strf("CYCLIC block must be positive, got %lld",
                            static_cast<long long>(d.block)));
          if (d.block > 1) d.kind = DistKind::BlockCyclic;
          c.expect(')');
        }
      } else {
        parse_fail(c.lineno(),
                   strf("unknown distribution '%s' (expected BLOCK, "
                        "CYCLIC or *)",
                        kw.c_str()));
      }
    }
    dims.push_back(d);
    if (c.eat(')')) break;
    c.expect(',');
  }
  return dims;
}

}  // namespace

Directives parse(const ir::Program& prog, const std::string& text) {
  struct PendingAlign {
    std::string array;
    Alignment al;
    int lineno = 0;
  };
  std::map<std::string, Template> templates;
  std::map<std::string, std::vector<DimDistribution>> direct;  // array name
  std::vector<PendingAlign> aligns;

  auto array_rank = [&](const std::string& name) -> int {
    for (const auto& a : prog.arrays) {
      std::string n = a.name;
      std::transform(n.begin(), n.end(), n.begin(), ::toupper);
      if (n == name) return static_cast<int>(a.dims.size());
    }
    return -1;
  };

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments (!HPF$ prefixes and ! comments).
    if (const size_t bang = line.find('!'); bang != std::string::npos) {
      std::string rest = line.substr(bang);
      std::string upper = rest;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (upper.rfind("!HPF$", 0) == 0)
        line = line.substr(bang + 5);
      else
        line = line.substr(0, bang);
    }
    Cursor c(line, lineno);
    if (c.at_end()) continue;
    const std::string kw = c.ident();
    if (kw == "TEMPLATE") {
      const std::string name = c.ident();
      Template t;
      c.expect('(');
      while (true) {
        c.number();  // extents recorded but unused (offsets are ignored)
        ++t.rank;
        if (c.eat(')')) break;
        c.expect(',');
      }
      templates[name] = t;
    } else if (kw == "DISTRIBUTE") {
      const std::string name = c.ident();
      auto dims = parse_dist_format(c);
      if (auto it = templates.find(name); it != templates.end()) {
        if (static_cast<int>(dims.size()) != it->second.rank)
          parse_fail(lineno,
                     strf("template %s has rank %d but DISTRIBUTE names %zu "
                          "dimensions",
                          name.c_str(), it->second.rank, dims.size()));
        it->second.dist = std::move(dims);
      } else {
        const int rank = array_rank(name);
        if (rank < 0)
          parse_fail(lineno, strf("unknown array or template %s",
                                  name.c_str()));
        if (static_cast<int>(dims.size()) != rank)
          parse_fail(lineno,
                     strf("array %s has rank %d but DISTRIBUTE names %zu "
                          "dimensions",
                          name.c_str(), rank, dims.size()));
        direct[name] = std::move(dims);
      }
    } else if (kw == "ALIGN") {
      const std::string array = c.ident();
      if (array_rank(array) < 0)
        parse_fail(lineno, strf("unknown array %s", array.c_str()));
      // Dummy variables of the array side.
      std::vector<std::string> dummies;
      c.expect('(');
      while (true) {
        dummies.push_back(c.ident());
        if (c.eat(')')) break;
        c.expect(',');
      }
      if (c.ident() != "WITH") parse_fail(lineno, "WITH expected");
      Alignment al;
      al.target = c.ident();
      c.expect('(');
      while (true) {
        int src = -1;
        if (c.eat('*')) {
          src = -1;  // replicated along this template dim
        } else if (c.peek_alpha()) {
          const std::string dummy = c.ident();
          const auto it = std::find(dummies.begin(), dummies.end(), dummy);
          if (it == dummies.end())
            parse_fail(lineno,
                       strf("unknown align dummy %s", dummy.c_str()));
          src = static_cast<int>(it - dummies.begin());
          // Offsets are ignored (paper 4.2): consume "+ n" / "- n".
          if (c.peek('+') || c.peek('-')) c.number();
        } else {
          c.number();  // constant subscript: collapsed dimension
        }
        al.array_dim_of_tdim.push_back(src);
        if (c.eat(')')) break;
        c.expect(',');
      }
      aligns.push_back({array, std::move(al), lineno});
    } else {
      parse_fail(lineno, strf("unknown directive %s (expected TEMPLATE, "
                              "DISTRIBUTE or ALIGN)",
                              kw.c_str()));
    }
  }

  // Resolve: direct distributions plus template alignments, assigning
  // virtual processor dimensions in first-seen order per (target, dim).
  Directives out;
  int next_proc_dim = 0;
  std::map<std::pair<std::string, int>, int> proc_dim_of;

  auto resolve_dims = [&](const std::string& key,
                          const std::vector<DimDistribution>& fmt,
                          const std::vector<int>& src_map, int rank) {
    decomp::ArrayDecomposition ad;
    ad.dims.assign(static_cast<size_t>(rank), DimDistribution{});
    for (size_t td = 0; td < fmt.size(); ++td) {
      if (fmt[td].kind == DistKind::Serial) continue;
      const int src = td < src_map.size() ? src_map[td] : static_cast<int>(td);
      if (src < 0 || src >= rank) continue;  // replicated/collapsed
      DimDistribution d = fmt[td];
      const auto k = std::make_pair(key, static_cast<int>(td));
      if (!proc_dim_of.count(k)) proc_dim_of[k] = next_proc_dim++;
      d.proc_dim = proc_dim_of[k];
      ad.dims[static_cast<size_t>(src)] = d;
    }
    return ad;
  };

  for (const auto& [name, fmt] : direct) {
    std::vector<int> identity(fmt.size());
    for (size_t i = 0; i < fmt.size(); ++i) identity[i] = static_cast<int>(i);
    out.arrays[name] =
        resolve_dims(name, fmt, identity, array_rank(name));
  }
  for (const auto& [array, al, al_line] : aligns) {
    const auto it = templates.find(al.target);
    if (it == templates.end() || it->second.dist.empty())
      parse_fail(al_line,
                 "ALIGN target " + al.target + " has no DISTRIBUTE");
    out.arrays[array] = resolve_dims(al.target, it->second.dist,
                                     al.array_dim_of_tdim, array_rank(array));
  }
  return out;
}

}  // namespace dct::hpf
