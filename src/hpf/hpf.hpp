// HPF directive front-end (paper Section 4.2, last paragraph, and
// Section 7): "HPF statements can also be used as input to the data
// transformation algorithm. If an array is aligned to a template which is
// then distributed, we must find the equivalent distribution on the array
// directly ... Any offsets in the alignment statement are ignored."
//
// Supported directive subset:
//   TEMPLATE T(100, 100)
//   DISTRIBUTE T(BLOCK, *)            kinds: BLOCK, CYCLIC, CYCLIC(b), *
//   ALIGN A(i, j) WITH T(j, i+1)      dimension permutation; offsets and
//                                     collapsed/replicated dims allowed
//   DISTRIBUTE A(CYCLIC, *)           direct distribution of an array
//
// The result is a decomp::ArrayDecomposition per named array, ready for
// layout::derive_layout — i.e. HPF programs get the same contiguity
// optimization on shared-address-space machines, the use case the paper's
// conclusion highlights.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "decomp/decomposition.hpp"
#include "ir/program.hpp"

namespace dct::hpf {

/// One parsed DISTRIBUTE format: a distribution kind per dimension.
struct Distribution {
  std::vector<decomp::DimDistribution> dims;
};

/// Result of processing a directive block.
struct Directives {
  /// Equivalent direct distribution per array name.
  std::map<std::string, decomp::ArrayDecomposition> arrays;
};

/// Parse a newline-separated block of directives. Arrays referenced by
/// ALIGN/DISTRIBUTE must exist in `prog` (templates need not). Virtual
/// processor dimensions are numbered in the order distributed dimensions
/// are first seen, consistently across aligned arrays.
/// Throws dct::Error with a line-precise message on malformed input.
Directives parse(const ir::Program& prog, const std::string& text);

}  // namespace dct::hpf
