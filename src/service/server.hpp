// The dctd request server: a worker pool draining a bounded queue of
// compile-and-execute requests against the content-addressed CompileCache.
//
// The serving model composes three prior layers of the repo:
//  * PR 1's pass pipeline is the unit of work (compile once per unique
//    cache key, execute per request);
//  * PR 3's fault isolation is the crash boundary — a request that throws
//    (malformed input, unsupported config, tripped deadline, a genuine
//    bug) produces a structured error Response and the worker moves on;
//  * PR 4's native backend and the simulator are alternative engines the
//    request selects at will, both running against the same immutable
//    cached artifact.
//
// Concurrency contract: submit() applies backpressure (blocks while the
// queue is full), workers pull in FIFO order, and every request carries a
// CancelToken armed from its deadline at submit time — a request that
// waited out its deadline in the queue fails fast without compiling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "support/cancel.hpp"

namespace dct::service {

/// What to do with the compiled program.
enum class Engine {
  Compile,   ///< compile (or hit the cache) only; no execution
  Simulate,  ///< run the DASH-class machine simulator
  Native     ///< run the threaded native backend (threads == procs)
};
const char* to_string(Engine e);
std::optional<Engine> parse_engine(const std::string& s);
std::optional<core::Mode> parse_mode(const std::string& s);

struct Request {
  std::string id;         ///< echoed in the Response
  std::string app;        ///< registered program name (see build_app)
  linalg::Int size = 64;  ///< problem size passed to the app builder
  int steps = 2;          ///< time steps for apps that take them
  std::string hpf;        ///< optional HPF directive block overriding the
                          ///< automatic data decomposition
  core::Mode mode = core::Mode::Full;
  int procs = 4;
  Engine engine = Engine::Simulate;
  double deadline_ms = 0;  ///< 0 = server default; < 0 = no deadline
  std::uint64_t seed = 42;
};

struct Response {
  std::string id;
  bool ok = false;
  std::string error_code;  ///< to_string(Error::Code) when !ok
  std::string error;       ///< top-level message when !ok
  std::string context;     ///< chained context lines, newline-joined

  bool cache_hit = false;
  bool deduped = false;  ///< joined another request's in-flight compile
  std::uint64_t key_hash = 0;

  double cycles = 0;          ///< simulator completion time
  double seconds = 0;         ///< native wall-clock
  long long statements = 0;   ///< statement instances executed
  std::uint64_t values_hash = 0;  ///< FNV over result array bit patterns

  double queue_ms = 0;
  double compile_ms = 0;
  double exec_ms = 0;
  double total_ms = 0;
};

struct ServerOptions {
  int workers = 2;
  std::size_t queue_cap = 64;   ///< submit() blocks beyond this depth
  std::size_t cache_cap = 32;   ///< CompileCache capacity (entries)
  double default_deadline_ms = 0;  ///< 0 = requests have no deadline
  /// Compilation knobs shared by every request — resolved ONCE (typically
  /// from the environment at process startup) and threaded explicitly;
  /// workers never consult getenv.
  core::CompileOptions compile;
  /// Run the static validation oracles on every Nth cache hit (0 = never):
  /// cheap continuous self-checking that a cached artifact still satisfies
  /// its invariants.
  int spot_check_every = 16;

  static ServerOptions from_env();
};

/// Build a registered application program. Throws Error(kInvalidArgument)
/// for unknown names or out-of-range sizes. The name "crash" is a fault-
/// injection hook that throws a plain std::runtime_error — it exists so
/// tests (and the CI smoke) can prove the crash boundary holds.
ir::Program build_app(const std::string& name, linalg::Int size, int steps);

/// FNV-1a over the bit patterns of every result element (order-sensitive,
/// bit-exact): two runs agree on this iff their results are bit-identical.
std::uint64_t values_fingerprint(
    const std::vector<std::vector<double>>& values);

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a request; blocks while the queue is at capacity
  /// (backpressure). The future resolves to a Response — never an
  /// exception; failures are structured error Responses.
  std::future<Response> submit(Request req);

  /// Enqueue a request whose Response is delivered by invoking `done` on
  /// the worker thread that served it (before the request counts as
  /// complete, so drain() implies every callback has returned). Same
  /// backpressure as submit().
  void submit_async(Request req, std::function<void(Response)> done);

  /// Synchronous convenience: submit and wait.
  Response call(Request req);

  /// Block until every accepted request has completed.
  void drain();

  /// Stop accepting work, drain the queue, join the workers. Idempotent.
  void shutdown();

  /// Metrics text dump (includes live cache stats and queue depth).
  std::string metrics_text() const;

  Metrics& metrics() { return metrics_; }
  const CompileCache& cache() const { return cache_; }
  std::size_t queue_depth() const;

 private:
  struct Item {
    Request req;
    support::CancelToken cancel;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Response> promise;          ///< submit() path
    std::function<void(Response)> callback;  ///< submit_async() path
    bool has_promise = false;
  };

  void enqueue(Item item);
  void worker_loop();
  Response process(Item& item);
  static void deliver(Item& item, Response resp);

  ServerOptions opts_;
  CompileCache cache_;
  Metrics metrics_;
  std::atomic<long> spot_counter_{0};  ///< cache hits, for spot cadence

  mutable std::mutex mu_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_idle_;
  std::deque<Item> queue_;
  int in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dct::service
