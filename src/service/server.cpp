#include "service/server.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "apps/apps.hpp"
#include "hpf/hpf.hpp"
#include "machine/machine.hpp"
#include "native/native.hpp"
#include "runtime/executor.hpp"
#include "support/env.hpp"
#include "support/str.hpp"
#include "verify/oracle.hpp"

namespace dct::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::string join_context(const Error& e) {
  std::string out;
  for (const std::string& frame : e.context()) {
    if (!out.empty()) out += '\n';
    out += frame;
  }
  return out;
}

}  // namespace

const char* to_string(Engine e) {
  switch (e) {
    case Engine::Compile: return "compile";
    case Engine::Simulate: return "simulate";
    case Engine::Native: return "native";
  }
  return "?";
}

std::optional<Engine> parse_engine(const std::string& s) {
  if (s == "compile") return Engine::Compile;
  if (s == "simulate" || s.empty()) return Engine::Simulate;
  if (s == "native") return Engine::Native;
  return std::nullopt;
}

std::optional<core::Mode> parse_mode(const std::string& s) {
  if (s == "base") return core::Mode::Base;
  if (s == "comp_decomp" || s == "compdecomp") return core::Mode::CompDecomp;
  if (s == "full" || s.empty()) return core::Mode::Full;
  return std::nullopt;
}

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.workers = static_cast<int>(env_int("DCT_SERVICE_WORKERS", 2));
  o.queue_cap =
      static_cast<std::size_t>(env_int("DCT_SERVICE_QUEUE_CAP", 64));
  o.cache_cap =
      static_cast<std::size_t>(env_int("DCT_SERVICE_CACHE_CAP", 32));
  o.default_deadline_ms =
      static_cast<double>(env_int("DCT_SERVICE_DEADLINE_MS", 0));
  o.compile = core::CompileOptions::from_env();
  return o;
}

ir::Program build_app(const std::string& name, linalg::Int size, int steps) {
  if (name == "crash")
    // Deliberate non-dct exception: exercises the kFault crash boundary.
    throw std::runtime_error("injected crash (app \"crash\")");
  DCT_CHECK(size >= 4 && size <= 1024,
            strf("app size %lld out of range [4, 1024]",
                 static_cast<long long>(size)));
  DCT_CHECK(steps >= 1 && steps <= 64,
            strf("app steps %d out of range [1, 64]", steps));
  if (name == "figure1") return apps::figure1(size, steps);
  if (name == "vpenta") return apps::vpenta(size);
  if (name == "lu") return apps::lu(size);
  if (name == "stencil5") return apps::stencil5(size, steps);
  if (name == "adi") return apps::adi(size, steps);
  if (name == "erlebacher") return apps::erlebacher(size, steps);
  if (name == "swm256") return apps::swm256(size, steps);
  if (name == "tomcatv") return apps::tomcatv(size, steps);
  throw Error(Error::Code::kInvalidArgument,
              strf("unknown app \"%s\" (known: figure1 vpenta lu stencil5 "
                   "adi erlebacher swm256 tomcatv)",
                   name.c_str()));
}

std::uint64_t values_fingerprint(
    const std::vector<std::vector<double>>& values) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  for (const std::vector<double>& arr : values) {
    mix(arr.size());
    for (const double d : arr) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof bits);
      mix(bits);
    }
  }
  return h;
}

Server::Server(const ServerOptions& opts)
    : opts_(opts), cache_(opts.cache_cap) {
  DCT_CHECK(opts_.workers >= 1, "server needs at least one worker");
  DCT_CHECK(opts_.queue_cap >= 1, "server queue capacity must be >= 1");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Server::~Server() { shutdown(); }

void Server::deliver(Item& item, Response resp) {
  if (item.has_promise)
    item.promise.set_value(std::move(resp));
  else if (item.callback)
    item.callback(std::move(resp));
}

void Server::enqueue(Item item) {
  metrics_.on_received();
  const double dl = item.req.deadline_ms != 0 ? item.req.deadline_ms
                                              : opts_.default_deadline_ms;
  if (dl > 0) item.cancel = support::CancelToken::with_deadline_ms(dl);
  item.enqueued = Clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  cv_not_full_.wait(lock, [this] {
    return queue_.size() < opts_.queue_cap || stopping_;
  });
  if (stopping_) {
    lock.unlock();
    Response resp;
    resp.id = item.req.id;
    resp.error_code = to_string(Error::Code::kCancelled);
    resp.error = "server is shutting down";
    deliver(item, std::move(resp));
    return;
  }
  queue_.push_back(std::move(item));
  cv_not_empty_.notify_one();
}

std::future<Response> Server::submit(Request req) {
  Item item;
  item.req = std::move(req);
  item.has_promise = true;
  std::future<Response> fut = item.promise.get_future();
  enqueue(std::move(item));
  return fut;
}

void Server::submit_async(Request req, std::function<void(Response)> done) {
  Item item;
  item.req = std::move(req);
  item.callback = std::move(done);
  enqueue(std::move(item));
}

Response Server::call(Request req) { return submit(std::move(req)).get(); }

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock,
                [this] { return queue_.empty() && in_flight_ == 0; });
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

std::size_t Server::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::string Server::metrics_text() const {
  return metrics_.render(cache_.stats(), queue_depth());
}

void Server::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_empty_.wait(lock,
                         [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        // stopping_ with an empty queue: done. (A non-empty queue is
        // drained even during shutdown so accepted requests complete.)
        return;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      cv_not_full_.notify_one();
    }

    deliver(item, process(item));

    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

Response Server::process(Item& item) {
  const Request& req = item.req;
  Response resp;
  resp.id = req.id;

  const Clock::time_point dequeued = Clock::now();
  resp.queue_ms =
      std::chrono::duration<double, std::milli>(dequeued - item.enqueued)
          .count();

  double compile_ms = 0, exec_ms = 0;
  try {
    item.cancel.check("dctd queue wait");
    DCT_CHECK(req.procs >= 1 && req.procs <= 64,
              strf("procs %d out of range [1, 64]", req.procs));

    const ir::Program prog = build_app(req.app, req.size, req.steps);
    core::CompileOptions copts = opts_.compile;
    const std::string key =
        cache_key(prog, req.mode, req.procs, copts, req.hpf);
    resp.key_hash = fnv1a(key);

    const Clock::time_point c0 = Clock::now();
    const CompileCache::Lookup looked =
        cache_.get_or_compile(key, [&]() -> CompileCache::Compiled {
          if (req.hpf.empty())
            return std::make_shared<const core::CompiledProgram>(
                core::compile(prog, req.mode, req.procs, copts));
          // HPF bridge: run the automatic decomposition, then override the
          // data decomposition of every array the directives name. Virtual
          // processor dimensions in the directives must fit the automatic
          // decomposition's processor space — remapping a larger directive
          // grid is out of scope for the service.
          decomp::ProgramDecomposition dec =
              decomp::decompose(prog, copts.decomp);
          const hpf::Directives dirs = hpf::parse(prog, req.hpf);
          for (const auto& [name, ad] : dirs.arrays) {
            for (const decomp::DimDistribution& d : ad.dims)
              if (d.proc_dim >= dec.num_proc_dims)
                throw Error(
                    Error::Code::kUnsupportedConfig,
                    strf("HPF directive for \"%s\" uses processor dim %d "
                         "but the decomposition has %d",
                         name.c_str(), d.proc_dim, dec.num_proc_dims));
            const int id = prog.array_id(name);
            dec.arrays[static_cast<std::size_t>(id)] = ad;
          }
          return std::make_shared<const core::CompiledProgram>(
              core::compile_with_decomposition(prog, std::move(dec),
                                               req.mode, req.procs, copts));
        });
    compile_ms = ms_since(c0);
    resp.cache_hit = looked.hit;
    resp.deduped = looked.deduped;
    const core::CompiledProgram& cp = *looked.program;

    if (looked.hit) {
      metrics_.on_cache_hit();
      if (opts_.spot_check_every > 0 &&
          spot_counter_.fetch_add(1, std::memory_order_relaxed) %
                  opts_.spot_check_every ==
              0) {
        metrics_.on_spot_check();
        verify::validate_compiled(cp).raise_if_violated(
            strf("cache spot-check %s", req.app.c_str()));
      }
    }

    item.cancel.check("dctd post-compile");
    const Clock::time_point e0 = Clock::now();
    switch (req.engine) {
      case Engine::Compile:
        break;
      case Engine::Simulate: {
        runtime::ExecOptions eo;
        eo.init_seed = req.seed;
        eo.cancel = item.cancel;
        const runtime::RunResult rr =
            runtime::simulate(cp, machine::MachineConfig::dash(req.procs),
                              eo);
        resp.cycles = rr.cycles;
        resp.statements = rr.statements;
        resp.values_hash = values_fingerprint(rr.values);
        break;
      }
      case Engine::Native: {
        native::NativeOptions no;
        no.threads = req.procs;
        no.init_seed = req.seed;
        const native::NativeResult nr = native::run_native(cp, no);
        resp.seconds = nr.seconds;
        resp.statements = nr.statements;
        resp.values_hash = values_fingerprint(nr.values);
        break;
      }
    }
    exec_ms = ms_since(e0);
    resp.ok = true;
  } catch (const Error& e) {
    // Crash boundary tier 1: structured dct errors pass through verbatim.
    resp.ok = false;
    resp.error_code = to_string(e.code());
    resp.error = e.what();
    resp.context = join_context(e);
  } catch (const std::exception& e) {
    // Tier 2: foreign exceptions become kFault — the request failed but
    // the worker (and every other queued request) is unaffected.
    resp.ok = false;
    resp.error_code = to_string(Error::Code::kFault);
    resp.error = e.what();
  } catch (...) {
    resp.ok = false;
    resp.error_code = to_string(Error::Code::kFault);
    resp.error = "unknown exception";
  }

  resp.compile_ms = compile_ms;
  resp.exec_ms = exec_ms;
  resp.total_ms = resp.queue_ms + ms_since(dequeued);

  RequestSample sample;
  sample.queue_us = resp.queue_ms * 1000.0;
  sample.compile_us = resp.compile_ms * 1000.0;
  sample.exec_us = resp.exec_ms * 1000.0;
  sample.total_us = resp.total_ms * 1000.0;
  Error::Code code = Error::Code::kGeneric;
  if (!resp.ok) {
    for (int c = 0; c <= static_cast<int>(Error::Code::kFault); ++c)
      if (resp.error_code == to_string(static_cast<Error::Code>(c)))
        code = static_cast<Error::Code>(c);
  }
  metrics_.on_completed(sample, resp.ok, code);
  return resp;
}

}  // namespace dct::service
