#include "service/cache.hpp"

#include <span>
#include <sstream>
#include <utility>

#include "support/diagnostics.hpp"

namespace dct::service {

namespace {

void put_vec(std::ostringstream& os, std::span<const linalg::Int> v) {
  os << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ',';
    os << v[i];
  }
  os << ']';
}

void put_expr(std::ostringstream& os, const ir::AffineExpr& e) {
  put_vec(os, e.coeffs);
  os << '+' << e.constant;
}

void put_bounds(std::ostringstream& os, const std::vector<ir::Bound>& bs) {
  os << '{';
  for (const ir::Bound& b : bs) {
    put_expr(os, b.expr);
    os << '/' << b.divisor << ';';
  }
  os << '}';
}

void put_ref(std::ostringstream& os, const ir::ArrayRef& r) {
  os << "a" << r.array << ":";
  os << r.access.rows() << 'x' << r.access.cols() << '[';
  for (int i = 0; i < r.access.rows(); ++i)
    for (int j = 0; j < r.access.cols(); ++j) os << r.access.at(i, j) << ',';
  os << ']';
  put_vec(os, r.offset);
}

}  // namespace

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string cache_key(const ir::Program& prog, core::Mode mode, int procs,
                      const core::CompileOptions& opts,
                      const std::string& salt) {
  std::ostringstream os;
  os.precision(17);  // compute_cycles round-trips exactly
  os << "v1|prog=" << prog.name << "|steps=" << prog.time_steps << "|";
  for (const ir::ArrayDecl& a : prog.arrays) {
    os << "arr " << a.name << ':';
    put_vec(os, a.dims);
    os << 'e' << a.elem_size << (a.transformable ? 't' : 'f') << '|';
  }
  for (const ir::LoopNest& n : prog.nests) {
    os << "nest " << n.name << ":f" << n.frequency << ':';
    for (const ir::Loop& l : n.loops) {
      os << l.var_name << ":lo";
      put_bounds(os, l.lowers);
      os << "up";
      put_bounds(os, l.uppers);
      os << ';';
    }
    for (const ir::Stmt& s : n.stmts) {
      // Evaluator closures cannot be fingerprinted; the structural parts
      // (shape, cost, reference pattern) plus the program name identify a
      // statement for caching purposes.
      os << "s:d" << s.depth << ":c" << s.compute_cycles << ":r";
      for (const ir::ArrayRef& r : s.reads) put_ref(os, r);
      os << ":w";
      if (s.write) put_ref(os, *s.write);
      os << ';';
    }
    os << '|';
  }
  os << "mode=" << static_cast<int>(mode) << "|P=" << procs
     << "|strat=" << static_cast<int>(opts.strategy)
     << "|validate=" << (opts.validate ? 1 : 0)
     << "|native=" << (opts.native_check ? 1 : 0)
     << "|dec=" << opts.decomp.max_proc_dims << ',' << opts.decomp.procs
     << ',' << opts.decomp.block_cyclic_block;
  if (!salt.empty()) os << "|salt=" << salt;
  return os.str();
}

CompileCache::CompileCache(std::size_t capacity) : capacity_(capacity) {
  DCT_CHECK(capacity >= 1, "cache capacity must be at least 1");
  stats_.capacity = capacity;
}

void CompileCache::evict_excess_locked() {
  while (lru_.size() > capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

CompileCache::Lookup CompileCache::get_or_compile(const std::string& key,
                                                  const CompileFn& compile) {
  std::promise<Compiled> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.ready) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return {it->second.future.get(), /*hit=*/true, /*deduped=*/false};
      }
      // Another request is compiling this key right now: join it.
      ++stats_.inflight_dedup;
      std::shared_future<Compiled> fut = it->second.future;
      lock.unlock();
      return {fut.get(), /*hit=*/false, /*deduped=*/true};
    }
    ++stats_.misses;
    Entry e;
    e.future = promise.get_future().share();
    entries_.emplace(key, std::move(e));
  }

  // The compile runs outside the lock (it is the expensive part and the
  // whole point of single-flight is to let other keys proceed meanwhile).
  Compiled result;
  try {
    result = compile();
    DCT_CHECK(result != nullptr, "compile function returned null");
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
      entries_.erase(key);
    }
    // Wake every joined waiter with the same failure, then rethrow for
    // the compiling caller.
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    // clear() may have raced us; reinsert so the result is not lost.
    if (it == entries_.end())
      it = entries_.emplace(key, Entry{}).first;
    it->second.ready = true;
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    evict_excess_locked();
  }
  promise.set_value(result);
  return {std::move(result), /*hit=*/false, /*deduped=*/false};
}

CompileCache::Compiled CompileCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return nullptr;
  return it->second.future.get();
}

CompileCache::Stats CompileCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void CompileCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Drop completed entries only; in-flight compiles finish and reinsert
  // themselves (see get_or_compile).
  for (const std::string& key : lru_) entries_.erase(key);
  lru_.clear();
}

}  // namespace dct::service
