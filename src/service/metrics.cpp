#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/str.hpp"

namespace dct::service {

namespace {

int bucket_of(double us) {
  if (us < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(us)));
  return std::clamp(b, 0, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record_us(double us) {
  buckets_[static_cast<size_t>(bucket_of(us))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<long long>(us), std::memory_order_relaxed);
}

double LatencyHistogram::mean_us() const {
  const long n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::quantile_us(double q) const {
  // Snapshot the buckets; concurrent recording can skew a quantile by at
  // most the records that land mid-scan, which is fine for a dashboard.
  std::array<long, kBuckets> snap{};
  long total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(i)];
  }
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  long seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target)
      return std::pow(2.0, i + 1);  // bucket upper bound
  }
  return std::pow(2.0, kBuckets);
}

void Metrics::on_completed(const RequestSample& s, bool ok, Error::Code code) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    const int c = std::clamp(static_cast<int>(code), 0, kCodes - 1);
    by_code_[static_cast<size_t>(c)].fetch_add(1, std::memory_order_relaxed);
  }
  queue_.record_us(s.queue_us);
  compile_.record_us(s.compile_us);
  exec_.record_us(s.exec_us);
  total_.record_us(s.total_us);
}

std::string Metrics::render(const CompileCache::Stats& cache,
                            std::size_t queue_depth) const {
  std::ostringstream os;
  os << "dctd_requests_total " << received() << "\n"
     << "dctd_requests_completed " << completed() << "\n"
     << "dctd_requests_ok " << ok() << "\n"
     << "dctd_requests_error " << errors() << "\n"
     << "dctd_requests_rejected "
     << rejected_.load(std::memory_order_relaxed) << "\n";
  for (int c = 0; c < kCodes; ++c) {
    const long n = by_code_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
    if (n > 0)
      os << "dctd_requests_error_code{code=\""
         << to_string(static_cast<Error::Code>(c)) << "\"} " << n << "\n";
  }
  os << "dctd_cache_hits " << cache.hits << "\n"
     << "dctd_cache_misses " << cache.misses << "\n"
     << "dctd_cache_evictions " << cache.evictions << "\n"
     << "dctd_cache_inflight_dedup " << cache.inflight_dedup << "\n"
     << "dctd_cache_failures " << cache.failures << "\n"
     << "dctd_cache_entries " << cache.entries << "\n"
     << "dctd_cache_capacity " << cache.capacity << "\n"
     << "dctd_cache_spot_checks "
     << spot_checks_.load(std::memory_order_relaxed) << "\n"
     << "dctd_queue_depth " << queue_depth << "\n";
  const struct {
    const char* stage;
    const LatencyHistogram* h;
  } stages[] = {{"queue", &queue_},
                {"compile", &compile_},
                {"exec", &exec_},
                {"total", &total_}};
  for (const auto& [stage, h] : stages) {
    os << strf("dctd_latency_ms{stage=\"%s\",quantile=\"p50\"} %.3f\n", stage,
               h->quantile_us(0.50) / 1000.0)
       << strf("dctd_latency_ms{stage=\"%s\",quantile=\"p95\"} %.3f\n", stage,
               h->quantile_us(0.95) / 1000.0)
       << strf("dctd_latency_ms{stage=\"%s\",quantile=\"p99\"} %.3f\n", stage,
               h->quantile_us(0.99) / 1000.0)
       << strf("dctd_latency_ms{stage=\"%s\",quantile=\"mean\"} %.3f\n",
               stage, h->mean_us() / 1000.0);
  }
  return os.str();
}

}  // namespace dct::service
