// Content-addressed compilation cache (the serving layer's workhorse).
//
// The pass pipeline (decompose → fold-select → layout → lower) is a pure,
// expensive function of (program IR, mode, P, layout-relevant options) —
// exactly the shape serving stacks hide behind a cache. CompileCache maps
// a canonical fingerprint of those inputs to a shared_ptr<const
// CompiledProgram>; entries are immutable after insertion, so any number
// of concurrent requests can simulate / natively execute the same compiled
// artifact without copying (simulate() and run_native() take const refs
// and allocate all mutable state internally).
//
// Properties:
//  * content-addressed — the key is a canonical text serialization of the
//    structural IR plus the compile options (see cache_key); statement
//    evaluator closures are not serializable, so the program name (unique
//    per registered app builder in the service) is part of the canonical
//    text as a tie-breaker against closure-only differences;
//  * single-flight — N concurrent requests for the same key trigger
//    exactly one compile; the rest block on a shared_future and are
//    counted as in-flight dedups;
//  * LRU-bounded — completed entries beyond the capacity are evicted in
//    least-recently-used order (in-flight compiles are never evicted; the
//    resident count can transiently exceed the capacity while more than
//    `capacity` distinct keys are compiling simultaneously);
//  * failure-transparent — a failing compile propagates its exception to
//    every waiter and leaves no entry behind, so the next request retries.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/compiler.hpp"

namespace dct::service {

/// Canonical text serialization of everything layout-relevant about a
/// compilation request: the structural IR (arrays, nests, bounds, access
/// matrices, statement shapes — evaluator closures excluded), the mode,
/// the processor count, and the options that change the compiled artifact
/// (address strategy, decomposition knobs, validate/native-check).
/// `salt` folds in request context the IR cannot express (e.g. the HPF
/// directive text a request carried).
std::string cache_key(const ir::Program& prog, core::Mode mode, int procs,
                      const core::CompileOptions& opts,
                      const std::string& salt = {});

/// FNV-1a 64-bit hash (exposed for fingerprint display and tests).
std::uint64_t fnv1a(const std::string& s);

class CompileCache {
 public:
  using Compiled = std::shared_ptr<const core::CompiledProgram>;
  using CompileFn = std::function<Compiled()>;

  /// `capacity` >= 1: maximum number of completed entries kept resident.
  explicit CompileCache(std::size_t capacity);

  struct Lookup {
    Compiled program;
    bool hit = false;      ///< served from a completed entry
    bool deduped = false;  ///< joined another request's in-flight compile
  };

  /// Return the cached program for `key`, or run `compile` (on the calling
  /// thread) and cache its result. Exactly one caller per key compiles at
  /// a time; concurrent callers for the same key wait for that compile.
  /// Exceptions from `compile` propagate to every waiting caller and the
  /// entry is dropped.
  Lookup get_or_compile(const std::string& key, const CompileFn& compile);

  /// Peek without compiling; null when absent or still in flight.
  Compiled lookup(const std::string& key);

  struct Stats {
    long hits = 0;
    long misses = 0;          ///< lookups that ran a compile
    long evictions = 0;
    long inflight_dedup = 0;  ///< lookups that joined an in-flight compile
    long failures = 0;        ///< compiles that threw
    std::size_t entries = 0;  ///< completed entries resident now
    std::size_t capacity = 0;
  };
  Stats stats() const;

  void clear();

 private:
  struct Entry {
    std::shared_future<Compiled> future;
    bool ready = false;
    /// Position in lru_ (valid only when ready).
    std::list<std::string>::iterator lru_pos;
  };

  void evict_excess_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used, ready keys
  Stats stats_;
};

}  // namespace dct::service
