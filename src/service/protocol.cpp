#include "service/protocol.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "support/str.hpp"

namespace dct::service {

namespace {

[[noreturn]] void bad(const std::string& why, std::size_t pos) {
  throw Error(Error::Code::kInvalidArgument,
              strf("malformed JSON at offset %zu: %s", pos, why.c_str()));
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
    ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  if (s[i] != '"') bad("expected '\"'", i);
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i];
    if (c == '\\') {
      ++i;
      if (i >= s.size()) bad("dangling escape", i);
      switch (s[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        default: bad(strf("unsupported escape '\\%c'", s[i]), i);
      }
    }
    out += c;
    ++i;
  }
  if (i >= s.size()) bad("unterminated string", i);
  ++i;  // closing quote
  return out;
}

std::string parse_scalar(const std::string& s, std::size_t& i) {
  if (s[i] == '"') return parse_string(s, i);
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[i])))
    ++i;
  const std::string tok = s.substr(start, i - start);
  if (tok.empty()) bad("expected a value", start);
  if (tok == "true" || tok == "false" || tok == "null") return tok;
  // Validate as a number so garbage is rejected here, not downstream.
  char* end = nullptr;
  std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) bad("invalid literal: " + tok, start);
  return tok;
}

long require_long(const std::map<std::string, std::string>& kv,
                  const std::string& key, long def, long lo, long hi) {
  const auto it = kv.find(key);
  if (it == kv.end()) return def;
  char* end = nullptr;
  const double d = std::strtod(it->second.c_str(), &end);
  const long v = static_cast<long>(d);
  if (end != it->second.c_str() + it->second.size() ||
      static_cast<double>(v) != d)
    throw Error(Error::Code::kInvalidArgument,
                strf("field \"%s\": expected an integer, got \"%s\"",
                     key.c_str(), it->second.c_str()));
  if (v < lo || v > hi)
    throw Error(Error::Code::kInvalidArgument,
                strf("field \"%s\": %ld out of range [%ld, %ld]",
                     key.c_str(), v, lo, hi));
  return v;
}

void escape_into(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << strf("\\u%04x", c);
        else
          os << c;
    }
  }
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> kv;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') bad("expected '{'", i);
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, i);
      if (i >= line.size()) bad("unterminated object", i);
      const std::string key = parse_string(line, i);
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') bad("expected ':'", i);
      ++i;
      skip_ws(line, i);
      if (i >= line.size()) bad("missing value", i);
      kv[key] = parse_scalar(line, i);
      skip_ws(line, i);
      if (i >= line.size()) bad("unterminated object", i);
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      bad("expected ',' or '}'", i);
    }
  }
  skip_ws(line, i);
  if (i != line.size()) bad("trailing characters", i);
  return kv;
}

ParsedLine parse_line(const std::string& line) {
  const std::map<std::string, std::string> kv = parse_flat_json(line);
  ParsedLine out;

  if (const auto cmd = kv.find("cmd"); cmd != kv.end()) {
    if (cmd->second == "metrics") {
      out.kind = ParsedLine::Kind::kMetrics;
    } else if (cmd->second == "drain") {
      out.kind = ParsedLine::Kind::kDrain;
    } else if (cmd->second == "shutdown") {
      out.kind = ParsedLine::Kind::kShutdown;
    } else {
      throw Error(Error::Code::kInvalidArgument,
                  "unknown cmd \"" + cmd->second + "\"");
    }
    return out;
  }

  out.kind = ParsedLine::Kind::kRequest;
  Request& r = out.request;
  if (const auto it = kv.find("id"); it != kv.end()) r.id = it->second;
  if (const auto it = kv.find("app"); it != kv.end()) {
    r.app = it->second;
  } else {
    throw Error(Error::Code::kInvalidArgument,
                "request is missing the \"app\" field");
  }
  if (const auto it = kv.find("hpf"); it != kv.end()) r.hpf = it->second;
  r.size = require_long(kv, "size", 64, 1, 1 << 20);
  r.steps = static_cast<int>(require_long(kv, "steps", 2, 1, 1 << 20));
  r.procs = static_cast<int>(require_long(kv, "procs", 4, 1, 1 << 20));
  r.seed = static_cast<std::uint64_t>(
      require_long(kv, "seed", 42, 0, 1L << 62));
  if (const auto it = kv.find("deadline_ms"); it != kv.end()) {
    char* end = nullptr;
    r.deadline_ms = std::strtod(it->second.c_str(), &end);
    if (end != it->second.c_str() + it->second.size())
      throw Error(Error::Code::kInvalidArgument,
                  "field \"deadline_ms\": expected a number");
  }
  if (const auto it = kv.find("mode"); it != kv.end()) {
    const std::optional<core::Mode> m = parse_mode(it->second);
    if (!m)
      throw Error(Error::Code::kInvalidArgument,
                  "unknown mode \"" + it->second +
                      "\" (known: base comp_decomp full)");
    r.mode = *m;
  }
  if (const auto it = kv.find("engine"); it != kv.end()) {
    const std::optional<Engine> e = parse_engine(it->second);
    if (!e)
      throw Error(Error::Code::kInvalidArgument,
                  "unknown engine \"" + it->second +
                      "\" (known: compile simulate native)");
    r.engine = *e;
  }
  return out;
}

std::string to_json(const Response& resp) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"id\":\"";
  escape_into(os, resp.id);
  os << "\",\"ok\":" << (resp.ok ? "true" : "false");
  if (!resp.ok) {
    os << ",\"error_code\":\"";
    escape_into(os, resp.error_code);
    os << "\",\"error\":\"";
    escape_into(os, resp.error);
    os << "\"";
    if (!resp.context.empty()) {
      os << ",\"context\":\"";
      escape_into(os, resp.context);
      os << "\"";
    }
  }
  os << ",\"cache_hit\":" << (resp.cache_hit ? "true" : "false")
     << ",\"deduped\":" << (resp.deduped ? "true" : "false");
  if (resp.key_hash != 0)
    os << ",\"key\":\"" << strf("%016llx",
                                static_cast<unsigned long long>(
                                    resp.key_hash))
       << "\"";
  if (resp.ok) {
    if (resp.cycles > 0) os << ",\"cycles\":" << resp.cycles;
    if (resp.seconds > 0) os << ",\"seconds\":" << resp.seconds;
    if (resp.statements > 0) os << ",\"statements\":" << resp.statements;
    if (resp.values_hash != 0)
      os << ",\"values\":\""
         << strf("%016llx",
                 static_cast<unsigned long long>(resp.values_hash))
         << "\"";
  }
  os << strf(",\"queue_ms\":%.3f,\"compile_ms\":%.3f,\"exec_ms\":%.3f,"
             "\"total_ms\":%.3f}",
             resp.queue_ms, resp.compile_ms, resp.exec_ms, resp.total_ms);
  return os.str();
}

}  // namespace dct::service
