// The dctd wire protocol: JSON lines over stdin/stdout.
//
// Each input line is one flat JSON object — either a control command
//   {"cmd": "metrics"}   print the metrics text dump
//   {"cmd": "drain"}     block until every accepted request completed
//   {"cmd": "shutdown"}  drain and exit
// or a request
//   {"id": "r1", "app": "lu", "size": 64, "mode": "full", "procs": 4,
//    "engine": "simulate", "steps": 2, "deadline_ms": 500,
//    "hpf": "!HPF$ DISTRIBUTE A(CYCLIC, *)", "seed": 42}
// (every field optional except "app"). Each response is one JSON object
// on one line. A malformed line yields an error response with
// code "invalid-argument" and the server keeps serving.
//
// The parser handles exactly the flat string/number/bool objects above —
// no nesting, no arrays — which keeps dctd dependency-free.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "service/server.hpp"

namespace dct::service {

/// One parsed input line.
struct ParsedLine {
  enum class Kind { kRequest, kMetrics, kDrain, kShutdown };
  Kind kind = Kind::kRequest;
  Request request;  ///< meaningful when kind == kRequest
};

/// Parse a flat JSON object into string key -> scalar-as-string values.
/// Throws Error(kInvalidArgument) with a position-precise message on
/// malformed input.
std::map<std::string, std::string> parse_flat_json(const std::string& line);

/// Parse one input line into a command or a Request.
/// Throws Error(kInvalidArgument) on malformed JSON or bad field values.
ParsedLine parse_line(const std::string& line);

/// Serialize a Response as one JSON line (no trailing newline).
std::string to_json(const Response& resp);

}  // namespace dct::service
