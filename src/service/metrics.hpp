// Serving-layer observability: request counters, per-stage latency
// histograms with p50/p95/p99 extraction, and a text dump — the PR 1
// remark/trace subsystem extended to the service tier. Everything here is
// lock-free (atomic counters and fixed log-scale buckets) so the hot path
// of every worker can record without contention.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "service/cache.hpp"
#include "support/diagnostics.hpp"

namespace dct::service {

/// Fixed log2-bucket latency histogram over microseconds: bucket i covers
/// [2^i, 2^(i+1)) us, so the range spans 1 us .. ~1 hour. Quantiles are
/// bucket upper bounds — accurate to a factor of two, plenty for p50/p95/
/// p99 dashboards (the sum/count pair recovers the exact mean).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void record_us(double us);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double mean_us() const;
  /// Upper bound of the bucket containing quantile q (0 < q <= 1), in us.
  double quantile_us(double q) const;

 private:
  std::array<std::atomic<long>, kBuckets> buckets_{};
  std::atomic<long> count_{0};
  std::atomic<long long> sum_us_{0};
};

/// One request's timing breakdown, recorded on completion.
struct RequestSample {
  double queue_us = 0;    ///< submit -> dequeue
  double compile_us = 0;  ///< cache lookup + compile (near-zero on hits)
  double exec_us = 0;     ///< simulate / native run
  double total_us = 0;    ///< submit -> response
};

class Metrics {
 public:
  void on_received() { received_.fetch_add(1, std::memory_order_relaxed); }
  /// `code` is consulted only when !ok.
  void on_completed(const RequestSample& s, bool ok, Error::Code code);
  void on_cache_hit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_spot_check() { spot_checks_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() {
    received_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  long received() const { return received_.load(std::memory_order_relaxed); }
  long completed() const { return completed_.load(std::memory_order_relaxed); }
  long ok() const { return ok_.load(std::memory_order_relaxed); }
  long errors() const { return errors_.load(std::memory_order_relaxed); }

  /// Text dump, one `dctd_<name>[{labels}] <value>` per line; cache stats
  /// and the live queue depth are supplied by the owner (the Server).
  std::string render(const CompileCache::Stats& cache,
                     std::size_t queue_depth) const;

 private:
  std::atomic<long> received_{0};
  std::atomic<long> completed_{0};
  std::atomic<long> ok_{0};
  std::atomic<long> errors_{0};
  std::atomic<long> rejected_{0};  ///< malformed before reaching the queue
  std::atomic<long> cache_hits_{0};
  std::atomic<long> spot_checks_{0};
  /// Per-error-code counters, indexed by Error::Code.
  static constexpr int kCodes = static_cast<int>(Error::Code::kFault) + 1;
  std::array<std::atomic<long>, kCodes> by_code_{};

  LatencyHistogram queue_, compile_, exec_, total_;
};

}  // namespace dct::service
