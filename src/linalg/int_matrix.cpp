#include "linalg/int_matrix.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "support/diagnostics.hpp"

namespace dct::linalg {

Int checked_add(Int a, Int b) {
  Int r = 0;
  DCT_CHECK(!__builtin_add_overflow(a, b, &r), "int64 add overflow");
  return r;
}

Int checked_sub(Int a, Int b) {
  Int r = 0;
  DCT_CHECK(!__builtin_sub_overflow(a, b, &r), "int64 sub overflow");
  return r;
}

Int checked_mul(Int a, Int b) {
  Int r = 0;
  DCT_CHECK(!__builtin_mul_overflow(a, b, &r), "int64 mul overflow");
  return r;
}

Int gcd(Int a, Int b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    const Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Int gcd(const Vec& v) {
  Int g = 0;
  for (Int x : v) g = gcd(g, x);
  return g;
}

Int ext_gcd(Int a, Int b, Int& x, Int& y) {
  if (b == 0) {
    x = (a < 0) ? -1 : 1;
    y = 0;
    return std::abs(a);
  }
  Int x1 = 0, y1 = 0;
  const Int g = ext_gcd(b, a % b, x1, y1);
  x = y1;
  y = checked_sub(x1, checked_mul(a / b, y1));
  return g;
}

Int floor_div(Int a, Int b) {
  DCT_CHECK(b != 0, "floor_div by zero");
  Int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

Int floor_mod(Int a, Int b) { return checked_sub(a, checked_mul(floor_div(a, b), b)); }

// ---------------------------------------------------------------------------
// IntMatrix basics
// ---------------------------------------------------------------------------

IntMatrix::IntMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0) {
  DCT_CHECK(rows >= 0 && cols >= 0);
}

IntMatrix::IntMatrix(std::initializer_list<std::initializer_list<Int>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const auto& r : rows) {
    DCT_CHECK(static_cast<int>(r.size()) == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

IntMatrix IntMatrix::identity(int n) {
  IntMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntMatrix IntMatrix::row_vector(const Vec& v) {
  IntMatrix m(1, static_cast<int>(v.size()));
  for (size_t i = 0; i < v.size(); ++i) m.at(0, static_cast<int>(i)) = v[i];
  return m;
}

IntMatrix IntMatrix::col_vector(const Vec& v) {
  IntMatrix m(static_cast<int>(v.size()), 1);
  for (size_t i = 0; i < v.size(); ++i) m.at(static_cast<int>(i), 0) = v[i];
  return m;
}

Int& IntMatrix::at(int r, int c) {
  DCT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index out of range");
  return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
               static_cast<size_t>(c)];
}

Int IntMatrix::at(int r, int c) const {
  DCT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index out of range");
  return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
               static_cast<size_t>(c)];
}

Vec IntMatrix::row(int r) const {
  Vec v(static_cast<size_t>(cols_));
  for (int c = 0; c < cols_; ++c) v[static_cast<size_t>(c)] = at(r, c);
  return v;
}

Vec IntMatrix::col(int c) const {
  Vec v(static_cast<size_t>(rows_));
  for (int r = 0; r < rows_; ++r) v[static_cast<size_t>(r)] = at(r, c);
  return v;
}

void IntMatrix::set_row(int r, const Vec& v) {
  DCT_CHECK(static_cast<int>(v.size()) == cols_, "row width mismatch");
  for (int c = 0; c < cols_; ++c) at(r, c) = v[static_cast<size_t>(c)];
}

IntMatrix IntMatrix::transposed() const {
  IntMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

IntMatrix IntMatrix::operator*(const IntMatrix& rhs) const {
  DCT_CHECK(cols_ == rhs.rows_, "matmul shape mismatch");
  IntMatrix out(rows_, rhs.cols_);
  for (int r = 0; r < rows_; ++r)
    for (int k = 0; k < cols_; ++k) {
      const Int a = at(r, k);
      if (a == 0) continue;
      for (int c = 0; c < rhs.cols_; ++c)
        out.at(r, c) = checked_add(out.at(r, c), checked_mul(a, rhs.at(k, c)));
    }
  return out;
}

Vec IntMatrix::operator*(const Vec& v) const {
  DCT_CHECK(static_cast<int>(v.size()) == cols_, "matvec shape mismatch");
  Vec out(static_cast<size_t>(rows_), 0);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      out[static_cast<size_t>(r)] =
          checked_add(out[static_cast<size_t>(r)],
                      checked_mul(at(r, c), v[static_cast<size_t>(c)]));
  return out;
}

IntMatrix IntMatrix::operator+(const IntMatrix& rhs) const {
  DCT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  IntMatrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      out.at(r, c) = checked_add(at(r, c), rhs.at(r, c));
  return out;
}

IntMatrix IntMatrix::operator-(const IntMatrix& rhs) const {
  DCT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  IntMatrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      out.at(r, c) = checked_sub(at(r, c), rhs.at(r, c));
  return out;
}

IntMatrix IntMatrix::vstack(const IntMatrix& other) const {
  if (empty() && rows_ == 0) {
    if (cols_ == 0 || cols_ == other.cols_) return other;
  }
  DCT_CHECK(cols_ == other.cols_, "vstack width mismatch");
  IntMatrix out(rows_ + other.rows_, cols_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
  for (int r = 0; r < other.rows_; ++r)
    for (int c = 0; c < cols_; ++c) out.at(rows_ + r, c) = other.at(r, c);
  return out;
}

IntMatrix IntMatrix::hstack(const IntMatrix& other) const {
  DCT_CHECK(rows_ == other.rows_, "hstack height mismatch");
  IntMatrix out(rows_, cols_ + other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (int c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

IntMatrix IntMatrix::submatrix(int r0, int r1, int c0, int c1) const {
  DCT_CHECK(0 <= r0 && r0 <= r1 && r1 <= rows_, "bad row range");
  DCT_CHECK(0 <= c0 && c0 <= c1 && c1 <= cols_, "bad col range");
  IntMatrix out(r1 - r0, c1 - c0);
  for (int r = r0; r < r1; ++r)
    for (int c = c0; c < c1; ++c) out.at(r - r0, c - c0) = at(r, c);
  return out;
}

void IntMatrix::swap_rows(int a, int b) {
  for (int c = 0; c < cols_; ++c) std::swap(at(a, c), at(b, c));
}

void IntMatrix::scale_row(int r, Int s) {
  for (int c = 0; c < cols_; ++c) at(r, c) = checked_mul(at(r, c), s);
}

void IntMatrix::add_scaled_row(int dst, int src, Int s) {
  for (int c = 0; c < cols_; ++c)
    at(dst, c) = checked_add(at(dst, c), checked_mul(at(src, c), s));
}

std::string IntMatrix::to_string() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ") << "[";
    for (int c = 0; c < cols_; ++c) os << (c ? " " : "") << at(r, c);
    os << "]" << (r + 1 == rows_ ? "]" : "\n");
  }
  if (rows_ == 0) os << "[]";
  return os.str();
}

// ---------------------------------------------------------------------------
// Rational helper for exact elimination (matrices here are tiny).
// ---------------------------------------------------------------------------

namespace {

struct Rat {
  Int num = 0;
  Int den = 1;

  void normalize() {
    DCT_CHECK(den != 0, "rational with zero denominator");
    if (den < 0) {
      num = checked_mul(num, -1);
      den = checked_mul(den, -1);
    }
    const Int g = gcd(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }
  bool is_zero() const { return num == 0; }
};

Rat make_rat(Int n, Int d = 1) {
  Rat r{n, d};
  r.normalize();
  return r;
}

Rat operator*(const Rat& a, const Rat& b) {
  return make_rat(checked_mul(a.num, b.num), checked_mul(a.den, b.den));
}

Rat operator-(const Rat& a, const Rat& b) {
  return make_rat(
      checked_sub(checked_mul(a.num, b.den), checked_mul(b.num, a.den)),
      checked_mul(a.den, b.den));
}

Rat operator/(const Rat& a, const Rat& b) {
  DCT_CHECK(!b.is_zero(), "rational division by zero");
  return make_rat(checked_mul(a.num, b.den), checked_mul(a.den, b.num));
}

using RatMatrix = std::vector<std::vector<Rat>>;

RatMatrix to_rat(const IntMatrix& m) {
  RatMatrix out(static_cast<size_t>(m.rows()),
                std::vector<Rat>(static_cast<size_t>(m.cols())));
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out[static_cast<size_t>(r)][static_cast<size_t>(c)] = make_rat(m.at(r, c));
  return out;
}

/// Row-reduce `m` in place; returns pivot column per pivot row.
std::vector<int> rref(RatMatrix& m) {
  std::vector<int> pivots;
  if (m.empty()) return pivots;
  const size_t nrows = m.size();
  const size_t ncols = m[0].size();
  size_t prow = 0;
  for (size_t col = 0; col < ncols && prow < nrows; ++col) {
    size_t sel = prow;
    while (sel < nrows && m[sel][col].is_zero()) ++sel;
    if (sel == nrows) continue;
    std::swap(m[sel], m[prow]);
    const Rat inv = make_rat(1) / m[prow][col];
    for (size_t c = col; c < ncols; ++c) m[prow][c] = m[prow][c] * inv;
    for (size_t r = 0; r < nrows; ++r) {
      if (r == prow || m[r][col].is_zero()) continue;
      const Rat f = m[r][col];
      for (size_t c = col; c < ncols; ++c)
        m[r][c] = m[r][c] - f * m[prow][c];
    }
    pivots.push_back(static_cast<int>(col));
    ++prow;
  }
  return pivots;
}

}  // namespace

int rank(const IntMatrix& m) {
  if (m.empty()) return 0;
  RatMatrix rm = to_rat(m);
  return static_cast<int>(rref(rm).size());
}

// ---------------------------------------------------------------------------
// Hermite normal form (row style): H = U * A.
// ---------------------------------------------------------------------------

HermiteForm hermite_normal_form(const IntMatrix& a) {
  HermiteForm out;
  out.h = a;
  out.u = IntMatrix::identity(a.rows());
  IntMatrix& h = out.h;
  IntMatrix& u = out.u;

  int prow = 0;
  for (int col = 0; col < a.cols() && prow < a.rows(); ++col) {
    // Reduce all entries below the pivot row into the pivot via gcd steps.
    for (int r = prow + 1; r < a.rows(); ++r) {
      if (h.at(r, col) == 0) continue;
      if (h.at(prow, col) == 0) {
        h.swap_rows(prow, r);
        u.swap_rows(prow, r);
        continue;
      }
      Int x = 0, y = 0;
      const Int p = h.at(prow, col);
      const Int q = h.at(r, col);
      const Int g = ext_gcd(p, q, x, y);
      // New pivot row = x*prow + y*r; new r row = -(q/g)*prow + (p/g)*r.
      const Int pg = p / g;
      const Int qg = q / g;
      Vec new_p(static_cast<size_t>(h.cols()));
      Vec new_r(static_cast<size_t>(h.cols()));
      Vec new_up(static_cast<size_t>(u.cols()));
      Vec new_ur(static_cast<size_t>(u.cols()));
      for (int c = 0; c < h.cols(); ++c) {
        new_p[static_cast<size_t>(c)] = checked_add(
            checked_mul(x, h.at(prow, c)), checked_mul(y, h.at(r, c)));
        new_r[static_cast<size_t>(c)] = checked_sub(
            checked_mul(pg, h.at(r, c)), checked_mul(qg, h.at(prow, c)));
      }
      for (int c = 0; c < u.cols(); ++c) {
        new_up[static_cast<size_t>(c)] = checked_add(
            checked_mul(x, u.at(prow, c)), checked_mul(y, u.at(r, c)));
        new_ur[static_cast<size_t>(c)] = checked_sub(
            checked_mul(pg, u.at(r, c)), checked_mul(qg, u.at(prow, c)));
      }
      h.set_row(prow, new_p);
      h.set_row(r, new_r);
      u.set_row(prow, new_up);
      u.set_row(r, new_ur);
    }
    if (h.at(prow, col) == 0) continue;
    if (h.at(prow, col) < 0) {
      h.scale_row(prow, -1);
      u.scale_row(prow, -1);
    }
    // Reduce entries above the pivot modulo the pivot.
    const Int piv = h.at(prow, col);
    for (int r = 0; r < prow; ++r) {
      const Int f = floor_div(h.at(r, col), piv);
      if (f != 0) {
        h.add_scaled_row(r, prow, -f);
        u.add_scaled_row(r, prow, -f);
      }
    }
    ++prow;
  }
  out.rank = prow;
  return out;
}

IntMatrix null_space(const IntMatrix& a) {
  // Kernel basis = bottom rows of the HNF transform of A^T:
  //   H = U A^T  =>  A U^T = H^T; zero rows of H give A (U row)^T = 0.
  if (a.cols() == 0) return IntMatrix(0, 0);
  if (a.rows() == 0) return IntMatrix::identity(a.cols());
  const HermiteForm hf = hermite_normal_form(a.transposed());
  IntMatrix basis(a.cols() - hf.rank, a.cols());
  for (int r = hf.rank; r < a.cols(); ++r) {
    Vec v = hf.u.row(r);
    const Int g = gcd(v);
    if (g > 1)
      for (Int& x : v) x /= g;
    basis.set_row(r - hf.rank, v);
  }
  return basis;
}

Int determinant(const IntMatrix& m) {
  DCT_CHECK(m.rows() == m.cols(), "determinant of non-square matrix");
  const int n = m.rows();
  if (n == 0) return 1;
  RatMatrix rm = to_rat(m);
  Rat det = make_rat(1);
  for (int col = 0; col < n; ++col) {
    int sel = col;
    while (sel < n && rm[static_cast<size_t>(sel)][static_cast<size_t>(col)]
                          .is_zero())
      ++sel;
    if (sel == n) return 0;
    if (sel != col) {
      std::swap(rm[static_cast<size_t>(sel)], rm[static_cast<size_t>(col)]);
      det = det * make_rat(-1);
    }
    const Rat piv = rm[static_cast<size_t>(col)][static_cast<size_t>(col)];
    det = det * piv;
    for (int r = col + 1; r < n; ++r) {
      const Rat f = rm[static_cast<size_t>(r)][static_cast<size_t>(col)] / piv;
      if (f.is_zero()) continue;
      for (int c = col; c < n; ++c)
        rm[static_cast<size_t>(r)][static_cast<size_t>(c)] =
            rm[static_cast<size_t>(r)][static_cast<size_t>(c)] -
            f * rm[static_cast<size_t>(col)][static_cast<size_t>(c)];
    }
  }
  DCT_CHECK(det.den == 1, "integer determinant must be integral");
  return det.num;
}

std::optional<RationalSolution> solve(const IntMatrix& a, const Vec& b) {
  DCT_CHECK(static_cast<int>(b.size()) == a.rows(), "rhs size mismatch");
  RatMatrix rm = to_rat(a.hstack(IntMatrix::col_vector(b)));
  const std::vector<int> pivots = rref(rm);
  const int n = a.cols();
  // Inconsistent if a pivot lands in the augmented column.
  for (int p : pivots)
    if (p == n) return std::nullopt;
  // Build a particular solution: pivot variables take the augmented value,
  // free variables are zero.
  std::vector<Rat> x(static_cast<size_t>(n), make_rat(0));
  for (size_t i = 0; i < pivots.size(); ++i)
    x[static_cast<size_t>(pivots[i])] = rm[i][static_cast<size_t>(n)];
  Int denom = 1;
  for (const Rat& r : x) denom = checked_mul(denom, r.den / gcd(denom, r.den));
  RationalSolution out;
  out.denom = denom;
  out.x.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Rat& r = x[static_cast<size_t>(i)];
    out.x[static_cast<size_t>(i)] = checked_mul(r.num, denom / r.den);
  }
  return out;
}

IntMatrix unimodular_completion(const IntMatrix& rows) {
  const int k = rows.rows();
  const int n = rows.cols();
  DCT_CHECK(k <= n, "more rows than columns");
  DCT_CHECK(rank(rows) == k, "rows must be linearly independent");
  if (k == n) {
    DCT_CHECK(std::abs(determinant(rows)) == 1,
              "square input must already be unimodular");
    return rows;
  }
  // Column-style HNF: rows * V = [H | 0] with V unimodular. When |det H| is
  // 1 the row lattice is saturated and W = [rows ; bottom rows of V^{-1}]
  // is unimodular.
  const HermiteForm hf = hermite_normal_form(rows.transposed());
  const IntMatrix v = hf.u.transposed();  // rows * v = hf.h^T
  const IntMatrix h = hf.h.transposed().submatrix(0, k, 0, k);
  DCT_CHECK(std::abs(determinant(h)) == 1,
            "row lattice not saturated; no unimodular completion exists");
  // Invert V column by column (denominators must be 1 since det(V) = ±1).
  IntMatrix vinv(n, n);
  for (int c = 0; c < n; ++c) {
    Vec e(static_cast<size_t>(n), 0);
    e[static_cast<size_t>(c)] = 1;
    const auto sol = solve(v, e);
    DCT_CHECK(sol.has_value() && sol->denom == 1, "unimodular inverse failed");
    for (int r = 0; r < n; ++r) vinv.at(r, c) = sol->x[static_cast<size_t>(r)];
  }
  IntMatrix out = rows.vstack(vinv.submatrix(k, n, 0, n));
  DCT_CHECK(std::abs(determinant(out)) == 1, "completion is not unimodular");
  return out;
}

}  // namespace dct::linalg
