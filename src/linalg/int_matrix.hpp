// Exact integer linear algebra over int64 with checked overflow.
//
// This is the algebraic substrate of the reproduction: the decomposition
// solver (Section 3 of the paper) needs integer nullspaces and ranks to
// solve the no-communication equation D(F(i)) = G(i), and the unimodular
// loop-transformation preprocessing needs Hermite normal forms and
// unimodular completions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace dct::linalg {

using Int = std::int64_t;
using Vec = std::vector<Int>;

/// Checked arithmetic: throws dct::Error on int64 overflow.
Int checked_add(Int a, Int b);
Int checked_sub(Int a, Int b);
Int checked_mul(Int a, Int b);

/// Non-negative gcd; gcd(0,0) == 0.
Int gcd(Int a, Int b);
/// gcd of all entries (0 for an empty/zero vector).
Int gcd(const Vec& v);
/// Extended gcd: returns g = gcd(a,b) and sets x,y with a*x + b*y == g.
Int ext_gcd(Int a, Int b, Int& x, Int& y);
/// Floor division (rounds toward -inf) and the matching modulus (always
/// in [0, |b|) for b != 0). These implement the paper's 0-based array
/// index arithmetic exactly.
Int floor_div(Int a, Int b);
Int floor_mod(Int a, Int b);

/// Dense row-major integer matrix.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(int rows, int cols);  // zero-filled
  IntMatrix(std::initializer_list<std::initializer_list<Int>> rows);

  static IntMatrix identity(int n);
  /// Single-row / single-column constructors.
  static IntMatrix row_vector(const Vec& v);
  static IntMatrix col_vector(const Vec& v);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Int& at(int r, int c);
  Int at(int r, int c) const;

  Vec row(int r) const;
  Vec col(int c) const;
  void set_row(int r, const Vec& v);

  IntMatrix transposed() const;
  IntMatrix operator*(const IntMatrix& rhs) const;
  Vec operator*(const Vec& v) const;
  IntMatrix operator+(const IntMatrix& rhs) const;
  IntMatrix operator-(const IntMatrix& rhs) const;
  bool operator==(const IntMatrix& rhs) const = default;

  /// Append the rows of `other` (must have equal cols) below this matrix.
  IntMatrix vstack(const IntMatrix& other) const;
  /// Append the columns of `other` (must have equal rows) to the right.
  IntMatrix hstack(const IntMatrix& other) const;
  /// Rows [r0, r1) and columns [c0, c1).
  IntMatrix submatrix(int r0, int r1, int c0, int c1) const;

  /// In-place elementary row operations (used by the HNF algorithm).
  void swap_rows(int a, int b);
  void scale_row(int r, Int s);
  void add_scaled_row(int dst, int src, Int s);  // dst += s * src

  std::string to_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Int> data_;
};

/// Rank over the rationals, computed with fraction-free (Bareiss-style)
/// elimination so all intermediate values stay integral.
int rank(const IntMatrix& m);

/// Result of a row-style Hermite normal form computation: H = U * A with
/// U unimodular, H in row echelon form with non-negative pivots and
/// entries above each pivot reduced modulo the pivot.
struct HermiteForm {
  IntMatrix h;  ///< the Hermite normal form
  IntMatrix u;  ///< unimodular transform, h == u * a
  int rank = 0;
};
HermiteForm hermite_normal_form(const IntMatrix& a);

/// Basis of the integer nullspace { x : A x = 0 } as the rows of the
/// returned matrix. The basis is primitive (each row has content 1) and
/// spans the rational kernel.
IntMatrix null_space(const IntMatrix& a);

/// Extend the k linearly independent rows of `rows` (k x n, k <= n) to an
/// n x n unimodular matrix whose first k rows are `rows`... not exactly:
/// returns an n x n unimodular matrix whose row space's first k rows span
/// the same lattice-saturated space and whose first k rows equal `rows`
/// whenever `rows` itself is extendable (i.e. its HNF pivots are all 1).
/// Throws if the rows are linearly dependent.
IntMatrix unimodular_completion(const IntMatrix& rows);

/// Determinant via fraction-free elimination (throws unless square).
Int determinant(const IntMatrix& m);

/// Solve A x = b over the rationals; returns an integral solution scaled
/// by the returned denominator: A * x == denom * b. nullopt if unsolvable.
struct RationalSolution {
  Vec x;
  Int denom = 1;
};
std::optional<RationalSolution> solve(const IntMatrix& a, const Vec& b);

}  // namespace dct::linalg
