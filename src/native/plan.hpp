// Scheduling plan for the native threaded SPMD backend.
//
// The simulator can interleave processors freely because it executes
// sequentially; real threads cannot. This layer classifies every compiled
// nest into a synchronization shape that makes the lockstep SPMD walk
// race-free:
//
//  * barrier_level BL — a barrier after every iteration of loop BL orders
//    all dependences carried at levels <= BL across threads (the classic
//    "synchronize the outer sequential loop" schedule, e.g. LU's k loop);
//  * gate barriers — gated statements (depth < nest depth, the paper's
//    imperfect nests: pivot rows, reduction epilogues) execute bracketed
//    by barriers at their firing points, which orders every dependence
//    with a gated endpoint in both directions;
//  * Sequential — thread 0 runs the whole nest between barriers whenever
//    per-iteration synchronization would be needed (loop-independent
//    dependences between statements with different owner signatures, or a
//    dependence carried by the innermost loop).
//
// Dependences between statements owned by the same processor for both
// endpoints need no synchronization: the owning thread executes them in
// walk order, which is sequential order. That is why the classification
// needs statement-attributed vectors (dep::analyze_pairs) — the nest-level
// summary cannot tell a self-dependence ordered by ownership from a
// cross-statement race.
//
// Independently of synchronization, a nest may be *restricted*: each
// thread walks only its own iterations of one decomposed loop (BLOCK
// bounds / CYCLIC strides over myid, from CoordFold::block_lo/digit_of)
// instead of filtering the full space. Restriction is a pruning
// optimization only — the owner filter stays on — and is legal when every
// statement is full-depth with one identical owner signature and the
// restricted level is deeper than every barrier level.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"

namespace dct::native {

using linalg::Int;

enum class NestSchedule { Parallel, Sequential };

/// One loop level each thread walks restricted to its own iterations
/// (BLOCK bounds / CYCLIC strides over its grid digit).
struct NestRestriction {
  int level = -1;
  core::CoordFold fold;  ///< identical across the nest's statements
};

struct NestPlan {
  NestSchedule schedule = NestSchedule::Parallel;
  /// Barrier after each iteration of this loop level; -1 = none needed.
  int barrier_level = -1;
  /// Bracket gated-statement firings with barriers.
  bool gate_sync = false;
  /// Every owner-bound level the walk can prune (empty = full walk +
  /// owner filter). All levels are deeper than barrier_level so barrier
  /// counts stay uniform across threads.
  std::vector<NestRestriction> restrictions;
  /// Classification rationale (for remarks and tests).
  std::string why;
};

struct ProgramPlan {
  std::vector<NestPlan> nests;
  int sequential_nests = 0;
  int restricted_nests = 0;
};

/// Classify every nest of the compiled program. Pure analysis: safe to
/// call on any CompiledProgram, never fails (unanalyzable shapes fall
/// back to Sequential).
ProgramPlan plan_program(const core::CompiledProgram& cp);

}  // namespace dct::native
