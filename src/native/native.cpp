#include "native/native.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/executor.hpp"
#include "runtime/walker.hpp"
#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::native {

using core::CompiledNest;
using core::CompiledProgram;
using core::CompiledRef;
using core::CompiledStmt;
using core::CoordFold;
using runtime::RefWalker;

namespace {

/// Ascending iterator over the values of [lo, hi] owned by digit `t` of a
/// fold — the per-thread loop bounds of the paper's generated SPMD code:
/// one clamped run for BLOCK (edge digits absorb the out-of-range spill,
/// matching CoordFold::fold's clamp), a stride-procs walk for CYCLIC, and
/// block-length runs every procs blocks for BLOCK-CYCLIC.
class OwnedIter {
 public:
  OwnedIter(const CoordFold& f, int t, Int lo, Int hi)
      : kind_(f.kind), procs_(f.procs), block_(std::max<Int>(1, f.block)),
        offset_(f.offset), t_(t), hi_(hi) {
    switch (kind_) {
      case decomp::DistKind::Serial:  // unbound: every value "owned"
        v_ = lo;
        run_hi_ = hi;
        break;
      case decomp::DistKind::Block: {
        const Int blo = t == 0 ? lo : std::max(lo, f.block_lo(t));
        run_hi_ = t == procs_ - 1 ? hi : std::min(hi, f.block_hi(t));
        v_ = blo;
        break;
      }
      case decomp::DistKind::Cyclic:
        v_ = lo + linalg::floor_mod(offset_ + t - lo, procs_);
        run_hi_ = hi;
        break;
      case decomp::DistKind::BlockCyclic: {
        g_ = linalg::floor_div(lo - offset_, block_);
        g_ += linalg::floor_mod(t - g_, procs_);
        v_ = std::max(lo, offset_ + g_ * block_);
        run_hi_ = std::min(hi, offset_ + (g_ + 1) * block_ - 1);
        break;
      }
    }
    done_ = v_ > run_hi_;
  }

  bool done() const { return done_; }
  Int value() const { return v_; }

  void next() {
    if (kind_ == decomp::DistKind::Cyclic) {
      v_ += procs_;
      done_ = v_ > hi_;
      return;
    }
    ++v_;
    if (v_ <= run_hi_) return;
    if (kind_ == decomp::DistKind::BlockCyclic) {
      g_ += procs_;
      v_ = offset_ + g_ * block_;
      run_hi_ = std::min(hi_, v_ + block_ - 1);
      done_ = v_ > hi_;
      return;
    }
    done_ = true;  // Serial / Block: a single run
  }

 private:
  decomp::DistKind kind_;
  int procs_;
  Int block_, offset_;
  int t_;
  Int hi_;
  Int v_ = 0, run_hi_ = -1, g_ = 0;
  bool done_ = false;
};

/// Per-(thread, reference) execution state.
struct NRef {
  const CompiledRef* ref = nullptr;
  std::vector<double>* data = nullptr;
  const layout::Layout* layout = nullptr;
  bool walk = false;
  RefWalker walker;
};

/// Per-(thread, statement) execution state.
struct NStmt {
  const CompiledStmt* cs = nullptr;
  bool full = false;
  /// Owner folds invariant over the innermost loop, folded per segment.
  std::vector<std::pair<int, CoordFold>> hoisted;
  /// Owner folds on the innermost loop, evaluated per iteration.
  std::vector<std::pair<int, CoordFold>> inner;
  std::vector<NRef> reads;
  NRef write;
  bool has_write = false;
  bool has_eval = false;
  int q_base = 0;
};

struct NNest {
  std::vector<NStmt> stmts;
};

struct ThreadStats {
  long long statements = 0;
  long long barriers = 0;
};

/// One SPMD worker: walks every nest with the owner filter (or its
/// restricted slice), synchronizing as the plan dictates.
class Worker {
 public:
  Worker(const CompiledProgram& cp, const ProgramPlan& plan,
         std::vector<std::vector<double>>& data, std::barrier<>& bar, int T,
         int myid)
      : cp_(cp), plan_(plan), data_(data), bar_(bar), T_(T), myid_(myid) {
    size_t max_rank = 1, max_reads = 1;
    for (const ir::ArrayDecl& decl : cp.program.arrays)
      max_rank = std::max(max_rank, decl.dims.size());
    plans_.resize(cp.nests.size());
    for (size_t j = 0; j < cp.nests.size(); ++j) {
      const CompiledNest& cn = cp.nests[j];
      const int d = static_cast<int>(cn.nest.loops.size());
      for (const CompiledStmt& cs : cn.stmts) {
        NStmt ns;
        ns.cs = &cs;
        ns.full = cs.depth >= d;
        ns.has_eval = static_cast<bool>(cs.eval);
        max_reads = std::max(max_reads, cs.reads.size());
        for (const auto& pair : cs.owner) {
          if (ns.full && pair.first == d - 1)
            ns.inner.push_back(pair);
          else
            ns.hoisted.push_back(pair);
        }
        auto make_ref = [&](const CompiledRef& ref, bool is_write) {
          NRef r;
          r.ref = &ref;
          r.data = &data_[static_cast<size_t>(ref.array)];
          r.layout = &cp.arrays[static_cast<size_t>(ref.array)].layout;
          if (is_write)
            DCT_CHECK(!cp.arrays[static_cast<size_t>(ref.array)].replicated,
                      "native write to replicated array");
          if (ns.full) r.walk = r.walker.build(ref, *r.layout, d);
          return r;
        };
        for (const CompiledRef& ref : cs.reads)
          ns.reads.push_back(make_ref(ref, false));
        if (!cs.writes.empty()) {
          ns.write = make_ref(cs.writes[0], true);
          ns.has_write = true;
        }
        plans_[j].stmts.push_back(std::move(ns));
      }
    }
    scratch_.assign(max_rank, 0);
    vals_.assign(max_reads, 0.0);
  }

  ThreadStats run() {
    const ir::Program& prog = cp_.program;
    for (int step = 0; step < prog.time_steps; ++step) {
      for (size_t j = 0; j < cp_.nests.size(); ++j) {
        const NestPlan& np = plan_.nests[j];
        if (np.schedule == NestSchedule::Sequential) {
          sync();  // prior parallel writes visible to thread 0
          if (myid_ == 0) run_nest(j, /*filter=*/false);
          sync();  // thread 0's writes visible to everyone
        } else {
          run_nest(j, /*filter=*/true);
        }
        const bool last = step == prog.time_steps - 1 &&
                          j == cp_.nests.size() - 1;
        if (cp_.nests[j].barrier_after || last) sync();
      }
    }
    return stats_;
  }

 private:
  void sync() {
    if (T_ > 1) {
      bar_.arrive_and_wait();
      ++stats_.barriers;
    }
  }

  /// Interpreter address path (gated statements, non-walkable refs).
  Int addr_of(const NRef& r, int d, std::span<const Int> iter) {
    const CompiledRef& ref = *r.ref;
    for (int k = 0; k < ref.rank; ++k) {
      Int v = ref.offsets[static_cast<size_t>(k)];
      const Int* row =
          ref.coeffs.data() + static_cast<size_t>(k) * static_cast<size_t>(d);
      for (int l = 0; l < d; ++l) v += row[l] * iter[static_cast<size_t>(l)];
      scratch_[static_cast<size_t>(k)] = v;
    }
    return r.layout->linearize(
        std::span<const Int>(scratch_.data(), static_cast<size_t>(ref.rank)));
  }

  /// Execute one statement instance with walker addressing (full-depth
  /// statements inside a segment).
  void exec_walked(NStmt& ns, int d, std::span<const Int> iter) {
    size_t vi = 0;
    for (NRef& r : ns.reads) {
      const Int lin = r.walk ? r.walker.addr() : addr_of(r, d, iter);
      vals_[vi++] = (*r.data)[static_cast<size_t>(lin)];
    }
    if (ns.has_write && ns.has_eval) {
      const Int lin =
          ns.write.walk ? ns.write.walker.addr() : addr_of(ns.write, d, iter);
      (*ns.write.data)[static_cast<size_t>(lin)] =
          ns.cs->eval(std::span<const double>(vals_.data(), vi));
    }
    ++stats_.statements;
  }

  /// Execute one gated statement instance (interpreter addressing).
  void exec_gated(NStmt& ns, int d, std::span<const Int> iter) {
    size_t vi = 0;
    for (NRef& r : ns.reads)
      vals_[vi++] = (*r.data)[static_cast<size_t>(addr_of(r, d, iter))];
    if (ns.has_write && ns.has_eval)
      (*ns.write.data)[static_cast<size_t>(addr_of(ns.write, d, iter))] =
          ns.cs->eval(std::span<const double>(vals_.data(), vi));
    ++stats_.statements;
  }

  int owner_at(const NStmt& ns, std::span<const Int> iter) const {
    int q = 0;
    for (const auto& [loop, fold] : ns.cs->owner)
      q += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
    return q >= T_ ? T_ - 1 : q;
  }

  /// One innermost segment: iter[0..inner) fixed, bounds already in
  /// lb_/ub_. Gated statements execute in statement-list order at their
  /// firing iteration, bracketed by barriers when the plan requires.
  void run_segment(const CompiledNest& cn, NNest& nn, const NestPlan& np,
                   bool filter, const NestRestriction* inner_r,
                   int inner_digit) {
    const int d = static_cast<int>(cn.nest.loops.size());
    const int inner = d - 1;
    const Int ilb = lb_[static_cast<size_t>(inner)];
    const Int iub = ub_[static_cast<size_t>(inner)];
    if (ilb > iub) return;  // empty: gated statements do not fire either

    for (NStmt& ns : nn.stmts) {
      if (!ns.full) continue;
      int qb = 0;
      for (const auto& [loop, fold] : ns.hoisted)
        qb += fold.fold(iter_[static_cast<size_t>(loop)]) * fold.stride;
      ns.q_base = qb;
    }

    if (inner_r != nullptr) {
      // Every iteration this thread walks belongs to it at the restricted
      // level; the remaining digits are segment-invariant, so ownership
      // of the whole slice is one comparison.
      const CoordFold& f = inner_r->fold;
      const int digit = inner_digit;
      const int q = std::min(nn.stmts[0].q_base + digit * f.stride, T_ - 1);
      if (q != myid_) return;
      OwnedIter oi(f, digit, ilb, iub);
      if (oi.done()) return;
      iter_[static_cast<size_t>(inner)] = oi.value();
      for (NStmt& ns : nn.stmts) {
        for (NRef& r : ns.reads)
          if (r.walk) r.walker.init(iter_);
        if (ns.has_write && ns.write.walk) ns.write.walker.init(iter_);
      }
      while (true) {
        for (NStmt& ns : nn.stmts) exec_walked(ns, d, iter_);
        const Int prev = oi.value();
        oi.next();
        if (oi.done()) break;
        const Int jump = oi.value() - prev;
        iter_[static_cast<size_t>(inner)] = oi.value();
        for (NStmt& ns : nn.stmts) {
          for (NRef& r : ns.reads)
            if (r.walk) r.walker.step_n(jump);
          if (ns.has_write && ns.write.walk) ns.write.walker.step_n(jump);
        }
      }
      return;
    }

    // Full walk: every thread steps every iteration, executing only what
    // it owns — the universal correctness net under which restriction and
    // hoisting are pure optimizations.
    iter_[static_cast<size_t>(inner)] = ilb;
    for (NStmt& ns : nn.stmts) {
      if (!ns.full) continue;
      for (NRef& r : ns.reads)
        if (r.walk) r.walker.init(iter_);
      if (ns.has_write && ns.write.walk) ns.write.walker.init(iter_);
    }
    for (Int i = ilb; i <= iub; ++i) {
      iter_[static_cast<size_t>(inner)] = i;
      for (NStmt& ns : nn.stmts) {
        if (!ns.full) {
          if (i != ilb) continue;
          bool first = true;
          for (int k = ns.cs->depth; k < inner && first; ++k)
            first = iter_[static_cast<size_t>(k)] == lb_[static_cast<size_t>(k)];
          if (!first) continue;
          // All threads evaluate the same firing predicate, so the
          // barrier pair is uniform; only the owner executes between.
          if (filter && np.gate_sync) sync();
          if (!filter || owner_at(ns, iter_) == myid_)
            exec_gated(ns, d, iter_);
          if (filter && np.gate_sync) sync();
          continue;
        }
        int q = ns.q_base;
        for (const auto& [loop, fold] : ns.inner)
          q += fold.fold(i) * fold.stride;
        if (q >= T_) q = T_ - 1;
        if (!filter || q == myid_) exec_walked(ns, d, iter_);
        for (NRef& r : ns.reads)
          if (r.walk) r.walker.step();
        if (ns.has_write && ns.write.walk) ns.write.walker.step();
      }
    }
  }

  void run_nest(size_t j, bool filter) {
    const CompiledNest& cn = cp_.nests[j];
    const NestPlan& np = plan_.nests[j];
    const int d = static_cast<int>(cn.nest.loops.size());
    if (d == 0) return;
    iter_.assign(static_cast<size_t>(d), 0);
    lb_.assign(static_cast<size_t>(d), 0);
    ub_.assign(static_cast<size_t>(d), 0);
    // Per-level restriction lookup: each restricted level walks only this
    // thread's digit of the fold; the innermost level gets the dedicated
    // segment path (single ownership comparison + step_n jumps).
    std::vector<const NestRestriction*> restrict_at(
        static_cast<size_t>(d), nullptr);
    std::vector<int> digit_at(static_cast<size_t>(d), 0);
    const NestRestriction* inner_r = nullptr;
    int inner_digit = 0;
    if (filter)
      for (const NestRestriction& r : np.restrictions) {
        const int dig = r.fold.digit_of(myid_);
        if (r.level == d - 1) {
          inner_r = &r;
          inner_digit = dig;
        } else {
          restrict_at[static_cast<size_t>(r.level)] = &r;
          digit_at[static_cast<size_t>(r.level)] = dig;
        }
      }

    // Recursive lockstep walk; the barrier after each barrier_level
    // iteration and the gate barriers fire identically on every thread.
    auto walk = [&](auto&& self, int level) -> void {
      const Int lo = cn.nest.loops[static_cast<size_t>(level)].lower_bound(iter_);
      const Int hi = cn.nest.loops[static_cast<size_t>(level)].upper_bound(iter_);
      lb_[static_cast<size_t>(level)] = lo;
      ub_[static_cast<size_t>(level)] = hi;
      if (level == d - 1) {
        run_segment(cn, plans_[j], np, filter, inner_r, inner_digit);
        return;
      }
      auto body = [&](Int v) {
        iter_[static_cast<size_t>(level)] = v;
        self(self, level + 1);
        if (filter && level == np.barrier_level) sync();
      };
      if (const NestRestriction* r = restrict_at[static_cast<size_t>(level)]) {
        for (OwnedIter oi(r->fold, digit_at[static_cast<size_t>(level)], lo,
                          hi);
             !oi.done(); oi.next())
          body(oi.value());
      } else {
        for (Int v = lo; v <= hi; ++v) body(v);
      }
    };
    walk(walk, 0);
  }

  const CompiledProgram& cp_;
  const ProgramPlan& plan_;
  std::vector<std::vector<double>>& data_;
  std::barrier<>& bar_;
  const int T_;
  const int myid_;
  std::vector<NNest> plans_;
  std::vector<Int> iter_, lb_, ub_, scratch_;
  std::vector<double> vals_;
  ThreadStats stats_;
};

/// Walk an array's original index space in linear (column-major) order.
template <typename Fn>
void for_each_element(const ir::ArrayDecl& decl, Fn&& fn) {
  const int rank = static_cast<int>(decl.dims.size());
  std::vector<Int> idx(static_cast<size_t>(rank), 0);
  Int linear = 0;
  bool done = false;
  while (!done) {
    fn(std::span<const Int>(idx), linear);
    ++linear;
    int k = 0;
    while (k < rank) {
      if (++idx[static_cast<size_t>(k)] < decl.dims[static_cast<size_t>(k)])
        break;
      idx[static_cast<size_t>(k)] = 0;
      ++k;
    }
    if (k == rank) done = true;
  }
}

}  // namespace

NativeResult run_native(const CompiledProgram& cp, const ProgramPlan& plan,
                        const NativeOptions& opts) {
  if (opts.threads != cp.procs)
    throw Error(Error::Code::kInvalidArgument,
                strf("native thread count %d != compiled processor count %d "
                     "(recompile for the target thread count)",
                     opts.threads, cp.procs));
  DCT_CHECK(plan.nests.size() == cp.nests.size(), "plan/program mismatch");
  const int T = opts.threads;
  const ir::Program& prog = cp.program;

  // Arrays live in their TRANSFORMED linear layouts; values are stored as
  // doubles regardless of the modelled element size so results stay
  // bit-identical to the double-valued reference.
  std::vector<std::vector<double>> data(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const ir::ArrayDecl& decl = prog.arrays[a];
    const layout::Layout& lay = cp.arrays[a].layout;
    data[a].assign(static_cast<size_t>(lay.size()), 0.0);
    for_each_element(decl, [&](std::span<const Int> idx, Int linear) {
      data[a][static_cast<size_t>(lay.linearize(idx))] =
          runtime::init_value(opts.init_seed, static_cast<int>(a), linear);
    });
  }

  std::barrier<> bar(static_cast<std::ptrdiff_t>(T));
  std::vector<ThreadStats> stats(static_cast<size_t>(T));
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(T));
    for (int myid = 0; myid < T; ++myid) {
      threads.emplace_back([&, myid] {
        try {
          Worker w(cp, plan, data, bar, T, myid);
          stats[static_cast<size_t>(myid)] = w.run();
        } catch (...) {
          {
            std::lock_guard<std::mutex> g(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Permanently leave the barrier so surviving threads never
          // block on this one; the run's results are discarded anyway.
          bar.arrive_and_drop();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);

  NativeResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const ThreadStats& s : stats) res.statements += s.statements;
  res.barriers = stats[0].barriers;
  res.sequential_nests = plan.sequential_nests;
  res.restricted_nests = plan.restricted_nests;
  res.parallel_nests =
      static_cast<int>(plan.nests.size()) - plan.sequential_nests;
  if (opts.collect_values) {
    res.values.resize(prog.arrays.size());
    for (size_t a = 0; a < prog.arrays.size(); ++a) {
      const ir::ArrayDecl& decl = prog.arrays[a];
      res.values[a].resize(static_cast<size_t>(decl.elem_count()));
      const layout::Layout& lay = cp.arrays[a].layout;
      for_each_element(decl, [&](std::span<const Int> idx, Int linear) {
        res.values[a][static_cast<size_t>(linear)] =
            data[a][static_cast<size_t>(lay.linearize(idx))];
      });
    }
  }
  return res;
}

NativeResult run_native(const CompiledProgram& cp, const NativeOptions& opts) {
  return run_native(cp, plan_program(cp), opts);
}

}  // namespace dct::native
