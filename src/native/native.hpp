// Native threaded SPMD execution of a compiled program.
//
// Where runtime::simulate models a DASH-class machine, this backend runs
// the transformed program for real: one std::thread per compiled
// processor, arrays allocated in their *transformed* linear layouts,
// inner loops driven by the same incremental address walkers as the fast
// simulator engine (constant-add addressing, div/mod only at strip
// boundaries), owner-computes statement filtering, and std::barrier
// synchronization placed by the native::plan classification.
//
// The backend is an execution tier, not a model: its wall-clock time is
// the hardware's answer to whether the Section 4 layout transformations
// pay off outside the simulator's cost model, and its array results are
// bit-identical to runtime::run_reference by construction (same
// initialization, same owner-computes schedule, dependence-ordered
// evaluation).
//
// Env knobs (read by callers, not here): DCT_NATIVE enables the native
// differential check in the verify pass, DCT_NATIVE_THREADS sets the
// thread count used by tools that compile specifically for this backend.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compiler.hpp"
#include "native/plan.hpp"

namespace dct::native {

struct NativeOptions {
  /// Must equal the compiled processor count: the decomposition's block
  /// sizes and folds are derived from it at compile time.
  int threads = 1;
  std::uint64_t init_seed = 42;
  bool collect_values = true;
};

struct NativeResult {
  /// Final contents of every array in ORIGINAL element order (same
  /// convention as RunResult::values / run_reference).
  std::vector<std::vector<double>> values;
  double seconds = 0;        ///< wall-clock of the threaded region
  long long statements = 0;  ///< statement instances executed (all threads)
  long long barriers = 0;    ///< barrier phases per thread
  int sequential_nests = 0;
  int parallel_nests = 0;
  int restricted_nests = 0;
};

/// Execute the compiled program on `opts.threads` hardware threads using
/// a precomputed plan. Throws Error(kInvalidArgument) when the thread
/// count does not match the compiled processor count.
NativeResult run_native(const core::CompiledProgram& cp,
                        const ProgramPlan& plan, const NativeOptions& opts);

/// Convenience overload: classifies with plan_program first.
NativeResult run_native(const core::CompiledProgram& cp,
                        const NativeOptions& opts);

}  // namespace dct::native
