#include "native/plan.hpp"

#include <algorithm>
#include <set>

#include "dep/dependence.hpp"
#include "support/str.hpp"

namespace dct::native {

using core::CompiledNest;
using core::CompiledStmt;
using core::CoordFold;

namespace {

NestPlan plan_nest(const CompiledNest& cn, int procs) {
  NestPlan np;
  const int d = static_cast<int>(cn.nest.loops.size());
  if (d == 0 || cn.stmts.empty()) {
    np.why = "empty";
    return np;
  }
  // The dependence analysis attributes vectors by statement index; that
  // only maps onto the compiled statements if the lists are parallel.
  if (cn.nest.stmts.size() != cn.stmts.size()) {
    np.schedule = NestSchedule::Sequential;
    np.why = "stmt lists misaligned";
    return np;
  }

  auto full = [&](int s) { return cn.stmts[static_cast<size_t>(s)].depth >= d; };
  const int nstmts = static_cast<int>(cn.stmts.size());
  for (int s = 0; s < nstmts; ++s)
    if (!full(s)) np.gate_sync = true;

  // A dependence between two same-owner endpoints is ordered by the
  // owning thread's walk; owners are provably equal when the statements
  // share one owner signature and the distance is exactly 0 at every
  // owner-bound loop.
  auto same_sig = [&](int s1, int s2) {
    return cn.stmts[static_cast<size_t>(s1)].owner ==
           cn.stmts[static_cast<size_t>(s2)].owner;
  };
  auto zero_at_owner_loops = [&](int s, const dep::DepVector& v) {
    for (const auto& [loop, fold] : cn.stmts[static_cast<size_t>(s)].owner) {
      const auto& dist = v.dist[static_cast<size_t>(loop)];
      if (!dist.has_value() || *dist != 0) return false;
    }
    return true;
  };

  int bl = -1;
  for (const dep::PairDeps& pd : dep::analyze_pairs(cn.nest)) {
    for (const dep::DepVector& v : pd.vectors) {
      // Any dependence with a gated endpoint is ordered by the barriers
      // bracketing the gated statement's firing point, in both directions.
      if (!full(pd.src_stmt) || !full(pd.dst_stmt)) continue;
      if (same_sig(pd.src_stmt, pd.dst_stmt) &&
          zero_at_owner_loops(pd.src_stmt, v))
        continue;  // both endpoints on the owning thread, walk order
      if (v.loop_independent()) {
        // Same iteration, different owners: only per-statement barriers
        // could order it — run the nest on one thread instead.
        np.schedule = NestSchedule::Sequential;
        np.why = strf("loop-independent dependence %d->%d across owners",
                      pd.src_stmt, pd.dst_stmt);
        return np;
      }
      bl = std::max(bl, v.carrier_level());
    }
  }
  if (bl >= d - 1) {
    // A barrier per innermost iteration is slower than not threading.
    np.schedule = NestSchedule::Sequential;
    np.why = strf("dependence carried by the innermost loop (level %d)", bl);
    return np;
  }
  np.barrier_level = bl;

  // Restriction: prune the walk at one owner-bound level when every
  // statement is full-depth with the same single-fold-per-level owner
  // signature. Gated statements keep the full walk (their firing points
  // must be reached by every thread), and the restricted level must be
  // deeper than every barrier level so barrier counts stay uniform.
  if (!np.gate_sync) {
    bool uniform = true;
    for (int s = 1; s < nstmts && uniform; ++s) uniform = same_sig(0, s);
    const auto& sig = cn.stmts[0].owner;
    std::set<int> levels;
    for (const auto& [loop, fold] : sig)
      if (!levels.insert(loop).second) uniform = false;
    // A clamped owner sum (digits adding past procs-1) hands the top
    // thread iterations outside its own digit range; restriction would
    // skip them, so it is only legal when the sum cannot overflow.
    int max_q = 0;
    for (const auto& [loop, fold] : sig)
      max_q += (fold.procs - 1) * fold.stride;
    if (uniform && !sig.empty() && max_q <= procs - 1) {
      for (const auto& [loop, fold] : sig) {
        // A single-processor fold owns the whole range: restricting it
        // prunes nothing.
        if (loop <= bl || fold.kind == decomp::DistKind::Serial ||
            fold.procs <= 1)
          continue;
        np.restrictions.push_back({loop, fold});
      }
      std::sort(np.restrictions.begin(), np.restrictions.end(),
                [](const NestRestriction& a, const NestRestriction& b) {
                  return a.level < b.level;
                });
    }
  }
  std::string levels;
  for (const NestRestriction& r : np.restrictions)
    levels += strf("%s%d", levels.empty() ? "" : ",", r.level);
  np.why = strf("parallel: barrier_level=%d gate_sync=%d restrict=[%s]",
                np.barrier_level, np.gate_sync ? 1 : 0, levels.c_str());
  return np;
}

}  // namespace

ProgramPlan plan_program(const core::CompiledProgram& cp) {
  ProgramPlan pp;
  pp.nests.reserve(cp.nests.size());
  for (const CompiledNest& cn : cp.nests) {
    pp.nests.push_back(plan_nest(cn, cp.procs));
    if (pp.nests.back().schedule == NestSchedule::Sequential)
      ++pp.sequential_nests;
    if (!pp.nests.back().restrictions.empty()) ++pp.restricted_nests;
  }
  return pp;
}

}  // namespace dct::native
