// The paper's Figure 1 running example:
//
//   DO time = 1,NSTEPS
//     DO J = 1,N ; DO I = 1,N : A(I,J) = B(I,J) + C(I,J)
//     DO J = 2,N-1 ; DO I = 1,N :
//       A(I,J) = 0.333*(A(I,J) + A(I,J-1) + A(I,J+1))
//
// FORTRAN column-major: dim 0 is I (stride 1), dim 1 is J.
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program figure1(Int n, int steps) {
  ProgramBuilder pb("figure1");
  const int a = pb.array("A", {n, n}, 4);
  const int b = pb.array("B", {n, n}, 4);
  const int c = pb.array("C", {n, n}, 4);

  {
    LoopNest& nest = pb.nest("add", 1);
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("I", cst(0), cst(n - 1)));
    Stmt s;
    s.write = simple_ref(a, 2, {{1, 0}, {0, 0}});
    s.reads = {simple_ref(b, 2, {{1, 0}, {0, 0}}),
               simple_ref(c, 2, {{1, 0}, {0, 0}})};
    s.compute_cycles = 2;
    s.eval = [](std::span<const double> r) { return r[0] + r[1]; };
    nest.stmts.push_back(std::move(s));
  }
  {
    LoopNest& nest = pb.nest("smooth", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(0), cst(n - 1)));
    Stmt s;
    s.write = simple_ref(a, 2, {{1, 0}, {0, 0}});
    s.reads = {simple_ref(a, 2, {{1, 0}, {0, 0}}),
               simple_ref(a, 2, {{1, 0}, {0, -1}}),
               simple_ref(a, 2, {{1, 0}, {0, 1}})};
    s.compute_cycles = 3;
    s.eval = [](std::span<const double> r) {
      return 0.333 * (r[0] + r[1] + r[2]);
    };
    nest.stmts.push_back(std::move(s));
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
