// Tomcatv (SPEC92): vectorized mesh generation. Representative structure
// per iteration:
//
//  - residual computation: fully parallel 2-D nests writing RX, RY from
//    X, Y neighbourhood reads;
//  - tridiagonal relaxation with dependence across the rows (carried by
//    the column index J, parallel in I) updating AA;
//  - mesh update: fully parallel.
//
// The BASE compiler parallelizes the outermost parallel loop of each nest
// (J where possible, I in the row-dependent nests), so each processor
// touches column blocks in some nests and row blocks in others. The
// global decomposition keeps a single row-block mapping: AA(BLOCK, *),
// other arrays aligned — poor cache behaviour until the data
// transformation makes each processor's rows contiguous.
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program tomcatv(Int n, int steps) {
  ProgramBuilder pb("tomcatv");
  const int x = pb.array("X", {n, n}, 8);
  const int y = pb.array("Y", {n, n}, 8);
  const int rx = pb.array("RX", {n, n}, 8);
  const int ry = pb.array("RY", {n, n}, 8);
  const int aa = pb.array("AA", {n, n}, 8);

  auto at = [&](int arr, Int di, Int dj) {
    return simple_ref(arr, 2, {{1, di}, {0, dj}});
  };

  {
    LoopNest& nest = pb.nest("residual", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    Stmt s1;
    s1.write = at(rx, 0, 0);
    s1.reads = {at(x, -1, 0), at(x, 1, 0), at(x, 0, -1), at(x, 0, 1),
                at(x, 0, 0)};
    s1.compute_cycles = 6;
    s1.eval = [](std::span<const double> r) {
      return r[0] + r[1] + r[2] + r[3] - 4.0 * r[4];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = at(ry, 0, 0);
    s2.reads = {at(y, -1, 0), at(y, 1, 0), at(y, 0, -1), at(y, 0, 1),
                at(y, 0, 0)};
    s2.compute_cycles = 6;
    s2.eval = [](std::span<const double> r) {
      return r[0] + r[1] + r[2] + r[3] - 4.0 * r[4];
    };
    nest.stmts.push_back(std::move(s2));
  }
  {
    // Dependence across the rows: carried by J, parallel in I.
    LoopNest& nest = pb.nest("row_solve", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    Stmt s;
    s.write = at(aa, 0, 0);
    s.reads = {at(aa, 0, 0), at(aa, 0, -1), at(rx, 0, 0)};
    s.compute_cycles = 3;
    s.eval = [](std::span<const double> r) {
      return 0.5 * r[0] + 0.25 * r[1] + 0.125 * r[2];
    };
    nest.stmts.push_back(std::move(s));
  }
  {
    LoopNest& nest = pb.nest("update", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    Stmt s1;
    s1.write = at(x, 0, 0);
    s1.reads = {at(x, 0, 0), at(rx, 0, 0), at(aa, 0, 0)};
    s1.compute_cycles = 3;
    s1.eval = [](std::span<const double> r) {
      return r[0] + 0.1 * r[1] + 0.01 * r[2];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = at(y, 0, 0);
    s2.reads = {at(y, 0, 0), at(ry, 0, 0), at(aa, 0, 0)};
    s2.compute_cycles = 3;
    s2.eval = [](std::span<const double> r) {
      return r[0] + 0.1 * r[1] + 0.01 * r[2];
    };
    nest.stmts.push_back(std::move(s2));
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
