// The benchmark applications of the paper's evaluation (Section 6),
// expressed in the affine kernel IR. Each builder returns a Program whose
// statements carry numeric evaluators, so the same IR serves dependence
// analysis, decomposition, layout transformation, performance simulation
// and bit-exact semantic verification.
//
// Sizes are parameters; the paper's dataset sizes are reached with
// REPRO_SCALE (see bench/).
#pragma once

#include "ir/program.hpp"

namespace dct::apps {

using linalg::Int;

/// The paper's Figure 1 running example: a fully parallel update loop
/// followed by a column smoother, under an NSTEPS time loop.
ir::Program figure1(Int n, int steps = 2);

/// Vpenta (nasa7 / SPEC92): simultaneous inversion of three pentadiagonal
/// matrices; 2-D work arrays plus a 3-D right-hand-side array whose planes
/// are the memory-layout problem the paper highlights.
ir::Program vpenta(Int n);

/// LU decomposition without pivoting (paper Figure 5) — a triangular
/// nest whose cyclic column distribution exposes cache-conflict pathology.
ir::Program lu(Int n);

/// Five-point stencil (paper Figure 7) with explicit copy-back, the
/// (BLOCK, BLOCK) two-dimensional decomposition example.
ir::Program stencil5(Int n, int steps = 2);

/// ADI integration (paper Figure 9): column sweep (doall) then row sweep
/// (doall/pipeline under a static column decomposition).
ir::Program adi(Int n, int steps = 2);

/// Erlebacher (ICASE): three-dimensional partial derivatives plus
/// tridiagonal solves with wavefronts in Z; per-array decompositions.
ir::Program erlebacher(Int n, int steps = 1);

/// Swm256 (SPEC92): shallow-water equations, highly data-parallel
/// two-dimensional stencils; (BLOCK, BLOCK) decomposition.
ir::Program swm256(Int n, int steps = 2);

/// Tomcatv (SPEC92): mesh generation mixing fully parallel nests with
/// row-dependent nests; a single consistent row-block decomposition.
ir::Program tomcatv(Int n, int steps = 2);

}  // namespace dct::apps
