// Swm256 (SPEC92): finite-difference shallow-water equations.
// Representative structure: per time step, compute capital-letter
// intermediates (CU, CV, Z, H) from U, V, P with two-dimensional stencil
// offsets, compute the new time level (UNEW, VNEW, PNEW), then copy back.
// Every nest is fully parallel in both dimensions; the decomposition
// phase distributes both (BLOCK, BLOCK).
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program swm256(Int n, int steps) {
  ProgramBuilder pb("swm256");
  const int u = pb.array("U", {n, n}, 4);
  const int v = pb.array("V", {n, n}, 4);
  const int p = pb.array("P", {n, n}, 4);
  const int cu = pb.array("CU", {n, n}, 4);
  const int cv = pb.array("CV", {n, n}, 4);
  const int z = pb.array("Z", {n, n}, 4);
  const int h = pb.array("H", {n, n}, 4);
  const int unew = pb.array("UNEW", {n, n}, 4);
  const int vnew = pb.array("VNEW", {n, n}, 4);
  const int pnew = pb.array("PNEW", {n, n}, 4);

  auto at = [&](int arr, Int di, Int dj) {
    return simple_ref(arr, 2, {{1, di}, {0, dj}});
  };

  {
    LoopNest& nest = pb.nest("calc1", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    Stmt s1;
    s1.write = at(cu, 0, 0);
    s1.reads = {at(p, 0, 0), at(p, -1, 0), at(u, 0, 0)};
    s1.compute_cycles = 3;
    s1.eval = [](std::span<const double> r) {
      return 0.5 * (r[0] + r[1]) * r[2];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = at(cv, 0, 0);
    s2.reads = {at(p, 0, 0), at(p, 0, -1), at(v, 0, 0)};
    s2.compute_cycles = 3;
    s2.eval = [](std::span<const double> r) {
      return 0.5 * (r[0] + r[1]) * r[2];
    };
    nest.stmts.push_back(std::move(s2));
    Stmt s3;
    s3.write = at(z, 0, 0);
    s3.reads = {at(v, 0, 0), at(v, -1, 0), at(u, 0, 0), at(u, 0, -1),
                at(p, 0, 0)};
    s3.compute_cycles = 6;
    s3.eval = [](std::span<const double> r) {
      return (r[0] - r[1] + r[2] - r[3]) / (4.0 * r[4] + 1.0);
    };
    nest.stmts.push_back(std::move(s3));
    Stmt s4;
    s4.write = at(h, 0, 0);
    s4.reads = {at(p, 0, 0), at(u, 0, 0), at(v, 0, 0)};
    s4.compute_cycles = 5;
    s4.eval = [](std::span<const double> r) {
      return r[0] + 0.25 * (r[1] * r[1] + r[2] * r[2]);
    };
    nest.stmts.push_back(std::move(s4));
  }
  {
    LoopNest& nest = pb.nest("calc2", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    Stmt s1;
    s1.write = at(unew, 0, 0);
    s1.reads = {at(u, 0, 0), at(z, 0, 1), at(z, 0, 0), at(cv, 0, 0),
                at(cv, -1, 0), at(h, 0, 0), at(h, -1, 0)};
    s1.compute_cycles = 7;
    s1.eval = [](std::span<const double> r) {
      return r[0] + 0.1 * (r[1] + r[2]) * (r[3] + r[4]) - 0.2 * (r[5] - r[6]);
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = at(vnew, 0, 0);
    s2.reads = {at(v, 0, 0), at(z, 1, 0), at(z, 0, 0), at(cu, 0, 0),
                at(cu, 0, -1), at(h, 0, 0), at(h, 0, -1)};
    s2.compute_cycles = 7;
    s2.eval = [](std::span<const double> r) {
      return r[0] - 0.1 * (r[1] + r[2]) * (r[3] + r[4]) - 0.2 * (r[5] - r[6]);
    };
    nest.stmts.push_back(std::move(s2));
    Stmt s3;
    s3.write = at(pnew, 0, 0);
    s3.reads = {at(p, 0, 0), at(cu, 0, 0), at(cu, -1, 0), at(cv, 0, 0),
                at(cv, 0, -1)};
    s3.compute_cycles = 5;
    s3.eval = [](std::span<const double> r) {
      return r[0] - 0.2 * (r[1] - r[2] + r[3] - r[4]);
    };
    nest.stmts.push_back(std::move(s3));
  }
  {
    LoopNest& nest = pb.nest("copyback", 1);
    nest.loops.push_back(loop("J", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I", cst(1), cst(n - 2)));
    auto copy = [&](int dst, int src) {
      Stmt s;
      s.write = at(dst, 0, 0);
      s.reads = {at(src, 0, 0)};
      s.compute_cycles = 1;
      s.eval = [](std::span<const double> r) { return r[0]; };
      nest.stmts.push_back(std::move(s));
    };
    copy(u, unew);
    copy(v, vnew);
    copy(p, pnew);
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
