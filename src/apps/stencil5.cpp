// Five-point stencil (paper Figure 7) with an explicit copy-back nest so
// the time loop is a genuine relaxation:
//
//   DO time = 1,NSTEPS
//     DO I1 = 2,N-1 ; DO I2 = 2,N-1
//       A(I2,I1) = .2*(B(I2,I1)+B(I2-1,I1)+B(I2+1,I1)+B(I2,I1-1)+B(I2,I1+1))
//     DO I1 = 2,N-1 ; DO I2 = 2,N-1
//       B(I2,I1) = A(I2,I1)
//
// Both nests are fully parallel in both dimensions; the paper's compiler
// chooses a two-dimensional (BLOCK, BLOCK) decomposition for its better
// computation-to-communication ratio.
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program stencil5(Int n, int steps) {
  ProgramBuilder pb("stencil5");
  const int a = pb.array("A", {n, n}, 4);
  const int b = pb.array("B", {n, n}, 4);

  {
    LoopNest& nest = pb.nest("relax", 1);
    nest.loops.push_back(loop("I1", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I2", cst(1), cst(n - 2)));
    Stmt s;
    s.write = simple_ref(a, 2, {{1, 0}, {0, 0}});
    s.reads = {simple_ref(b, 2, {{1, 0}, {0, 0}}),
               simple_ref(b, 2, {{1, -1}, {0, 0}}),
               simple_ref(b, 2, {{1, 1}, {0, 0}}),
               simple_ref(b, 2, {{1, 0}, {0, -1}}),
               simple_ref(b, 2, {{1, 0}, {0, 1}})};
    s.compute_cycles = 5;
    s.eval = [](std::span<const double> r) {
      return 0.2 * (r[0] + r[1] + r[2] + r[3] + r[4]);
    };
    nest.stmts.push_back(std::move(s));
  }
  {
    LoopNest& nest = pb.nest("copyback", 1);
    nest.loops.push_back(loop("I1", cst(1), cst(n - 2)));
    nest.loops.push_back(loop("I2", cst(1), cst(n - 2)));
    Stmt s;
    s.write = simple_ref(b, 2, {{1, 0}, {0, 0}});
    s.reads = {simple_ref(a, 2, {{1, 0}, {0, 0}})};
    s.compute_cycles = 1;
    s.eval = [](std::span<const double> r) { return r[0]; };
    nest.stmts.push_back(std::move(s));
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
