// Vpenta (nasa7 kernel, SPEC92): simultaneous inversion of three
// pentadiagonal matrices. Representative structure:
//
//  - forward elimination over the 2-D work arrays: recurrence along I
//    (stride-1 dimension), independent columns J;
//  - forward and backward substitution over the 3-D right-hand-side array
//    F(N,N,3): recurrence along I, independent over J and the 3 planes.
//
// Each processor accesses a block of columns of the 2-D arrays (already
// contiguous column-major), but its share of F — a J-block of every
// plane — is not contiguous: that is the data-layout opportunity the
// paper highlights.  Decompositions: A..E (*, BLOCK), F (*, BLOCK, *).
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program vpenta(Int n) {
  ProgramBuilder pb("vpenta");
  const int a = pb.array("A", {n, n}, 4);
  const int b = pb.array("B", {n, n}, 4);
  const int c = pb.array("C", {n, n}, 4);
  const int d = pb.array("D", {n, n}, 4);
  const int f = pb.array("F", {n, n, 3}, 4);

  {
    // Forward elimination on the 2-D arrays: J parallel, I recurrent.
    LoopNest& nest = pb.nest("fwd2d", 1);
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("I", cst(2), cst(n - 1)));
    Stmt s1;
    s1.write = simple_ref(a, 2, {{1, 0}, {0, 0}});
    s1.reads = {simple_ref(a, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, 0}, {0, 0}}),
                simple_ref(a, 2, {{1, -1}, {0, 0}}),
                simple_ref(c, 2, {{1, 0}, {0, 0}}),
                simple_ref(a, 2, {{1, -2}, {0, 0}})};
    s1.compute_cycles = 4;
    s1.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[2] - r[3] * r[4];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = simple_ref(d, 2, {{1, 0}, {0, 0}});
    s2.reads = {simple_ref(d, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, 0}, {0, 0}}),
                simple_ref(d, 2, {{1, -1}, {0, 0}})};
    s2.compute_cycles = 2;
    s2.eval = [](std::span<const double> r) { return r[0] - r[1] * r[2]; };
    nest.stmts.push_back(std::move(s2));
  }
  {
    // Forward substitution on the 3-D array: J and K parallel, I
    // recurrent.
    LoopNest& nest = pb.nest("fwd3d", 1);
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("K", cst(0), cst(2)));
    nest.loops.push_back(loop("I", cst(2), cst(n - 1)));
    Stmt s;
    s.write = simple_ref(f, 3, {{2, 0}, {0, 0}, {1, 0}});
    s.reads = {simple_ref(f, 3, {{2, 0}, {0, 0}, {1, 0}}),
               simple_ref(b, 3, {{2, 0}, {0, 0}}),
               simple_ref(f, 3, {{2, -1}, {0, 0}, {1, 0}}),
               simple_ref(c, 3, {{2, 0}, {0, 0}}),
               simple_ref(f, 3, {{2, -2}, {0, 0}, {1, 0}})};
    s.compute_cycles = 4;
    s.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[2] - r[3] * r[4];
    };
    nest.stmts.push_back(std::move(s));
  }
  {
    // Backward substitution: descending I encoded with a reversed
    // subscript (coefficient -1).
    LoopNest& nest = pb.nest("back3d", 1);
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("K", cst(0), cst(2)));
    nest.loops.push_back(loop("Ir", cst(0), cst(n - 3)));
    auto rev = [&](Int off) {
      ArrayRef r;
      r.array = f;
      r.access = linalg::IntMatrix(3, 3);
      r.access.at(0, 2) = -1;  // dim0 = (n-3) - Ir + off
      r.access.at(1, 0) = 1;   // dim1 = J
      r.access.at(2, 1) = 1;   // dim2 = K
      r.offset = {n - 3 + off, 0, 0};
      return r;
    };
    Stmt s;
    s.write = rev(0);
    ArrayRef dref;
    dref.array = d;
    dref.access = linalg::IntMatrix(2, 3);
    dref.access.at(0, 2) = -1;
    dref.access.at(1, 0) = 1;
    dref.offset = {n - 3, 0};
    s.reads = {rev(0), dref, rev(1)};
    s.compute_cycles = 2;
    s.eval = [](std::span<const double> r) { return r[0] - r[1] * r[2]; };
    nest.stmts.push_back(std::move(s));
  }
  return pb.build();
}

}  // namespace dct::apps
