// LU decomposition without pivoting (paper Figure 5):
//
//   DO I1 = 1,N
//     DO I2 = I1+1,N
//       A(I2,I1) = A(I2,I1) / A(I1,I1)          <- depth-2 statement
//       DO I3 = I1+1,N
//         A(I2,I3) = A(I2,I3) - A(I2,I1)*A(I1,I3)
//
// The imperfect nest is expressed with Stmt::depth. The paper's compiler
// assigns all operations on a column to its owner and distributes columns
// cyclically for load balance: A DISTRIBUTE(*, CYCLIC).
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program lu(Int n) {
  ProgramBuilder pb("lu");
  const int a = pb.array("A", {n, n}, 8);

  LoopNest& nest = pb.nest("eliminate", 1);
  nest.loops.push_back(loop("I1", cst(0), cst(n - 2)));
  nest.loops.push_back(loop("I2", var(0) + 1, cst(n - 1)));
  nest.loops.push_back(loop("I3", var(0) + 1, cst(n - 1)));

  {
    Stmt div;
    div.depth = 2;
    div.write = simple_ref(a, 3, {{1, 0}, {0, 0}});
    div.reads = {simple_ref(a, 3, {{1, 0}, {0, 0}}),
                 simple_ref(a, 3, {{0, 0}, {0, 0}})};
    div.compute_cycles = 8;  // FP divide
    div.eval = [](std::span<const double> r) { return r[0] / r[1]; };
    nest.stmts.push_back(std::move(div));
  }
  {
    Stmt upd;
    upd.write = simple_ref(a, 3, {{1, 0}, {2, 0}});
    upd.reads = {simple_ref(a, 3, {{1, 0}, {2, 0}}),
                 simple_ref(a, 3, {{1, 0}, {0, 0}}),
                 simple_ref(a, 3, {{0, 0}, {2, 0}})};
    upd.compute_cycles = 2;
    upd.eval = [](std::span<const double> r) { return r[0] - r[1] * r[2]; };
    nest.stmts.push_back(std::move(upd));
  }
  return pb.build();
}

}  // namespace dct::apps
