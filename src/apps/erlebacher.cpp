// Erlebacher (600-line ICASE benchmark): three-dimensional partial
// derivatives with tridiagonal solves. Representative structure:
//
//  - central differences in X, Y and Z writing DUX, DUY, DUZ (fully
//    parallel);
//  - forward and backward substitution along Z updating DUZ (wavefront
//    in Z).
//
// The input array U is read-only and replicated. The decomposition phase
// gives DUX and DUY a Z-block distribution ((*,*,BLOCK)) and DUZ a
// Y-block distribution ((*,BLOCK,*)) so the Z-solves stay fully parallel;
// the data transformation then makes DUZ's Y-blocks contiguous.
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program erlebacher(Int n, int steps) {
  ProgramBuilder pb("erlebacher");
  const int u = pb.array("U", {n, n, n}, 4);
  const int dux = pb.array("DUX", {n, n, n}, 4);
  const int duy = pb.array("DUY", {n, n, n}, 4);
  const int duz = pb.array("DUZ", {n, n, n}, 4);

  // Loops are (K, J, I) outer-to-inner; array dims are (I, J, K).
  auto deriv = [&](const std::string& name, int target, int diff_dim,
                   Int lo_i, Int hi_i, Int lo_j, Int hi_j, Int lo_k,
                   Int hi_k) {
    LoopNest& nest = pb.nest(name, 1);
    nest.loops.push_back(loop("K", cst(lo_k), cst(hi_k)));
    nest.loops.push_back(loop("J", cst(lo_j), cst(hi_j)));
    nest.loops.push_back(loop("I", cst(lo_i), cst(hi_i)));
    auto uref = [&](Int off) {
      ArrayRef r = simple_ref(u, 3, {{2, 0}, {1, 0}, {0, 0}});
      r.offset[static_cast<size_t>(diff_dim)] = off;
      return r;
    };
    Stmt s;
    s.write = simple_ref(target, 3, {{2, 0}, {1, 0}, {0, 0}});
    s.reads = {uref(1), uref(-1)};
    s.compute_cycles = 2;
    s.eval = [](std::span<const double> r) { return 0.5 * (r[0] - r[1]); };
    nest.stmts.push_back(std::move(s));
  };
  deriv("dux", dux, 0, 1, n - 2, 0, n - 1, 0, n - 1);
  deriv("duy", duy, 1, 0, n - 1, 1, n - 2, 0, n - 1);
  deriv("duz", duz, 2, 0, n - 1, 0, n - 1, 1, n - 2);

  {
    // Forward substitution along Z (wavefront).
    LoopNest& nest = pb.nest("ztri_fwd", 1);
    nest.loops.push_back(loop("K", cst(1), cst(n - 1)));
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("I", cst(0), cst(n - 1)));
    Stmt s;
    s.write = simple_ref(duz, 3, {{2, 0}, {1, 0}, {0, 0}});
    s.reads = {simple_ref(duz, 3, {{2, 0}, {1, 0}, {0, 0}}),
               simple_ref(duz, 3, {{2, 0}, {1, 0}, {0, -1}})};
    s.compute_cycles = 2;
    s.eval = [](std::span<const double> r) { return r[0] - 0.3 * r[1]; };
    nest.stmts.push_back(std::move(s));
  }
  {
    // Backward substitution along Z: descending K via reversed subscripts.
    LoopNest& nest = pb.nest("ztri_bwd", 1);
    nest.loops.push_back(loop("Kr", cst(0), cst(n - 2)));
    nest.loops.push_back(loop("J", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("I", cst(0), cst(n - 1)));
    auto rev = [&](Int off) {
      ArrayRef r;
      r.array = duz;
      r.access = linalg::IntMatrix(3, 3);
      r.access.at(0, 2) = 1;   // I
      r.access.at(1, 1) = 1;   // J
      r.access.at(2, 0) = -1;  // K = (n-2) - Kr + off
      r.offset = {0, 0, n - 2 + off};
      return r;
    };
    Stmt s;
    s.write = rev(0);
    s.reads = {rev(0), rev(1)};
    s.compute_cycles = 2;
    s.eval = [](std::span<const double> r) { return r[0] - 0.3 * r[1]; };
    nest.stmts.push_back(std::move(s));
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
