// ADI integration (paper Figure 9): a column-sweep phase followed by a
// row-sweep phase per time step.
//
//   C Column Sweep                      C Row Sweep
//   DO I1 = 1,N ; DO I2 = 2,N           DO I1 = 2,N ; DO I2 = 1,N
//     X(I2,I1) -= X(I2-1,I1)*A(I2,I1)     X(I2,I1) -= X(I2,I1-1)*A(I2,I1)
//                 /B(I2-1,I1)                         /B(I2,I1-1)
//     B(I2,I1) -= A(I2,I1)*A(I2,I1)       B(I2,I1) -= A(I2,I1)*A(I2,I1)
//                 /B(I2-1,I1)                         /B(I2,I1-1)
//
// A is read-only (replicated); the global decomposition keeps a static
// column-block distribution, running the column sweep as doall and the
// row sweep as doall/pipeline.
#include "apps/apps.hpp"

namespace dct::apps {

using namespace ir;

Program adi(Int n, int steps) {
  ProgramBuilder pb("adi");
  const int x = pb.array("X", {n, n}, 8);
  const int acoef = pb.array("A", {n, n}, 8);
  const int b = pb.array("B", {n, n}, 8);

  {
    LoopNest& nest = pb.nest("col_sweep", 1);
    nest.loops.push_back(loop("I1", cst(0), cst(n - 1)));
    nest.loops.push_back(loop("I2", cst(1), cst(n - 1)));
    Stmt s1;
    s1.write = simple_ref(x, 2, {{1, 0}, {0, 0}});
    s1.reads = {simple_ref(x, 2, {{1, 0}, {0, 0}}),
                simple_ref(x, 2, {{1, -1}, {0, 0}}),
                simple_ref(acoef, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, -1}, {0, 0}})};
    s1.compute_cycles = 10;  // mul + div + sub
    s1.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[2] / r[3];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = simple_ref(b, 2, {{1, 0}, {0, 0}});
    s2.reads = {simple_ref(b, 2, {{1, 0}, {0, 0}}),
                simple_ref(acoef, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, -1}, {0, 0}})};
    s2.compute_cycles = 10;
    s2.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[1] / r[2];
    };
    nest.stmts.push_back(std::move(s2));
  }
  {
    LoopNest& nest = pb.nest("row_sweep", 1);
    nest.loops.push_back(loop("I1", cst(1), cst(n - 1)));
    nest.loops.push_back(loop("I2", cst(0), cst(n - 1)));
    Stmt s1;
    s1.write = simple_ref(x, 2, {{1, 0}, {0, 0}});
    s1.reads = {simple_ref(x, 2, {{1, 0}, {0, 0}}),
                simple_ref(x, 2, {{1, 0}, {0, -1}}),
                simple_ref(acoef, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, 0}, {0, -1}})};
    s1.compute_cycles = 10;
    s1.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[2] / r[3];
    };
    nest.stmts.push_back(std::move(s1));
    Stmt s2;
    s2.write = simple_ref(b, 2, {{1, 0}, {0, 0}});
    s2.reads = {simple_ref(b, 2, {{1, 0}, {0, 0}}),
                simple_ref(acoef, 2, {{1, 0}, {0, 0}}),
                simple_ref(b, 2, {{1, 0}, {0, -1}})};
    s2.compute_cycles = 10;
    s2.eval = [](std::span<const double> r) {
      return r[0] - r[1] * r[1] / r[2];
    };
    nest.stmts.push_back(std::move(s2));
  }
  pb.set_time_steps(steps);
  return pb.build();
}

}  // namespace dct::apps
