// Seeded random affine-program generator and differential fuzzer.
//
// generate_program(seed) builds a small random — but always legal —
// affine program: rectangular nests (depth 1-3, occasionally imperfect),
// 1-3 arrays of rank 1-3, statements whose references are one-hot affine
// maps with in-bounds offsets, and deterministic numeric evaluators. Every
// generated program is a valid input to the full compiler pipeline.
//
// check_program compiles the program in all three modes, executes it at
// several processor counts under BOTH executor engines, and compares every
// run bit-for-bit against the sequential reference (plus the static
// oracles of verify/oracle.hpp). Any disagreement — or any crash — is a
// finding.
//
// When a seed fails, shrink_program greedily drops nests, statements,
// reads and time steps while the failure reproduces, so the reported
// program is a minimal repro. The seed alone replays it:
// generate_program(seed) is deterministic across platforms (splitmix64).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ir/program.hpp"

namespace dct::verify {

struct ProgenOptions {
  int max_arrays = 3;
  int max_nests = 3;
  int max_depth = 3;
  int max_stmts = 2;
  int max_reads = 3;
  int max_time_steps = 2;
  linalg::Int min_extent = 6;   ///< array extents (loops stay shorter)
  linalg::Int max_extent = 10;
};

/// Deterministic: the same seed always yields the same program.
ir::Program generate_program(std::uint64_t seed,
                             const ProgenOptions& opts = {});

/// Differential check: all 3 modes x procs {1, 3, 4} x both engines vs
/// the sequential reference, plus the static validation oracles. Returns
/// a description of the first disagreement (or crash), nullopt on full
/// agreement.
std::optional<std::string> check_program(const ir::Program& prog);

/// Greedy structural shrink: repeatedly drop nests, statements, reads and
/// time steps while `failing` still returns a finding for the reduced
/// program. Returns the smallest failing program found.
ir::Program shrink_program(
    const ir::Program& prog,
    const std::function<std::optional<std::string>(const ir::Program&)>&
        failing = check_program);

/// A divergence found by the fuzzer, already shrunk to a minimal repro.
struct Divergence {
  std::uint64_t seed = 0;
  std::string detail;   ///< disagreement of the SHRUNK program
  ir::Program program;  ///< minimal failing program
};

/// Generate, check, and (on failure) shrink one seed.
std::optional<Divergence> fuzz_one(std::uint64_t seed,
                                   const ProgenOptions& opts = {});

}  // namespace dct::verify
