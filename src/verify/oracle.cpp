#include "verify/oracle.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "dep/dependence.hpp"
#include "native/native.hpp"
#include "runtime/executor.hpp"
#include "support/diagnostics.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace dct::verify {

using decomp::DistKind;
using linalg::floor_div;
using linalg::floor_mod;

namespace {

constexpr size_t kMaxViolations = 16;

void add_violation(OracleReport& rep, std::string msg) {
  if (rep.violations.size() < kMaxViolations)
    rep.violations.push_back(std::move(msg));
  else if (rep.violations.size() == kMaxViolations)
    rep.violations.push_back("... further violations suppressed");
}

/// One random iteration of `nest`, bounds resolved outermost-in; nullopt
/// when a sampled prefix leads to an empty inner range.
std::optional<std::vector<Int>> sample_iteration(const ir::LoopNest& nest,
                                                 Rng& rng) {
  const int d = nest.depth();
  std::vector<Int> iter(static_cast<size_t>(d), 0);
  for (int l = 0; l < d; ++l) {
    const Int lb = nest.loops[static_cast<size_t>(l)].lower_bound(iter);
    const Int ub = nest.loops[static_cast<size_t>(l)].upper_bound(iter);
    if (ub < lb) return std::nullopt;
    iter[static_cast<size_t>(l)] = rng.uniform(lb, ub);
  }
  return iter;
}

/// Walk every original index vector of `decl` in linear order.
template <typename Fn>
void for_each_index(const ir::ArrayDecl& decl, Fn&& fn) {
  const int rank = static_cast<int>(decl.dims.size());
  std::vector<Int> idx(static_cast<size_t>(rank), 0);
  bool done = decl.elem_count() == 0;
  while (!done) {
    fn(std::span<const Int>(idx));
    int k = 0;
    while (k < rank) {
      if (++idx[static_cast<size_t>(k)] < decl.dims[static_cast<size_t>(k)])
        break;
      idx[static_cast<size_t>(k)] = 0;
      ++k;
    }
    if (k == rank) done = true;
  }
}

}  // namespace

std::string OracleReport::to_string() const {
  std::ostringstream os;
  os << oracle << ": " << (ok() ? "ok" : "VIOLATED") << " (" << subjects
     << " subjects, " << checks << " checks)";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// Equation 1: D_x(F_jx(i)) == G_j(i) on DOALL-bound dimensions
// ---------------------------------------------------------------------------

OracleReport check_equation1(const core::CompiledProgram& cp,
                             const OracleOptions& opts) {
  OracleReport rep;
  rep.oracle = "equation1";
  const decomp::ProgramDecomposition& dec = cp.dec;
  Rng rng(opts.seed ^ 0xe91ULL);

  for (size_t j = 0; j < cp.nests.size(); ++j) {
    if (j >= dec.nests.size()) break;
    const decomp::NestDecomposition& nd = dec.nests[j];
    // The condition is exact only where no data is meant to move: skip
    // nests the decomposition itself charged with communication or
    // boundary traffic.
    if (!nd.comm_free || !nd.boundary_free) continue;
    const ir::LoopNest& nest = cp.nests[j].nest;
    if (nest.depth() == 0) continue;
    ++rep.subjects;

    // Statement-level owner loop for a virtual dimension (imperfect nests
    // give different statements different owners), nest-level fallback.
    auto owner_loop = [&](size_t s, int pd) -> int {
      if (s < nd.stmts.size() &&
          pd < static_cast<int>(nd.stmts[s].loop_for_dim.size()) &&
          nd.stmts[s].loop_for_dim[static_cast<size_t>(pd)] >= 0)
        return nd.stmts[s].loop_for_dim[static_cast<size_t>(pd)];
      for (size_t l = 0; l < nd.loops.size(); ++l)
        if (nd.loops[l].proc_dim == pd) return static_cast<int>(l);
      return -1;
    };
    // Nest-level schedule of a virtual dimension.
    auto dim_sched = [&](int pd) {
      for (const decomp::LoopAssignment& la : nd.loops)
        if (la.proc_dim == pd) return la.sched;
      return decomp::LoopSched::Sequential;
    };

    for (int draw = 0; draw < 2 * opts.samples; ++draw) {
      const auto iter = sample_iteration(nest, rng);
      if (!iter) continue;
      for (size_t s = 0; s < nest.stmts.size(); ++s) {
        const ir::Stmt& stmt = nest.stmts[s];
        auto check_ref = [&](const ir::ArrayRef& ref) {
          const auto dc = decomp::data_coords(dec, ref.array,
                                              ref.index(*iter));
          if (!dc) return;  // replicated / fully serial array
          const decomp::ArrayDecomposition& ad =
              dec.arrays[static_cast<size_t>(ref.array)];
          for (int pd = 0; pd < dec.num_proc_dims; ++pd) {
            const Int data_c = (*dc)[static_cast<size_t>(pd)];
            if (data_c < 0) continue;  // dimension unbound for this array
            // Pipelined dimensions move data point-to-point by design;
            // Equation 1 equality is only promised on DOALL dimensions.
            if (dim_sched(pd) != decomp::LoopSched::Distributed) continue;
            // A constant subscript along a distributed dimension is a
            // single-owner broadcast: the cost model reads it through the
            // cache rather than charging communication, so Equation 1
            // makes no alignment claim for it.
            bool constant_subscript = false;
            for (size_t k = 0; k < ad.dims.size(); ++k) {
              if (ad.dims[k].proc_dim != pd) continue;
              bool varies = false;
              for (int c = 0; c < ref.access.cols(); ++c)
                varies |= ref.access.at(static_cast<int>(k), c) != 0;
              constant_subscript = !varies;
              break;
            }
            if (constant_subscript) continue;
            const int l = owner_loop(s, pd);
            if (l < 0) continue;
            ++rep.checks;
            const Int comp_c = (*iter)[static_cast<size_t>(l)];
            if (data_c != comp_c)
              add_violation(
                  rep,
                  strf("%s nest %d stmt %d array %s dim p%d: D_x(F(i))=%lld "
                       "but G(i)=%lld at sampled iteration",
                       cp.program.name.c_str(), static_cast<int>(j),
                       static_cast<int>(s),
                       cp.program.arrays[static_cast<size_t>(ref.array)]
                           .name.c_str(),
                       pd, static_cast<long long>(data_c),
                       static_cast<long long>(comp_c)));
          }
        };
        for (const ir::ArrayRef& r : stmt.reads) check_ref(r);
        if (stmt.write) check_ref(*stmt.write);
      }
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Layout bijectivity: injective into [0, size), closed form == steps
// ---------------------------------------------------------------------------

void check_layout_against(const ir::ArrayDecl& decl,
                          const layout::Layout& layout,
                          const OracleOptions& opts, OracleReport& rep) {
  ++rep.subjects;
  const Int total = layout.size();
  const std::vector<Int>& ldims = layout.dims();

  auto check_index = [&](std::span<const Int> idx,
                         std::unordered_set<Int>* seen) {
    ++rep.checks;
    Int lin = -1;
    try {
      lin = layout.linearize(idx);
    } catch (const Error& e) {
      // linearize bounds-checks on both paths now: a declared index the
      // layout rejects means the layout does not cover the array.
      add_violation(rep, decl.name + ": linearize rejected declared index: " +
                             e.what());
      return;
    }
    if (lin < 0 || lin >= total) {
      add_violation(rep, strf("%s: linearize out of range: %lld not in "
                              "[0, %lld)",
                              decl.name.c_str(), static_cast<long long>(lin),
                              static_cast<long long>(total)));
      return;
    }
    // The step-interpreted mapping must agree with the linear address —
    // this differentially checks dim_functions() (which the §4.3 address
    // walkers are built from) against the transform composition.
    const std::vector<Int> mapped = layout.map_index(idx);
    Int addr = 0, stride = 1;
    bool in_range = mapped.size() == ldims.size();
    for (size_t k = 0; in_range && k < mapped.size(); ++k) {
      in_range = mapped[k] >= 0 && mapped[k] < ldims[k];
      addr += mapped[k] * stride;
      stride *= ldims[k];
    }
    if (!in_range)
      add_violation(rep, decl.name + ": map_index outside restructured dims");
    else if (addr != lin)
      add_violation(rep,
                    strf("%s: closed-form address %lld != step-interpreted "
                         "%lld",
                         decl.name.c_str(), static_cast<long long>(lin),
                         static_cast<long long>(addr)));
    if (seen != nullptr && !seen->insert(lin).second)
      add_violation(rep, strf("%s: address collision at %lld (layout not "
                              "injective)",
                              decl.name.c_str(), static_cast<long long>(lin)));
  };

  if (decl.elem_count() <= opts.exhaustive_below) {
    std::unordered_set<Int> seen;
    seen.reserve(static_cast<size_t>(decl.elem_count()));
    for_each_index(decl, [&](std::span<const Int> idx) {
      check_index(idx, &seen);
    });
  } else {
    // Sampled: distinct original elements must still get distinct
    // addresses.
    Rng rng(opts.seed ^ 0xb13ULL ^ static_cast<std::uint64_t>(total));
    std::unordered_set<Int> orig_seen, addr_seen;
    std::vector<Int> idx(decl.dims.size());
    for (int s = 0; s < opts.samples; ++s) {
      Int orig = 0, stride = 1;
      for (size_t k = 0; k < decl.dims.size(); ++k) {
        idx[k] = rng.uniform(0, decl.dims[k] - 1);
        orig += idx[k] * stride;
        stride *= decl.dims[k];
      }
      if (!orig_seen.insert(orig).second) continue;
      check_index(idx, &addr_seen);
    }
  }
}

OracleReport check_layout_bijectivity(const core::CompiledProgram& cp,
                                      const OracleOptions& opts) {
  OracleReport rep;
  rep.oracle = "layout-bijectivity";
  for (size_t a = 0; a < cp.arrays.size(); ++a)
    check_layout_against(cp.program.arrays[a], cp.arrays[a].layout, opts,
                         rep);
  return rep;
}

// ---------------------------------------------------------------------------
// Fold totality / step-consistency / coverage
// ---------------------------------------------------------------------------

void check_one_fold(const core::CoordFold& fold, Int lo, Int hi,
                    const std::string& subject, const OracleOptions& opts,
                    OracleReport& rep) {
  ++rep.subjects;
  if (fold.procs < 1) {
    add_violation(rep, subject + ": fold has non-positive processor extent");
    return;
  }
  const Int block = std::max<Int>(1, fold.block);
  const Int span = hi >= lo ? hi - lo + 1 : 0;

  // Totality: any Int — including values below the offset and far past the
  // domain — must fold into [0, procs).
  Rng rng(opts.seed ^ 0xf01dULL ^ static_cast<std::uint64_t>(lo));
  const Int ext_lo = lo - 2 * span - 3, ext_hi = hi + 2 * span + 3;
  for (int s = 0; s < opts.samples; ++s) {
    const Int v = rng.uniform(ext_lo, std::max(ext_lo, ext_hi));
    const int c = fold.fold(v);
    ++rep.checks;
    if (c < 0 || c >= fold.procs) {
      add_violation(rep, strf("%s: fold(%lld) = %d outside [0, %d)",
                              subject.c_str(), static_cast<long long>(v), c,
                              fold.procs));
      return;
    }
  }
  if (span == 0) return;

  // Step-consistency and owner coverage over the iteration domain.
  const bool capped = span > opts.coverage_cap;
  const Int whi = capped ? lo + opts.coverage_cap - 1 : hi;
  std::vector<char> hit(static_cast<size_t>(fold.procs), 0);
  int prev = fold.fold(lo);
  hit[static_cast<size_t>(prev)] = 1;
  Int distinct = 1;
  for (Int v = lo + 1; v <= whi; ++v) {
    const int cur = fold.fold(v);
    ++rep.checks;
    bool consistent = true;
    switch (fold.kind) {
      case DistKind::Serial:
        consistent = cur == 0;
        break;
      case DistKind::Block:
        consistent = cur == prev || cur == prev + 1;
        break;
      case DistKind::Cyclic:
        consistent = cur == (prev + 1) % fold.procs;
        break;
      case DistKind::BlockCyclic: {
        const bool boundary = floor_mod(v - fold.offset, block) == 0;
        consistent = boundary ? cur == (prev + 1) % fold.procs : cur == prev;
        break;
      }
    }
    if (!consistent) {
      add_violation(rep,
                    strf("%s: fold stepped %d -> %d at v=%lld (violates %s "
                         "semantics)",
                         subject.c_str(), prev, cur,
                         static_cast<long long>(v),
                         decomp::to_string(fold.kind).c_str()));
      return;
    }
    if (!hit[static_cast<size_t>(cur)]) {
      hit[static_cast<size_t>(cur)] = 1;
      ++distinct;
    }
    prev = cur;
  }
  if (capped) return;

  // Coverage: the walked distinct-owner count must match the analytic one.
  Int expected = 1;
  const Int xlo = lo - fold.offset, xhi = hi - fold.offset;
  switch (fold.kind) {
    case DistKind::Serial:
      expected = 1;
      break;
    case DistKind::Block: {
      const Int clo = std::clamp<Int>(floor_div(xlo, block), 0,
                                      fold.procs - 1);
      const Int chi = std::clamp<Int>(floor_div(xhi, block), 0,
                                      fold.procs - 1);
      expected = chi - clo + 1;
      break;
    }
    case DistKind::Cyclic:
      expected = std::min<Int>(fold.procs, span);
      break;
    case DistKind::BlockCyclic:
      expected = std::min<Int>(fold.procs,
                               floor_div(xhi, block) - floor_div(xlo, block) +
                                   1);
      break;
  }
  ++rep.checks;
  if (distinct != expected)
    add_violation(rep, strf("%s: fold covers %lld owners over [%lld, %lld], "
                            "expected %lld",
                            subject.c_str(), static_cast<long long>(distinct),
                            static_cast<long long>(lo),
                            static_cast<long long>(hi),
                            static_cast<long long>(expected)));
}

OracleReport check_fold_coverage(const core::CompiledProgram& cp,
                                 const OracleOptions& opts) {
  OracleReport rep;
  rep.oracle = "fold-coverage";

  // Owner folds of the lowered schedule, over each nest's iteration hull.
  for (size_t j = 0; j < cp.nests.size(); ++j) {
    const core::CompiledNest& cn = cp.nests[j];
    if (cn.nest.depth() == 0) continue;
    const dep::Hull hull = dep::iteration_hull(cn.nest);
    if (hull.empty) continue;
    for (size_t s = 0; s < cn.stmts.size(); ++s)
      for (const auto& [loop, fold] : cn.stmts[s].owner)
        check_one_fold(fold, hull.lo[static_cast<size_t>(loop)],
                       hull.hi[static_cast<size_t>(loop)],
                       strf("%s nest %d stmt %d loop %d",
                            cp.program.name.c_str(), static_cast<int>(j),
                            static_cast<int>(s), loop),
                       opts, rep);
  }

  // Partition folds: in-range over the array's extent.
  for (size_t a = 0; a < cp.arrays.size(); ++a) {
    const layout::Partition& part = cp.arrays[a].part;
    for (size_t k = 0; k < part.dims.size(); ++k) {
      const layout::Partition::Dim& d = part.dims[k];
      if (d.proc_dim < 0 || d.extent <= 0) continue;
      ++rep.subjects;
      Rng rng(opts.seed ^ 0x9a27ULL ^ static_cast<std::uint64_t>(a << 8 | k));
      for (int s = 0; s < opts.samples; ++s) {
        const Int v = rng.uniform(0, d.extent - 1);
        const int c = part.fold(static_cast<int>(k), v);
        ++rep.checks;
        if (c < 0 || c >= d.procs) {
          add_violation(
              rep, strf("%s dim %d: partition fold(%lld) = %d outside "
                        "[0, %d)",
                        cp.program.arrays[a].name.c_str(),
                        static_cast<int>(k), static_cast<long long>(v), c,
                        d.procs));
          break;
        }
      }
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Differential: fast engine vs interpreter vs sequential reference
// ---------------------------------------------------------------------------

OracleReport check_differential(const core::CompiledProgram& cp,
                                const machine::MachineConfig& mcfg,
                                const OracleOptions& opts) {
  (void)opts;
  OracleReport rep;
  rep.oracle = "differential";
  ++rep.subjects;

  runtime::ExecOptions fast_o;
  fast_o.fast_exec = 1;
  runtime::ExecOptions interp_o;
  interp_o.fast_exec = 0;
  const runtime::RunResult fast = runtime::simulate(cp, mcfg, fast_o);
  const runtime::RunResult interp = runtime::simulate(cp, mcfg, interp_o);

  auto expect_eq = [&](bool eq, const char* what) {
    ++rep.checks;
    if (!eq)
      add_violation(rep, cp.program.name + ": fast engine and interpreter "
                         "disagree on " + what);
  };
  expect_eq(fast.cycles == interp.cycles, "cycles");
  expect_eq(fast.proc_cycles == interp.proc_cycles, "per-processor clocks");
  expect_eq(fast.barrier_cycles == interp.barrier_cycles, "barrier cycles");
  expect_eq(fast.wait_cycles == interp.wait_cycles, "dataflow wait cycles");
  expect_eq(fast.statements == interp.statements, "statement count");
  expect_eq(fast.values == interp.values, "final array values");
  // Memory behaviour must match except the dir_fast_hits counter (the
  // interpreter run disables the directory fast path by design).
  expect_eq(fast.mem.accesses == interp.mem.accesses, "memory accesses");
  expect_eq(fast.mem.l1_hits == interp.mem.l1_hits, "L1 hits");
  expect_eq(fast.mem.memory_cycles == interp.mem.memory_cycles,
            "memory cycles");

  const auto reference = runtime::run_reference(cp.program);
  ++rep.checks;
  if (fast.values != reference)
    add_violation(rep, cp.program.name +
                           ": transformed program diverges from the "
                           "sequential reference");
  return rep;
}

OracleReport check_native(const core::CompiledProgram& cp,
                          const OracleOptions& opts) {
  (void)opts;
  OracleReport rep;
  rep.oracle = "native-differential";
  ++rep.subjects;

  const auto reference = runtime::run_reference(cp.program);
  native::NativeOptions nopts;
  nopts.threads = cp.procs;
  native::NativeResult res;
  try {
    res = native::run_native(cp, nopts);
  } catch (const Error& e) {
    add_violation(rep, cp.program.name + ": native backend failed: " +
                           e.full_message());
    return rep;
  }

  ++rep.checks;
  if (res.values.size() != reference.size()) {
    add_violation(rep, cp.program.name + ": native backend array count "
                       "differs from the reference");
    return rep;
  }
  for (size_t a = 0; a < reference.size(); ++a) {
    ++rep.checks;
    if (res.values[a] == reference[a]) continue;
    size_t at = 0;
    while (at < reference[a].size() &&
           at < res.values[a].size() &&
           res.values[a][at] == reference[a][at])
      ++at;
    add_violation(
        rep, strf("%s: native backend diverges from the reference on "
                  "array %s (%d threads, first mismatch at element %zu)",
                  cp.program.name.c_str(),
                  cp.program.arrays[a].name.c_str(), cp.procs, at));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

bool ValidationReport::ok() const {
  return std::all_of(oracles.begin(), oracles.end(),
                     [](const OracleReport& r) { return r.ok(); });
}

long ValidationReport::total_checks() const {
  long n = 0;
  for (const OracleReport& r : oracles) n += r.checks;
  return n;
}

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const OracleReport& r : oracles) os << r.to_string() << "\n";
  return os.str();
}

void ValidationReport::raise_if_violated(const std::string& unit) const {
  if (ok()) return;
  std::ostringstream os;
  os << unit << ": validation oracles violated:";
  for (const OracleReport& r : oracles)
    for (const std::string& v : r.violations)
      os << "\n  [" << r.oracle << "] " << v;
  throw Error(Error::Code::kOracleViolation, os.str());
}

ValidationReport validate_compiled(const core::CompiledProgram& cp,
                                   const OracleOptions& opts) {
  ValidationReport rep;
  rep.oracles.push_back(check_equation1(cp, opts));
  rep.oracles.push_back(check_layout_bijectivity(cp, opts));
  rep.oracles.push_back(check_fold_coverage(cp, opts));
  return rep;
}

ValidationReport validate_run(const core::CompiledProgram& cp,
                              const machine::MachineConfig& mcfg,
                              const OracleOptions& opts) {
  ValidationReport rep = validate_compiled(cp, opts);
  rep.oracles.push_back(check_differential(cp, mcfg, opts));
  return rep;
}

bool validate_enabled() { return env_int("DCT_VALIDATE", 0) != 0; }

bool native_check_enabled() { return env_int("DCT_NATIVE", 0) != 0; }

}  // namespace dct::verify
