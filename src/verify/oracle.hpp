// Validation oracle layer: runtime self-checks of the invariants the
// paper's correctness argument rests on.
//
// Four oracles, each independent and sampling-based so they stay cheap
// enough to run inside CI sweeps (DCT_VALIDATE=1):
//
//  * equation-1: the no-communication condition D_x(F_jx(i)) = G_j(i)
//    (paper Equation 1). For every communication-free nest, sampled
//    iterations must map each reference's data coordinates onto the
//    iteration's computation coordinates on every DOALL-bound virtual
//    dimension. (Pipelined dimensions move data by design and boundary
//    traffic is excluded by sampling only comm-free + boundary-free
//    nests, so equality there is exact.)
//
//  * layout-bijectivity: strip-mine + permute layouts must be injective
//    into [0, size) — every original element round-trips to a distinct
//    address, and the closed-form dim_functions() (the basis of the §4.3
//    address walkers) must agree with the step-interpreted map_index().
//
//  * fold-coverage: every CoordFold the lowered schedule binds must be
//    total (any Int folds into [0, procs)), step-consistent (consecutive
//    domain values move the owner exactly as BLOCK/CYCLIC/BLOCK-CYCLIC
//    semantics dictate), and cover the analytically expected number of
//    owners over the nest's iteration hull; array Partition folds must be
//    in-range over the array's extent.
//
//  * differential: the fast engine (incremental walkers + directory fast
//    path), the interpreter, and the sequential reference must produce
//    bit-identical results — values, cycles, and statement counts.
//
// validate_compiled() runs the three static oracles; validate_run() adds
// the differential cross-check. The verify pass (core::make_verify_pass)
// runs the static oracles at the tail of the pass pipeline when
// DCT_VALIDATE=1.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/machine.hpp"

namespace dct::verify {

using linalg::Int;

struct OracleOptions {
  int samples = 256;  ///< sampled iterations/elements per subject
  std::uint64_t seed = 0x5eedULL;
  /// Arrays with at most this many elements are checked exhaustively for
  /// address collisions; larger ones are sampled.
  Int exhaustive_below = 4096;
  /// Fold domains wider than this skip the exact coverage count (totality
  /// and step-consistency are still sampled).
  Int coverage_cap = 65536;
};

/// Outcome of one oracle over one compiled program.
struct OracleReport {
  std::string oracle;
  long subjects = 0;  ///< nests / arrays / folds inspected
  long checks = 0;    ///< individual assertions evaluated
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

OracleReport check_equation1(const core::CompiledProgram& cp,
                             const OracleOptions& opts = {});
OracleReport check_layout_bijectivity(const core::CompiledProgram& cp,
                                      const OracleOptions& opts = {});
OracleReport check_fold_coverage(const core::CompiledProgram& cp,
                                 const OracleOptions& opts = {});
/// Runs the program under both engines and the sequential reference;
/// requires mcfg.procs == cp.procs.
OracleReport check_differential(const core::CompiledProgram& cp,
                                const machine::MachineConfig& mcfg,
                                const OracleOptions& opts = {});
/// Runs the native threaded backend at cp.procs hardware threads and
/// demands bit-identical array results against the sequential reference.
/// The verify pass adds this oracle when DCT_NATIVE=1.
OracleReport check_native(const core::CompiledProgram& cp,
                          const OracleOptions& opts = {});

// Low-level entry points, exposed so tests can aim an oracle at a
// deliberately broken subject and prove it has teeth.
void check_layout_against(const ir::ArrayDecl& decl,
                          const layout::Layout& layout,
                          const OracleOptions& opts, OracleReport& rep);
void check_one_fold(const core::CoordFold& fold, Int lo, Int hi,
                    const std::string& subject, const OracleOptions& opts,
                    OracleReport& rep);

struct ValidationReport {
  std::vector<OracleReport> oracles;

  bool ok() const;
  long total_checks() const;
  std::string to_string() const;
  /// Throw Error(kOracleViolation) listing every violation when !ok().
  void raise_if_violated(const std::string& unit) const;
};

/// The three static oracles (no execution).
ValidationReport validate_compiled(const core::CompiledProgram& cp,
                                   const OracleOptions& opts = {});
/// Static oracles plus the differential engine cross-check.
ValidationReport validate_run(const core::CompiledProgram& cp,
                              const machine::MachineConfig& mcfg,
                              const OracleOptions& opts = {});

/// True when the DCT_VALIDATE environment variable requests validation.
bool validate_enabled();

/// True when DCT_NATIVE asks the verify pass to differential-test the
/// native threaded backend as well.
bool native_check_enabled();

}  // namespace dct::verify
