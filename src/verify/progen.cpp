#include "verify/progen.hpp"

#include <algorithm>
#include <vector>

#include "core/compiler.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "verify/oracle.hpp"

namespace dct::verify {

using ir::Stmt;
using linalg::Int;

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

namespace {

/// One-hot reference into `array`: every array dimension either reads a
/// loop below `sdepth` with an offset that keeps the subscript inside the
/// extent for every iteration, or is a constant. `loop_hi[l]` is loop l's
/// inclusive upper bound.
ir::ArrayRef random_ref(Rng& rng, int array, std::span<const Int> dims,
                        int nest_depth, int sdepth,
                        std::span<const Int> loop_hi) {
  std::vector<std::pair<int, Int>> spec;
  for (const Int extent : dims) {
    // Candidate loops that fit inside this extent.
    std::vector<int> fits;
    for (int l = 0; l < sdepth; ++l)
      if (loop_hi[static_cast<size_t>(l)] < extent) fits.push_back(l);
    if (!fits.empty() && rng.uniform(0, 9) < 8) {
      const int l = fits[static_cast<size_t>(
          rng.uniform(0, static_cast<int>(fits.size()) - 1))];
      const Int slack = extent - 1 - loop_hi[static_cast<size_t>(l)];
      spec.push_back({l, rng.uniform(0, slack)});
    } else {
      spec.push_back({-1, rng.uniform(0, extent - 1)});  // constant dim
    }
  }
  return ir::simple_ref(array, nest_depth, spec);
}

}  // namespace

ir::Program generate_program(std::uint64_t seed, const ProgenOptions& opts) {
  Rng rng(seed ^ 0x5eedf00dULL);
  ir::ProgramBuilder pb(strf("fuzz-%llu", static_cast<unsigned long long>(seed)));

  const int narrays = static_cast<int>(rng.uniform(1, opts.max_arrays));
  std::vector<std::vector<Int>> array_dims;
  for (int a = 0; a < narrays; ++a) {
    // Rank weighted toward 2 (the common case in the paper's apps).
    const int roll = static_cast<int>(rng.uniform(0, 9));
    const int rank = roll < 3 ? 1 : roll < 8 ? 2 : 3;
    std::vector<Int> dims;
    for (int k = 0; k < rank; ++k)
      dims.push_back(rng.uniform(opts.min_extent, opts.max_extent));
    pb.array(strf("a%d", a), dims);
    array_dims.push_back(std::move(dims));
  }

  static const double kCoef[] = {0.5, 0.25, 1.0, -0.5};
  static const double kBias[] = {1.0, 0.5, -1.0, 2.0, 0.25};

  const int nnests = static_cast<int>(rng.uniform(1, opts.max_nests));
  for (int j = 0; j < nnests; ++j) {
    ir::LoopNest& nest = pb.nest(strf("n%d", j));
    const int depth = static_cast<int>(rng.uniform(1, opts.max_depth));
    std::vector<Int> loop_hi;
    for (int l = 0; l < depth; ++l) {
      // Loops stay shorter than the smallest extent so offsets have slack.
      loop_hi.push_back(rng.uniform(2, opts.min_extent - 2));
      nest.loops.push_back(ir::loop(strf("i%d", l), ir::cst(0),
                                    ir::cst(loop_hi.back())));
    }

    const int nstmts = static_cast<int>(rng.uniform(1, opts.max_stmts));
    for (int s = 0; s < nstmts; ++s) {
      Stmt stmt;
      // Occasionally an imperfect nest: the statement sits above the
      // innermost loops (LU's divide is the app-side analogue).
      int sdepth = depth;
      if (depth > 1 && rng.uniform(0, 3) == 0)
        sdepth = static_cast<int>(rng.uniform(1, depth - 1));
      stmt.depth = sdepth == depth ? -1 : sdepth;

      const int w = static_cast<int>(rng.uniform(0, narrays - 1));
      stmt.write = random_ref(rng, w, array_dims[static_cast<size_t>(w)],
                              depth, sdepth, loop_hi);
      const int nreads = static_cast<int>(rng.uniform(0, opts.max_reads));
      std::vector<double> coef;
      for (int r = 0; r < nreads; ++r) {
        const int a = static_cast<int>(rng.uniform(0, narrays - 1));
        stmt.reads.push_back(random_ref(
            rng, a, array_dims[static_cast<size_t>(a)], depth, sdepth,
            loop_hi));
        coef.push_back(kCoef[rng.uniform(0, 3)]);
      }
      const double bias = kBias[rng.uniform(0, 4)];
      // The evaluator tolerates FEWER reads than it was built for — the
      // shrinker drops reads without touching the closure.
      stmt.eval = [bias, coef](std::span<const double> vals) {
        double acc = bias;
        const size_t n = std::min(coef.size(), vals.size());
        for (size_t i = 0; i < n; ++i) acc += coef[i] * vals[i];
        return acc;
      };
      stmt.compute_cycles = 4.0;
      nest.stmts.push_back(std::move(stmt));
    }
  }
  pb.set_time_steps(static_cast<int>(rng.uniform(1, opts.max_time_steps)));
  return pb.build();
}

// ---------------------------------------------------------------------------
// Differential check
// ---------------------------------------------------------------------------

std::optional<std::string> check_program(const ir::Program& prog) {
  try {
    const auto reference = runtime::run_reference(prog);
    for (const core::Mode mode :
         {core::Mode::Base, core::Mode::CompDecomp, core::Mode::Full}) {
      for (const int procs : {1, 3, 4}) {
        const core::CompiledProgram cp = core::compile(prog, mode, procs);

        // Static oracles on every compilation.
        const ValidationReport vr = validate_compiled(cp);
        if (!vr.ok())
          return strf("mode=%s procs=%d static oracle violation:\n%s",
                      core::to_string(mode).c_str(), procs,
                      vr.to_string().c_str());

        runtime::RunResult runs[2];
        for (const int fast : {1, 0}) {
          runtime::ExecOptions eopts;
          eopts.fast_exec = fast;
          runs[fast] = runtime::simulate(
              cp, machine::MachineConfig::dash(procs), eopts);
          if (runs[fast].values != reference)
            return strf("mode=%s procs=%d engine=%s diverges from the "
                        "sequential reference",
                        core::to_string(mode).c_str(), procs,
                        fast ? "fast" : "interpreter");
        }
        if (runs[0].cycles != runs[1].cycles ||
            runs[0].statements != runs[1].statements ||
            runs[0].proc_cycles != runs[1].proc_cycles)
          return strf("mode=%s procs=%d engines disagree on timing "
                      "(fast %.1f vs interpreter %.1f cycles)",
                      core::to_string(mode).c_str(), procs, runs[1].cycles,
                      runs[0].cycles);
      }
    }
  } catch (const Error& e) {
    return "crash: " + e.full_message();
  } catch (const std::exception& e) {
    return strf("crash (foreign exception): %s", e.what());
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

ir::Program shrink_program(
    const ir::Program& prog,
    const std::function<std::optional<std::string>(const ir::Program&)>&
        failing) {
  ir::Program best = prog;
  bool progress = true;
  while (progress) {
    progress = false;

    // Drop whole nests.
    for (size_t j = 0; best.nests.size() > 1 && j < best.nests.size();) {
      ir::Program cand = best;
      cand.nests.erase(cand.nests.begin() + static_cast<long>(j));
      if (failing(cand)) {
        best = std::move(cand);
        progress = true;
      } else {
        ++j;
      }
    }
    // Drop statements (a nest keeps at least one).
    for (size_t j = 0; j < best.nests.size(); ++j) {
      for (size_t s = 0;
           best.nests[j].stmts.size() > 1 && s < best.nests[j].stmts.size();) {
        ir::Program cand = best;
        cand.nests[j].stmts.erase(cand.nests[j].stmts.begin() +
                                  static_cast<long>(s));
        if (failing(cand)) {
          best = std::move(cand);
          progress = true;
        } else {
          ++s;
        }
      }
    }
    // Drop reads (evaluators ignore missing trailing reads).
    for (size_t j = 0; j < best.nests.size(); ++j) {
      for (size_t s = 0; s < best.nests[j].stmts.size(); ++s) {
        for (size_t r = 0; r < best.nests[j].stmts[s].reads.size();) {
          ir::Program cand = best;
          cand.nests[j].stmts[s].reads.erase(
              cand.nests[j].stmts[s].reads.begin() + static_cast<long>(r));
          if (failing(cand)) {
            best = std::move(cand);
            progress = true;
          } else {
            ++r;
          }
        }
      }
    }
    // Collapse the time loop.
    if (best.time_steps > 1) {
      ir::Program cand = best;
      cand.time_steps = 1;
      if (failing(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
  }
  return best;
}

std::optional<Divergence> fuzz_one(std::uint64_t seed,
                                   const ProgenOptions& opts) {
  const ir::Program prog = generate_program(seed, opts);
  if (!check_program(prog)) return std::nullopt;
  Divergence d;
  d.seed = seed;
  d.program = shrink_program(prog);
  d.detail = check_program(d.program).value_or("(not reproducible?)");
  return d;
}

}  // namespace dct::verify
