#include "runtime/walker.hpp"

#include "support/diagnostics.hpp"

namespace dct::runtime {

using linalg::floor_div;
using linalg::floor_mod;

bool RefWalker::build(const core::CompiledRef& ref,
                      const layout::Layout& layout, int depth) {
  if (!layout.all_simple()) return false;
  ref_ = &ref;
  depth_ = depth;
  subs_.assign(static_cast<size_t>(ref.rank), 0);
  dims_.clear();
  active_.clear();
  inner_delta_ = 0;
  addr_ = 0;

  const std::vector<layout::Layout::DimFn>& fns = layout.dim_functions();
  const std::vector<Int> strides = layout.strides();
  for (size_t k = 0; k < fns.size(); ++k) {
    const layout::Layout::DimFn& f = fns[k];
    if (f.src < 0 || f.src >= ref.rank) return false;
    InitDim d;
    d.src = f.src;
    d.div = f.div;
    d.mod = f.mod;
    d.stride = strides[k];
    const Int c =
        depth > 0 ? ref.coeffs[static_cast<size_t>(f.src) *
                                   static_cast<size_t>(depth) +
                               static_cast<size_t>(depth - 1)]
                  : 0;
    if (c != 0) {
      if (f.div == 1 && f.mod == 0) {
        // Untransformed dimension: its contribution changes by a constant
        // every step — fold it into one add.
        inner_delta_ += c * d.stride;
      } else {
        d.active = static_cast<int>(active_.size());
        active_.push_back(DimState{f.div, f.mod, d.stride, c, 0, 0});
      }
    }
    dims_.push_back(d);
  }
  return true;
}

void RefWalker::init(std::span<const Int> iter) {
  const core::CompiledRef& ref = *ref_;
  for (int r = 0; r < ref.rank; ++r) {
    Int v = ref.offsets[static_cast<size_t>(r)];
    const Int* row = ref.coeffs.data() +
                     static_cast<size_t>(r) * static_cast<size_t>(depth_);
    for (int k = 0; k < depth_; ++k) v += row[k] * iter[static_cast<size_t>(k)];
    subs_[static_cast<size_t>(r)] = v;
  }
  addr_ = 0;
  for (const InitDim& d : dims_) {
    const Int s = subs_[static_cast<size_t>(d.src)];
    const Int q = floor_div(s, d.div);
    const Int v = d.mod != 0 ? floor_mod(q, d.mod) : q;
    addr_ += v * d.stride;
    if (d.active >= 0) {
      DimState& st = active_[static_cast<size_t>(d.active)];
      st.rem = s - q * d.div;
      st.v = v;
    }
  }
}

}  // namespace dct::runtime
