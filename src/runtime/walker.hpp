// Incremental address walkers (the paper's Section 4.3 strength reduction,
// applied to the simulator's own hot loop).
//
// A restructured address is sum_k v_k * stride_k where each restructured
// dimension has the closed form v_k = (s / div_k) mod mod_k over one affine
// subscript s of the reference. Re-evaluating that per access costs a div
// and a mod per distributed dimension (Layout::linearize). But along the
// innermost loop every subscript advances by a constant, so the address can
// be maintained with constant adds: untransformed dimensions contribute a
// precomputed per-step delta, and each strip-mined dimension keeps a small
// counter (rem, v) that is incremented and compared, with the wrap work done
// only at strip boundaries — exactly the strip-range recognition / mod-div
// strength reduction the paper applies to its generated SPMD code.
//
// A walker is built once per (nest, statement, reference) before the
// iteration-space walk; construction fails (and the executor falls back to
// Layout::linearize) for layouts with a non-simple dimension, so results
// are bit-identical by construction.
#pragma once

#include <span>
#include <vector>

#include "core/compiler.hpp"
#include "layout/layout.hpp"

namespace dct::runtime {

using linalg::Int;

class RefWalker {
 public:
  /// Prepare the walker for `ref` inside a nest of the given depth. Returns
  /// false when the layout cannot be walked incrementally (non-simple
  /// dimension); the walker must not be used then.
  bool build(const core::CompiledRef& ref, const layout::Layout& layout,
             int depth);

  /// Position the walker at iteration `iter` (full iteration vector, the
  /// innermost coordinate included). One div/mod per dimension — amortized
  /// over the innermost segment.
  void init(std::span<const Int> iter);

  /// Linearized element address at the current position; equals
  /// layout.linearize(subscripts(iter)) at every step.
  Int addr() const { return addr_; }

  /// Advance the innermost loop coordinate by one.
  void step() {
    addr_ += inner_delta_;
    for (DimState& d : active_) {
      d.rem += d.c;
      settle(d);
    }
  }

  /// Advance the innermost loop coordinate by `n` steps at once (CYCLIC
  /// per-thread strides, jumps between owned BLOCK-CYCLIC runs). The wrap
  /// loops run once per strip boundary crossed, so a jump costs the same
  /// boundary work the skipped iterations would have.
  void step_n(Int n) {
    addr_ += inner_delta_ * n;
    for (DimState& d : active_) {
      d.rem += d.c * n;
      settle(d);
    }
  }

 private:
  /// Strip-mined dimension whose subscript varies with the innermost loop:
  /// incremental state for v = (s / div) mod mod.
  struct DimState {
    Int div = 1;
    Int mod = 0;     ///< 0 = no modulus
    Int stride = 0;  ///< column-major element stride of this dimension
    Int c = 0;       ///< subscript delta per innermost step
    Int rem = 0;     ///< s mod div, kept in [0, div)
    Int v = 0;       ///< current dimension value
  };
  /// Carry strip-counter overflow/underflow into the address after an
  /// increment of d.rem (any magnitude).
  void settle(DimState& d) {
    while (d.rem >= d.div) {
      d.rem -= d.div;
      ++d.v;
      addr_ += d.stride;
      if (d.mod != 0 && d.v == d.mod) {
        d.v = 0;
        addr_ -= d.mod * d.stride;
      }
    }
    while (d.rem < 0) {
      d.rem += d.div;
      --d.v;
      addr_ -= d.stride;
      if (d.mod != 0 && d.v < 0) {
        d.v = d.mod - 1;
        addr_ += d.mod * d.stride;
      }
    }
  }

  /// Everything needed to (re)initialize one restructured dimension.
  struct InitDim {
    int src = 0;  ///< subscript row the dimension reads
    Int div = 1;
    Int mod = 0;
    Int stride = 0;
    int active = -1;  ///< index into active_, -1 when not stepped
  };

  const core::CompiledRef* ref_ = nullptr;
  std::vector<InitDim> dims_;
  std::vector<DimState> active_;
  std::vector<Int> subs_;  ///< scratch: subscript per row during init
  Int inner_delta_ = 0;    ///< per-step delta of the untransformed dims
  Int addr_ = 0;
  int depth_ = 0;
};

}  // namespace dct::runtime
