// SPMD execution engine over the machine simulator.
//
// Statement instances execute on their owner processor (owner-computes,
// per-statement as produced by the decomposition). The engine walks the
// iteration space in program order, keeps a clock per processor, and
// enforces cross-processor dataflow: a read of a value written by another
// processor waits for the writer's completion time (plus a hand-off cost)
// — pipelined doacross schedules and the LU pivot broadcast fall out of
// this rule without special cases. Barriers separate nests unless the
// decomposition proved them redundant.
//
// The engine also evaluates every statement numerically, so the same run
// that measures performance verifies that the transformed program
// computes bit-identical results to the sequential reference.
#pragma once

#include <vector>

#include "core/compiler.hpp"
#include "machine/machine.hpp"

namespace dct::runtime {

using linalg::Int;

struct RunResult {
  double cycles = 0;  ///< parallel completion time (max processor clock)
  std::vector<double> proc_cycles;
  machine::ProcStats mem;  ///< aggregated over processors
  double barrier_cycles = 0;
  double wait_cycles = 0;  ///< cross-processor dataflow stalls
  long long statements = 0;
  /// Final contents of every array, indexed by the ORIGINAL element order
  /// (layout-independent, for bit-exact comparison across modes).
  std::vector<std::vector<double>> values;
};

struct ExecOptions {
  bool collect_values = true;  ///< fill RunResult::values
  std::uint64_t init_seed = 42;
};

/// Simulate the compiled program on the machine. `mcfg.procs` must match
/// the compiled processor count.
RunResult simulate(const core::CompiledProgram& cp,
                   const machine::MachineConfig& mcfg,
                   const ExecOptions& opts = {});

/// Sequential reference execution (no machine model): returns the final
/// array contents in original element order.
std::vector<std::vector<double>> run_reference(const ir::Program& prog,
                                               std::uint64_t init_seed = 42);

}  // namespace dct::runtime
