// SPMD execution engine over the machine simulator.
//
// Statement instances execute on their owner processor (owner-computes,
// per-statement as produced by the decomposition). The engine walks the
// iteration space in program order, keeps a clock per processor, and
// enforces cross-processor dataflow: a read of a value written by another
// processor waits for the writer's completion time (plus a hand-off cost)
// — pipelined doacross schedules and the LU pivot broadcast fall out of
// this rule without special cases. Barriers separate nests unless the
// decomposition proved them redundant.
//
// The engine also evaluates every statement numerically, so the same run
// that measures performance verifies that the transformed program
// computes bit-identical results to the sequential reference.
//
// Two engines produce bit-identical results (clocks, statistics, values):
//
//  * the FAST engine (default) compiles, per (nest, statement, reference),
//    an incremental address walker (runtime/walker.hpp) before walking the
//    iteration space — inner-loop addresses advance by constant adds with
//    mod/div only at strip boundaries (the paper's Section 4.3 strength
//    reduction applied to the simulator itself) — and hoists per-statement
//    owner computation out of the innermost loop where it is invariant;
//  * the INTERPRETER re-evaluates the affine subscripts and calls
//    Layout::linearize on every access.
//
// References the walker cannot prove affine-incremental fall back to
// linearize automatically. DCT_FAST_EXEC=0 (or ExecOptions::fast_exec = 0)
// forces the interpreter and the full directory protocol in the machine.
#pragma once

#include <vector>

#include "core/compiler.hpp"
#include "machine/machine.hpp"
#include "support/cancel.hpp"
#include "support/remark.hpp"

namespace dct::runtime {

using linalg::Int;

/// Simulator-throughput counters of one run (how the engine produced its
/// addresses and accesses, not what the simulated machine did).
struct ExecCounters {
  long long walker_fast = 0;         ///< addresses produced incrementally
  long long linearize_fallback = 0;  ///< addresses via Layout::linearize
  long long dir_fast = 0;            ///< machine accesses skipping the directory
  long long owner_hoisted = 0;       ///< statement executions with the owner
                                     ///< computed outside the inner loop
};

struct RunResult {
  double cycles = 0;  ///< parallel completion time (max processor clock)
  std::vector<double> proc_cycles;
  machine::ProcStats mem;  ///< aggregated over processors
  double barrier_cycles = 0;
  double wait_cycles = 0;  ///< cross-processor dataflow stalls
  long long statements = 0;
  ExecCounters counters;
  /// One-pass "simulate" trace record carrying the sim_* counters;
  /// core::run_sweep merges it into the sweep's pipeline trace.
  support::PipelineTrace trace;
  /// Final contents of every array, indexed by the ORIGINAL element order
  /// (layout-independent, for bit-exact comparison across modes).
  std::vector<std::vector<double>> values;
};

struct ExecOptions {
  bool collect_values = true;  ///< fill RunResult::values
  std::uint64_t init_seed = 42;
  /// Engine selection: 1 = fast (walkers + machine fast path), 0 =
  /// interpreter, -1 = read the DCT_FAST_EXEC env var (default on).
  int fast_exec = -1;
  /// Cooperative cancellation: the engines poll this token at segment
  /// granularity and throw Error(kCancelled / kDeadlineExceeded) when it
  /// expires. A default (inert) token costs one branch per segment.
  support::CancelToken cancel;
};

/// Simulate the compiled program on the machine. `mcfg.procs` must match
/// the compiled processor count. Throws Error(kUnsupportedConfig) for
/// processor counts beyond the int8 writer-id dataflow state (> 127).
RunResult simulate(const core::CompiledProgram& cp,
                   const machine::MachineConfig& mcfg,
                   const ExecOptions& opts = {});

/// Sequential reference execution (no machine model): returns the final
/// array contents in original element order.
std::vector<std::vector<double>> run_reference(const ir::Program& prog,
                                               std::uint64_t init_seed = 42);

/// Deterministic initial value of one array element, identical across
/// layouts, modes and engines (keyed by the element's ORIGINAL linear
/// index). Shared by the simulator, the reference and the native backend
/// so their results are bit-comparable.
double init_value(std::uint64_t seed, int array, Int orig_linear);

}  // namespace dct::runtime
