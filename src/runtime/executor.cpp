#include "runtime/executor.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace dct::runtime {

using core::CompiledProgram;
using core::CompiledRef;
using core::CompiledStmt;

namespace {

/// Deterministic initial value of one array element, identical across
/// layouts and modes (keyed by the element's ORIGINAL linear index).
double init_value(std::uint64_t seed, int array, Int orig_linear) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(array + 1) << 40) ^
          static_cast<std::uint64_t>(orig_linear));
  return 1.0 + rng.uniform01();  // in [1, 2): safe divisor
}

/// Walk an array's original index space in linear (column-major) order.
template <typename Fn>
void for_each_element(const ir::ArrayDecl& decl, Fn&& fn) {
  const int rank = static_cast<int>(decl.dims.size());
  std::vector<Int> idx(static_cast<size_t>(rank), 0);
  Int linear = 0;
  bool done = false;
  while (!done) {
    fn(std::span<const Int>(idx), linear);
    ++linear;
    int k = 0;
    while (k < rank) {
      if (++idx[static_cast<size_t>(k)] < decl.dims[static_cast<size_t>(k)])
        break;
      idx[static_cast<size_t>(k)] = 0;
      ++k;
    }
    if (k == rank) done = true;
  }
}

struct ArrayState {
  std::vector<double> data;    ///< by restructured element address
  std::vector<double> wtime;   ///< last write completion time
  std::vector<std::int8_t> wproc;  ///< last writer, -1 = initial data
};

}  // namespace

RunResult simulate(const CompiledProgram& cp,
                   const machine::MachineConfig& mcfg,
                   const ExecOptions& opts) {
  DCT_CHECK(mcfg.procs == cp.procs, "machine/compile processor mismatch");
  machine::Machine machine(mcfg);
  const int P = cp.procs;
  const ir::Program& prog = cp.program;

  // Mixed-radix strides per virtual dimension (same rule as the compiler).
  std::vector<int> stride(static_cast<size_t>(cp.dec.num_proc_dims), 1);
  for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd)
    for (int q = 0; q < pd; ++q)
      if (cp.dec.clique_id[static_cast<size_t>(q)] ==
          cp.dec.clique_id[static_cast<size_t>(pd)])
        stride[static_cast<size_t>(pd)] *= cp.grid[static_cast<size_t>(q)];

  auto owner_of_coords = [&](const std::vector<int>& coords) {
    int proc = 0;
    for (size_t pd = 0; pd < coords.size(); ++pd)
      if (coords[pd] >= 0) proc += coords[pd] * stride[pd];
    return std::min(proc, P - 1);
  };

  // ---- array state + page homing ----
  std::vector<ArrayState> state(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const core::CompiledArray& ca = cp.arrays[a];
    const ir::ArrayDecl& decl = prog.arrays[a];
    state[a].data.assign(static_cast<size_t>(ca.layout.size()), 0.0);
    state[a].wtime.assign(state[a].data.size(), 0.0);
    state[a].wproc.assign(state[a].data.size(), -1);

    const bool distributed =
        !ca.replicated &&
        std::any_of(ca.part.dims.begin(), ca.part.dims.end(),
                    [](const auto& d) { return d.proc_dim >= 0; });
    const Int pages = ca.bytes / mcfg.page_bytes;
    std::vector<std::pair<Int, int>> page_owner(
        static_cast<size_t>(pages), {INT64_MAX, -1});
    for_each_element(decl, [&](std::span<const Int> idx, Int) {
      const Int lin = ca.layout.linearize(idx);
      state[a].data[static_cast<size_t>(lin)] =
          init_value(opts.init_seed, static_cast<int>(a),
                     // original linear index for layout-independence
                     [&] {
                       Int l = 0, s = 1;
                       for (size_t k = 0; k < idx.size(); ++k) {
                         l += idx[k] * s;
                         s *= decl.dims[k];
                       }
                       return l;
                     }());
      if (!distributed) return;
      const Int byte = lin * decl.elem_size;
      const Int page = byte / mcfg.page_bytes;
      auto& po = page_owner[static_cast<size_t>(page)];
      if (byte < po.first)
        po = {byte, owner_of_coords(ca.part.owner(idx))};
    });
    if (ca.replicated) {
      for (int c = 0; c < mcfg.clusters(); ++c)
        for (Int pg = 0; pg < pages; ++pg)
          machine.home_page(ca.base_addr + c * ca.bytes +
                                pg * mcfg.page_bytes,
                            c);
    } else if (distributed) {
      for (Int pg = 0; pg < pages; ++pg) {
        const int owner = page_owner[static_cast<size_t>(pg)].second;
        if (owner >= 0)
          machine.home_page(ca.base_addr + pg * mcfg.page_bytes,
                            mcfg.cluster_of(owner));
      }
    }
    // Base mode / serial arrays: left to round-robin first touch.
  }

  // ---- execution ----
  RunResult res;
  res.proc_cycles.assign(static_cast<size_t>(P), 0.0);
  std::vector<double>& clock = res.proc_cycles;

  std::vector<Int> scratch(8, 0);
  std::vector<double> vals(16, 0.0);

  auto run_nest = [&](const core::CompiledNest& cn) {
    const int d = static_cast<int>(cn.nest.loops.size());
    if (d == 0) return;
    std::vector<Int> iter(static_cast<size_t>(d)), lb(static_cast<size_t>(d)),
        ub(static_cast<size_t>(d));

    auto body = [&]() {
      for (const CompiledStmt& cs : cn.stmts) {
        if (cs.depth < d) {
          bool first = true;
          for (int k = cs.depth; k < d && first; ++k)
            first = iter[static_cast<size_t>(k)] == lb[static_cast<size_t>(k)];
          if (!first) continue;
        }
        int q = 0;
        for (const auto& [loop, fold] : cs.owner)
          q += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
        if (q >= P) q = P - 1;

        double t = clock[static_cast<size_t>(q)] + cs.compute_cycles;
        const int cluster = mcfg.cluster_of(q);

        auto element_addr = [&](const CompiledRef& ref) {
          for (int r = 0; r < ref.rank; ++r) {
            Int v = ref.offsets[static_cast<size_t>(r)];
            const Int* row =
                ref.coeffs.data() + static_cast<size_t>(r) *
                                        static_cast<size_t>(d);
            for (int k = 0; k < d; ++k) v += row[k] * iter[static_cast<size_t>(k)];
            scratch[static_cast<size_t>(r)] = v;
          }
          return cp.arrays[static_cast<size_t>(ref.array)].layout.linearize(
              std::span<const Int>(scratch.data(),
                                   static_cast<size_t>(ref.rank)));
        };

        size_t vi = 0;
        for (const CompiledRef& ref : cs.reads) {
          const core::CompiledArray& ca =
              cp.arrays[static_cast<size_t>(ref.array)];
          const Int lin = element_addr(ref);
          ArrayState& as = state[static_cast<size_t>(ref.array)];
          // Cross-processor dataflow.
          const std::int8_t wp = as.wproc[static_cast<size_t>(lin)];
          if (wp >= 0 && wp != q) {
            const double wt = as.wtime[static_cast<size_t>(lin)];
            if (wt > t) {
              res.wait_cycles += wt - t;
              t = wt + mcfg.lock_cycles;
            }
          }
          Int byte = ca.base_addr +
                     lin * prog.arrays[static_cast<size_t>(ref.array)].elem_size;
          if (ca.replicated) byte += static_cast<Int>(cluster) * ca.bytes;
          t += machine.access(q, byte, false) + ref.addr_overhead;
          vals[vi++] = as.data[static_cast<size_t>(lin)];
        }
        for (const CompiledRef& ref : cs.writes) {
          const core::CompiledArray& ca =
              cp.arrays[static_cast<size_t>(ref.array)];
          DCT_CHECK(!ca.replicated, "write to replicated array");
          const Int lin = element_addr(ref);
          ArrayState& as = state[static_cast<size_t>(ref.array)];
          const Int byte =
              ca.base_addr +
              lin * prog.arrays[static_cast<size_t>(ref.array)].elem_size;
          t += machine.access(q, byte, true) + ref.addr_overhead;
          if (cs.eval)
            as.data[static_cast<size_t>(lin)] =
                cs.eval(std::span<const double>(vals.data(), vi));
          as.wproc[static_cast<size_t>(lin)] = static_cast<std::int8_t>(q);
          as.wtime[static_cast<size_t>(lin)] = t;
        }
        clock[static_cast<size_t>(q)] = t;
        ++res.statements;
      }
    };

    int level = 0;
    iter[0] = lb[0] = cn.nest.loops[0].lower_bound(iter);
    ub[0] = cn.nest.loops[0].upper_bound(iter);
    while (level >= 0) {
      if (iter[static_cast<size_t>(level)] > ub[static_cast<size_t>(level)]) {
        --level;
        if (level >= 0) ++iter[static_cast<size_t>(level)];
        continue;
      }
      if (level == d - 1) {
        body();
        ++iter[static_cast<size_t>(level)];
      } else {
        ++level;
        iter[static_cast<size_t>(level)] = lb[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].lower_bound(iter);
        ub[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].upper_bound(iter);
      }
    }
  };

  for (int step = 0; step < prog.time_steps; ++step) {
    for (size_t j = 0; j < cp.nests.size(); ++j) {
      run_nest(cp.nests[j]);
      const bool last =
          step == prog.time_steps - 1 && j == cp.nests.size() - 1;
      if (P > 1 && (cp.nests[j].barrier_after || last)) {
        const double m = *std::max_element(clock.begin(), clock.end());
        const double bc = machine.barrier_cost(P);
        for (double& c : clock) c = m + bc;
        res.barrier_cycles += bc;
      }
    }
  }

  res.cycles = *std::max_element(clock.begin(), clock.end());
  res.mem = machine.total_stats();

  if (opts.collect_values) {
    res.values.resize(prog.arrays.size());
    for (size_t a = 0; a < prog.arrays.size(); ++a) {
      const ir::ArrayDecl& decl = prog.arrays[a];
      res.values[a].resize(static_cast<size_t>(decl.elem_count()));
      for_each_element(decl, [&](std::span<const Int> idx, Int linear) {
        res.values[a][static_cast<size_t>(linear)] =
            state[a].data[static_cast<size_t>(
                cp.arrays[a].layout.linearize(idx))];
      });
    }
  }
  return res;
}

std::vector<std::vector<double>> run_reference(const ir::Program& prog,
                                               std::uint64_t init_seed) {
  std::vector<std::vector<double>> data(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const ir::ArrayDecl& decl = prog.arrays[a];
    data[a].resize(static_cast<size_t>(decl.elem_count()));
    for (Int l = 0; l < decl.elem_count(); ++l)
      data[a][static_cast<size_t>(l)] =
          init_value(init_seed, static_cast<int>(a), l);
  }
  auto linear_of = [&](const ir::ArrayDecl& decl, std::span<const Int> idx) {
    Int l = 0, s = 1;
    for (size_t k = 0; k < idx.size(); ++k) {
      l += idx[k] * s;
      s *= decl.dims[k];
    }
    return l;
  };

  std::vector<double> vals(16);
  for (int step = 0; step < prog.time_steps; ++step) {
    for (const ir::LoopNest& nest : prog.nests) {
      const int d = nest.depth();
      // Track lower bounds for imperfect-nest statement gating.
      std::vector<Int> lbs(static_cast<size_t>(d));
      ir::for_each_iteration(nest, [&](std::span<const Int> iter) {
        for (int k = 0; k < d; ++k) {
          // Recompute lower bound at this prefix (cheap: bounds are tiny).
          lbs[static_cast<size_t>(k)] =
              nest.loops[static_cast<size_t>(k)].lower_bound(iter);
        }
        for (const ir::Stmt& s : nest.stmts) {
          const int sd = s.effective_depth(d);
          bool first = true;
          for (int k = sd; k < d && first; ++k)
            first = iter[static_cast<size_t>(k)] == lbs[static_cast<size_t>(k)];
          if (!first) continue;
          size_t vi = 0;
          for (const ir::ArrayRef& r : s.reads) {
            const auto idx = r.index(iter);
            vals[vi++] = data[static_cast<size_t>(r.array)][static_cast<size_t>(
                linear_of(prog.arrays[static_cast<size_t>(r.array)], idx))];
          }
          if (s.write && s.eval) {
            const auto idx = s.write->index(iter);
            data[static_cast<size_t>(s.write->array)][static_cast<size_t>(
                linear_of(prog.arrays[static_cast<size_t>(s.write->array)],
                          idx))] =
                s.eval(std::span<const double>(vals.data(), vi));
          }
        }
      });
    }
  }
  return data;
}

}  // namespace dct::runtime
