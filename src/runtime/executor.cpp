#include "runtime/executor.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/walker.hpp"
#include "support/diagnostics.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace dct::runtime {

using core::CompiledProgram;
using core::CompiledRef;
using core::CompiledStmt;

double init_value(std::uint64_t seed, int array, Int orig_linear) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(array + 1) << 40) ^
          static_cast<std::uint64_t>(orig_linear));
  return 1.0 + rng.uniform01();  // in [1, 2): safe divisor
}

namespace {

/// Walk an array's original index space in linear (column-major) order.
template <typename Fn>
void for_each_element(const ir::ArrayDecl& decl, Fn&& fn) {
  const int rank = static_cast<int>(decl.dims.size());
  std::vector<Int> idx(static_cast<size_t>(rank), 0);
  Int linear = 0;
  bool done = false;
  while (!done) {
    fn(std::span<const Int>(idx), linear);
    ++linear;
    int k = 0;
    while (k < rank) {
      if (++idx[static_cast<size_t>(k)] < decl.dims[static_cast<size_t>(k)])
        break;
      idx[static_cast<size_t>(k)] = 0;
      ++k;
    }
    if (k == rank) done = true;
  }
}

/// Per-element simulation state, one cache-friendly record per address:
/// the value, the completion time of the last write and the writer id
/// (-1 = initial data). Keeping the three together costs one cache line
/// per access instead of up to three.
struct Cell {
  double data = 0;
  double wtime = 0;
  std::int8_t wproc = -1;
};

struct ArrayState {
  std::vector<Cell> cells;  ///< by restructured element address
};

/// Incremental owner fold over the innermost loop variable: the same
/// BLOCK / CYCLIC / BLOCK-CYCLIC folding as core::CoordFold::fold, but
/// maintained by increment-and-compare instead of div/mod per iteration.
struct OwnerStep {
  decomp::DistKind kind = decomp::DistKind::Serial;
  Int block = 1;
  int procs = 1;
  int stride = 1;
  Int offset = 0;
  // State.
  Int rem = 0;  ///< (v - offset) mod block, in [0, block)
  Int f = 0;    ///< unclamped floor((v - offset) / block)
  int g = 0;    ///< f mod procs (CYCLIC: (v - offset) mod procs)

  explicit OwnerStep(const core::CoordFold& cf)
      : kind(cf.kind), block(std::max<Int>(1, cf.block)), procs(cf.procs),
        stride(cf.stride), offset(cf.offset) {}

  void init(Int v) {
    const Int x = v - offset;
    switch (kind) {
      case decomp::DistKind::Serial:
        break;
      case decomp::DistKind::Block:
        f = linalg::floor_div(x, block);
        rem = x - f * block;
        break;
      case decomp::DistKind::Cyclic:
        g = static_cast<int>(linalg::floor_mod(x, procs));
        break;
      case decomp::DistKind::BlockCyclic:
        f = linalg::floor_div(x, block);
        rem = x - f * block;
        g = static_cast<int>(linalg::floor_mod(f, procs));
        break;
    }
  }

  void step() {
    switch (kind) {
      case decomp::DistKind::Serial:
        break;
      case decomp::DistKind::Block:
        if (++rem == block) { rem = 0; ++f; }
        break;
      case decomp::DistKind::Cyclic:
        if (++g == procs) g = 0;
        break;
      case decomp::DistKind::BlockCyclic:
        if (++rem == block) {
          rem = 0;
          if (++g == procs) g = 0;
        }
        break;
    }
  }

  /// Folded coordinate times the mixed-radix stride (CoordFold semantics).
  int value() const {
    switch (kind) {
      case decomp::DistKind::Serial:
        return 0;
      case decomp::DistKind::Block:
        return static_cast<int>(std::clamp<Int>(f, 0, procs - 1)) * stride;
      case decomp::DistKind::Cyclic:
      case decomp::DistKind::BlockCyclic:
        return g * stride;
    }
    return 0;
  }
};

/// Per-reference execution plan of the fast engine.
struct RefPlan {
  const CompiledRef* ref = nullptr;
  const core::CompiledArray* ca = nullptr;
  ArrayState* as = nullptr;
  Int base_addr = 0;
  Int elem_size = 8;
  Int copy_bytes = 0;
  bool replicated = false;
  double addr_overhead = 0;
  bool walk = false;  ///< addresses come from the incremental walker
  RefWalker walker;
};

/// Per-statement execution plan of the fast engine.
struct StmtPlan {
  const CompiledStmt* cs = nullptr;
  bool full_depth = false;  ///< executes on every innermost iteration
  double compute_cycles = 0;  ///< cached from cs for the hot loop
  bool has_eval = false;
  /// Owner pairs invariant over the innermost loop — folded once per
  /// segment into q_base.
  std::vector<std::pair<int, core::CoordFold>> hoisted_owner;
  /// Owner pairs on the innermost loop — stepped incrementally.
  std::vector<OwnerStep> inner_owner;
  std::vector<RefPlan> reads, writes;
  int q_base = 0;  ///< per-segment hoisted owner contribution
};

struct NestPlan {
  std::vector<StmtPlan> stmts;
};

}  // namespace

RunResult simulate(const CompiledProgram& cp,
                   const machine::MachineConfig& mcfg,
                   const ExecOptions& opts) {
  DCT_CHECK(mcfg.procs == cp.procs, "machine/compile processor mismatch");
  // The writer-id field of the dataflow state is an int8. A structured
  // code lets the sweep record the cell as skipped instead of failed.
  if (cp.procs > 127)
    throw Error(Error::Code::kUnsupportedConfig,
                "simulate supports at most 127 processors (int8 writer "
                "ids); got " + std::to_string(cp.procs));
  const bool use_fast =
      (opts.fast_exec >= 0 ? opts.fast_exec
                           : env_int("DCT_FAST_EXEC", 1)) != 0;
  machine::MachineConfig mc = mcfg;
  mc.fast_directory = mc.fast_directory && use_fast;
  machine::Machine machine(mc);
  const int P = cp.procs;
  const ir::Program& prog = cp.program;

  // Mixed-radix strides per virtual dimension (same rule as the compiler).
  std::vector<int> stride(static_cast<size_t>(cp.dec.num_proc_dims), 1);
  for (int pd = 0; pd < cp.dec.num_proc_dims; ++pd)
    for (int q = 0; q < pd; ++q)
      if (cp.dec.clique_id[static_cast<size_t>(q)] ==
          cp.dec.clique_id[static_cast<size_t>(pd)])
        stride[static_cast<size_t>(pd)] *= cp.grid[static_cast<size_t>(q)];

  auto owner_of_coords = [&](const std::vector<int>& coords) {
    int proc = 0;
    for (size_t pd = 0; pd < coords.size(); ++pd)
      if (coords[pd] >= 0) proc += coords[pd] * stride[pd];
    return std::min(proc, P - 1);
  };

  // ---- array state + page homing ----
  std::vector<ArrayState> state(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const core::CompiledArray& ca = cp.arrays[a];
    const ir::ArrayDecl& decl = prog.arrays[a];
    state[a].cells.assign(static_cast<size_t>(ca.layout.size()), Cell{});

    const bool distributed =
        !ca.replicated &&
        std::any_of(ca.part.dims.begin(), ca.part.dims.end(),
                    [](const auto& d) { return d.proc_dim >= 0; });
    const Int pages = ca.bytes / mcfg.page_bytes;
    std::vector<std::pair<Int, int>> page_owner(
        static_cast<size_t>(pages), {INT64_MAX, -1});
    for_each_element(decl, [&](std::span<const Int> idx, Int) {
      const Int lin = ca.layout.linearize(idx);
      state[a].cells[static_cast<size_t>(lin)].data =
          init_value(opts.init_seed, static_cast<int>(a),
                     // original linear index for layout-independence
                     [&] {
                       Int l = 0, s = 1;
                       for (size_t k = 0; k < idx.size(); ++k) {
                         l += idx[k] * s;
                         s *= decl.dims[k];
                       }
                       return l;
                     }());
      if (!distributed) return;
      const Int byte = lin * decl.elem_size;
      const Int page = byte / mcfg.page_bytes;
      auto& po = page_owner[static_cast<size_t>(page)];
      if (byte < po.first)
        po = {byte, owner_of_coords(ca.part.owner(idx))};
    });
    if (ca.replicated) {
      for (int c = 0; c < mcfg.clusters(); ++c)
        for (Int pg = 0; pg < pages; ++pg)
          machine.home_page(ca.base_addr + c * ca.bytes +
                                pg * mcfg.page_bytes,
                            c);
    } else if (distributed) {
      for (Int pg = 0; pg < pages; ++pg) {
        const int owner = page_owner[static_cast<size_t>(pg)].second;
        if (owner >= 0)
          machine.home_page(ca.base_addr + pg * mcfg.page_bytes,
                            mcfg.cluster_of(owner));
      }
    }
    // Base mode / serial arrays: left to round-robin first touch.
  }

  // ---- execution ----
  RunResult res;
  res.proc_cycles.assign(static_cast<size_t>(P), 0.0);
  std::vector<double>& clock = res.proc_cycles;
  ExecCounters ctr;

  // Cooperative cancellation: polled once per innermost segment (fast
  // engine) / every 4096 statement batches (interpreter). An inert token
  // reduces the whole mechanism to one always-false branch per segment.
  const bool poll_cancel = opts.cancel.valid();
  long long poll_ctr = 0;

  // Scratch buffers sized from the program, not fixed capacities: the
  // deepest array rank and the widest statement read list actually present.
  size_t max_rank = 1, max_reads = 1;
  for (const ir::ArrayDecl& decl : prog.arrays)
    max_rank = std::max(max_rank, decl.dims.size());
  for (const core::CompiledNest& cn : cp.nests)
    for (const CompiledStmt& cs : cn.stmts)
      max_reads = std::max(max_reads, cs.reads.size());
  std::vector<Int> scratch(max_rank, 0);
  std::vector<double> vals(max_reads, 0.0);

  // Affine subscripts + Layout::linearize — the interpreter address path
  // and the fast engine's fallback for non-walkable references.
  auto element_addr = [&](const CompiledRef& ref, int d,
                          std::span<const Int> iter) {
    for (int r = 0; r < ref.rank; ++r) {
      Int v = ref.offsets[static_cast<size_t>(r)];
      const Int* row =
          ref.coeffs.data() + static_cast<size_t>(r) * static_cast<size_t>(d);
      for (int k = 0; k < d; ++k) v += row[k] * iter[static_cast<size_t>(k)];
      scratch[static_cast<size_t>(r)] = v;
    }
    ++ctr.linearize_fallback;
    return cp.arrays[static_cast<size_t>(ref.array)].layout.linearize(
        std::span<const Int>(scratch.data(), static_cast<size_t>(ref.rank)));
  };

  // ---- interpreter engine (DCT_FAST_EXEC=0): re-evaluate everything ----
  auto run_nest_interp = [&](const core::CompiledNest& cn) {
    const int d = static_cast<int>(cn.nest.loops.size());
    if (d == 0) return;
    std::vector<Int> iter(static_cast<size_t>(d)), lb(static_cast<size_t>(d)),
        ub(static_cast<size_t>(d));

    auto body = [&]() {
      for (const CompiledStmt& cs : cn.stmts) {
        if (cs.depth < d) {
          bool first = true;
          for (int k = cs.depth; k < d && first; ++k)
            first = iter[static_cast<size_t>(k)] == lb[static_cast<size_t>(k)];
          if (!first) continue;
        }
        int q = 0;
        for (const auto& [loop, fold] : cs.owner)
          q += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
        if (q >= P) q = P - 1;

        double t = clock[static_cast<size_t>(q)] + cs.compute_cycles;
        const int cluster = mcfg.cluster_of(q);

        size_t vi = 0;
        for (const CompiledRef& ref : cs.reads) {
          const core::CompiledArray& ca =
              cp.arrays[static_cast<size_t>(ref.array)];
          const Int lin = element_addr(ref, d, iter);
          const Cell& c =
              state[static_cast<size_t>(ref.array)].cells[static_cast<size_t>(lin)];
          // Cross-processor dataflow.
          if (c.wproc >= 0 && c.wproc != q) {
            const double wt = c.wtime;
            if (wt > t) {
              res.wait_cycles += wt - t;
              t = wt + mcfg.lock_cycles;
            }
          }
          Int byte = ca.base_addr +
                     lin * prog.arrays[static_cast<size_t>(ref.array)].elem_size;
          if (ca.replicated) byte += static_cast<Int>(cluster) * ca.bytes;
          t += machine.access(q, byte, false) + ref.addr_overhead;
          vals[vi++] = c.data;
        }
        for (const CompiledRef& ref : cs.writes) {
          const core::CompiledArray& ca =
              cp.arrays[static_cast<size_t>(ref.array)];
          DCT_CHECK(!ca.replicated, "write to replicated array");
          const Int lin = element_addr(ref, d, iter);
          Cell& c =
              state[static_cast<size_t>(ref.array)].cells[static_cast<size_t>(lin)];
          const Int byte =
              ca.base_addr +
              lin * prog.arrays[static_cast<size_t>(ref.array)].elem_size;
          t += machine.access(q, byte, true) + ref.addr_overhead;
          if (cs.eval)
            c.data = cs.eval(std::span<const double>(vals.data(), vi));
          c.wproc = static_cast<std::int8_t>(q);
          c.wtime = t;
        }
        clock[static_cast<size_t>(q)] = t;
        ++res.statements;
      }
    };

    int level = 0;
    iter[0] = lb[0] = cn.nest.loops[0].lower_bound(iter);
    ub[0] = cn.nest.loops[0].upper_bound(iter);
    while (level >= 0) {
      if (iter[static_cast<size_t>(level)] > ub[static_cast<size_t>(level)]) {
        --level;
        if (level >= 0) ++iter[static_cast<size_t>(level)];
        continue;
      }
      if (level == d - 1) {
        if (poll_cancel && ((++poll_ctr & 4095) == 0))
          opts.cancel.check("simulate (interpreter)");
        body();
        ++iter[static_cast<size_t>(level)];
      } else {
        ++level;
        iter[static_cast<size_t>(level)] = lb[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].lower_bound(iter);
        ub[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].upper_bound(iter);
      }
    }
  };

  // ---- fast engine: walkers + hoisted owners, compiled up front ----
  std::vector<int> cluster_of(static_cast<size_t>(P));
  for (int q = 0; q < P; ++q) cluster_of[static_cast<size_t>(q)] = mcfg.cluster_of(q);
  std::vector<NestPlan> plans;
  if (use_fast) {
    plans.resize(cp.nests.size());
    for (size_t j = 0; j < cp.nests.size(); ++j) {
      const core::CompiledNest& cn = cp.nests[j];
      const int d = static_cast<int>(cn.nest.loops.size());
      for (const CompiledStmt& cs : cn.stmts) {
        StmtPlan sp;
        sp.cs = &cs;
        sp.full_depth = cs.depth >= d;
        sp.compute_cycles = cs.compute_cycles;
        sp.has_eval = static_cast<bool>(cs.eval);
        for (const auto& pair : cs.owner) {
          if (sp.full_depth && pair.first == d - 1)
            sp.inner_owner.push_back(OwnerStep(pair.second));
          else
            sp.hoisted_owner.push_back(pair);
        }
        auto plan_ref = [&](const CompiledRef& ref, bool is_write) {
          RefPlan rp;
          rp.ref = &ref;
          rp.ca = &cp.arrays[static_cast<size_t>(ref.array)];
          rp.as = &state[static_cast<size_t>(ref.array)];
          rp.base_addr = rp.ca->base_addr;
          rp.elem_size = prog.arrays[static_cast<size_t>(ref.array)].elem_size;
          rp.copy_bytes = rp.ca->bytes;
          rp.replicated = rp.ca->replicated;
          rp.addr_overhead = ref.addr_overhead;
          if (is_write)
            DCT_CHECK(!rp.replicated, "write to replicated array");
          // Walkers pay off only for references advanced every innermost
          // iteration; gated statements keep the interpreter path.
          if (sp.full_depth)
            rp.walk = rp.walker.build(ref, rp.ca->layout, d);
          return rp;
        };
        for (const CompiledRef& ref : cs.reads)
          sp.reads.push_back(plan_ref(ref, false));
        for (const CompiledRef& ref : cs.writes)
          sp.writes.push_back(plan_ref(ref, true));
        plans[j].stmts.push_back(std::move(sp));
      }
    }
  }

  auto run_nest_fast = [&](const core::CompiledNest& cn, NestPlan& np) {
    const int d = static_cast<int>(cn.nest.loops.size());
    if (d == 0) return;
    const int inner = d - 1;
    std::vector<Int> iter(static_cast<size_t>(d)), lb(static_cast<size_t>(d)),
        ub(static_cast<size_t>(d));

    // One gated (depth < d) statement execution — interpreter addressing.
    auto exec_gated = [&](StmtPlan& sp) {
      const CompiledStmt& cs = *sp.cs;
      int q = 0;
      for (const auto& [loop, fold] : cs.owner)
        q += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
      if (q >= P) q = P - 1;
      double t = clock[static_cast<size_t>(q)] + cs.compute_cycles;
      const int cluster = mcfg.cluster_of(q);
      size_t vi = 0;
      for (RefPlan& rp : sp.reads) {
        const Int lin = element_addr(*rp.ref, d, iter);
        const Cell& c = rp.as->cells[static_cast<size_t>(lin)];
        if (c.wproc >= 0 && c.wproc != q) {
          const double wt = c.wtime;
          if (wt > t) {
            res.wait_cycles += wt - t;
            t = wt + mcfg.lock_cycles;
          }
        }
        Int byte = rp.base_addr + lin * rp.elem_size;
        if (rp.replicated) byte += static_cast<Int>(cluster) * rp.copy_bytes;
        t += machine.access(q, byte, false) + rp.addr_overhead;
        vals[vi++] = c.data;
      }
      for (RefPlan& rp : sp.writes) {
        const Int lin = element_addr(*rp.ref, d, iter);
        Cell& c = rp.as->cells[static_cast<size_t>(lin)];
        const Int byte = rp.base_addr + lin * rp.elem_size;
        t += machine.access(q, byte, true) + rp.addr_overhead;
        if (cs.eval)
          c.data = cs.eval(std::span<const double>(vals.data(), vi));
        c.wproc = static_cast<std::int8_t>(q);
        c.wtime = t;
      }
      clock[static_cast<size_t>(q)] = t;
      ++res.statements;
    };

    // Run one innermost segment: iter[0..inner) fixed, iter[inner] already
    // at its lower bound, ub[inner] valid, segment known non-empty.
    auto run_segment = [&]() {
      const Int ilb = iter[static_cast<size_t>(inner)];
      const Int iub = ub[static_cast<size_t>(inner)];
      const Int len = iub - ilb + 1;
      long long n_full = 0;
      for (StmtPlan& sp : np.stmts) {
        if (!sp.full_depth) continue;
        ++n_full;
        int qb = 0;
        for (const auto& [loop, fold] : sp.hoisted_owner)
          qb += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
        sp.q_base = qb;
        for (OwnerStep& os : sp.inner_owner) os.init(ilb);
        long long walkers = 0;
        for (RefPlan& rp : sp.reads)
          if (rp.walk) {
            rp.walker.init(iter);
            ++walkers;
          }
        for (RefPlan& rp : sp.writes)
          if (rp.walk) {
            rp.walker.init(iter);
            ++walkers;
          }
        // Segment-granular bookkeeping keeps the counters off the hot path.
        ctr.walker_fast += walkers * len;
        if (sp.inner_owner.empty()) ctr.owner_hoisted += len;
      }
      res.statements += n_full * len;
      for (Int i = ilb;; ++i) {
        iter[static_cast<size_t>(inner)] = i;
        for (StmtPlan& sp : np.stmts) {
          if (!sp.full_depth) {
            // Gated statement: runs once per prefix, at the first
            // iteration of every loop below its depth.
            if (i != ilb) continue;
            bool first = true;
            for (int k = sp.cs->depth; k < inner && first; ++k)
              first =
                  iter[static_cast<size_t>(k)] == lb[static_cast<size_t>(k)];
            if (!first) continue;
            exec_gated(sp);
            continue;
          }
          int q = sp.q_base;
          for (OwnerStep& os : sp.inner_owner) {
            q += os.value();
            os.step();  // advance for the next iteration (harmless past end)
          }
          if (q >= P) q = P - 1;
          double t = clock[static_cast<size_t>(q)] + sp.compute_cycles;
          const int cluster = cluster_of[static_cast<size_t>(q)];
          size_t vi = 0;
          for (RefPlan& rp : sp.reads) {
            Int lin;
            if (rp.walk) {
              lin = rp.walker.addr();
              rp.walker.step();
            } else {
              lin = element_addr(*rp.ref, d, iter);
            }
            const Cell& c = rp.as->cells[static_cast<size_t>(lin)];
            if (c.wproc >= 0 && c.wproc != q) {
              const double wt = c.wtime;
              if (wt > t) {
                res.wait_cycles += wt - t;
                t = wt + mcfg.lock_cycles;
              }
            }
            Int byte = rp.base_addr + lin * rp.elem_size;
            if (rp.replicated)
              byte += static_cast<Int>(cluster) * rp.copy_bytes;
            t += machine.access(q, byte, false) + rp.addr_overhead;
            vals[vi++] = c.data;
          }
          for (RefPlan& rp : sp.writes) {
            Int lin;
            if (rp.walk) {
              lin = rp.walker.addr();
              rp.walker.step();
            } else {
              lin = element_addr(*rp.ref, d, iter);
            }
            Cell& c = rp.as->cells[static_cast<size_t>(lin)];
            const Int byte = rp.base_addr + lin * rp.elem_size;
            t += machine.access(q, byte, true) + rp.addr_overhead;
            if (sp.has_eval)
              c.data = sp.cs->eval(std::span<const double>(vals.data(), vi));
            c.wproc = static_cast<std::int8_t>(q);
            c.wtime = t;
          }
          clock[static_cast<size_t>(q)] = t;
        }
        if (i == iub) break;
      }
      iter[static_cast<size_t>(inner)] = iub + 1;  // segment exhausted
    };

    // Specialized segment for the common single-statement nest: no gated
    // statements to interleave with, so the owner's clock rides in a
    // register and is flushed only when the owner changes (at distribution
    // block boundaries) instead of loaded and stored every iteration.
    auto run_segment_single = [&]() {
      StmtPlan& sp = np.stmts[0];
      const Int ilb = iter[static_cast<size_t>(inner)];
      const Int iub = ub[static_cast<size_t>(inner)];
      const Int len = iub - ilb + 1;
      int qb = 0;
      for (const auto& [loop, fold] : sp.hoisted_owner)
        qb += fold.fold(iter[static_cast<size_t>(loop)]) * fold.stride;
      sp.q_base = qb;
      for (OwnerStep& os : sp.inner_owner) os.init(ilb);
      long long walkers = 0;
      for (RefPlan& rp : sp.reads)
        if (rp.walk) {
          rp.walker.init(iter);
          ++walkers;
        }
      for (RefPlan& rp : sp.writes)
        if (rp.walk) {
          rp.walker.init(iter);
          ++walkers;
        }
      ctr.walker_fast += walkers * len;
      if (sp.inner_owner.empty()) ctr.owner_hoisted += len;
      res.statements += len;
      int q_cur = sp.q_base;
      for (const OwnerStep& os : sp.inner_owner) q_cur += os.value();
      if (q_cur >= P) q_cur = P - 1;
      double t = clock[static_cast<size_t>(q_cur)];
      int cluster = cluster_of[static_cast<size_t>(q_cur)];
      for (Int i = ilb;; ++i) {
        iter[static_cast<size_t>(inner)] = i;
        int q = sp.q_base;
        for (OwnerStep& os : sp.inner_owner) {
          q += os.value();
          os.step();  // advance for the next iteration (harmless past end)
        }
        if (q >= P) q = P - 1;
        if (q != q_cur) {
          clock[static_cast<size_t>(q_cur)] = t;
          q_cur = q;
          t = clock[static_cast<size_t>(q)];
          cluster = cluster_of[static_cast<size_t>(q)];
        }
        t += sp.compute_cycles;
        size_t vi = 0;
        for (RefPlan& rp : sp.reads) {
          Int lin;
          if (rp.walk) {
            lin = rp.walker.addr();
            rp.walker.step();
          } else {
            lin = element_addr(*rp.ref, d, iter);
          }
          const Cell& c = rp.as->cells[static_cast<size_t>(lin)];
          if (c.wproc >= 0 && c.wproc != q) {
            const double wt = c.wtime;
            if (wt > t) {
              res.wait_cycles += wt - t;
              t = wt + mcfg.lock_cycles;
            }
          }
          Int byte = rp.base_addr + lin * rp.elem_size;
          if (rp.replicated)
            byte += static_cast<Int>(cluster) * rp.copy_bytes;
          t += machine.access(q, byte, false) + rp.addr_overhead;
          vals[vi++] = c.data;
        }
        for (RefPlan& rp : sp.writes) {
          Int lin;
          if (rp.walk) {
            lin = rp.walker.addr();
            rp.walker.step();
          } else {
            lin = element_addr(*rp.ref, d, iter);
          }
          Cell& c = rp.as->cells[static_cast<size_t>(lin)];
          const Int byte = rp.base_addr + lin * rp.elem_size;
          t += machine.access(q, byte, true) + rp.addr_overhead;
          if (sp.has_eval)
            c.data = sp.cs->eval(std::span<const double>(vals.data(), vi));
          c.wproc = static_cast<std::int8_t>(q);
          c.wtime = t;
        }
        if (i == iub) break;
      }
      clock[static_cast<size_t>(q_cur)] = t;
      iter[static_cast<size_t>(inner)] = iub + 1;  // segment exhausted
    };
    const bool single_stmt =
        np.stmts.size() == 1 && np.stmts[0].full_depth;

    int level = 0;
    iter[0] = lb[0] = cn.nest.loops[0].lower_bound(iter);
    ub[0] = cn.nest.loops[0].upper_bound(iter);
    while (level >= 0) {
      if (iter[static_cast<size_t>(level)] > ub[static_cast<size_t>(level)]) {
        --level;
        if (level >= 0) ++iter[static_cast<size_t>(level)];
        continue;
      }
      if (level == inner) {
        if (poll_cancel) opts.cancel.check("simulate (fast engine)");
        if (single_stmt)
          run_segment_single();
        else
          run_segment();
      } else {
        ++level;
        iter[static_cast<size_t>(level)] = lb[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].lower_bound(iter);
        ub[static_cast<size_t>(level)] =
            cn.nest.loops[static_cast<size_t>(level)].upper_bound(iter);
      }
    }
  };

  for (int step = 0; step < prog.time_steps; ++step) {
    for (size_t j = 0; j < cp.nests.size(); ++j) {
      if (poll_cancel) opts.cancel.check("simulate");
      if (use_fast)
        run_nest_fast(cp.nests[j], plans[j]);
      else
        run_nest_interp(cp.nests[j]);
      const bool last =
          step == prog.time_steps - 1 && j == cp.nests.size() - 1;
      if (P > 1 && (cp.nests[j].barrier_after || last)) {
        const double m = *std::max_element(clock.begin(), clock.end());
        const double bc = machine.barrier_cost(P);
        for (double& c : clock) c = m + bc;
        res.barrier_cycles += bc;
      }
    }
  }

  res.cycles = *std::max_element(clock.begin(), clock.end());
  res.mem = machine.total_stats();
  ctr.dir_fast = res.mem.dir_fast_hits;
  res.counters = ctr;

  {
    support::RemarkEngine eng;
    eng.begin_pass("simulate");
    eng.count("sim_walker_fast_hits", static_cast<long>(ctr.walker_fast));
    eng.count("sim_linearize_fallbacks",
              static_cast<long>(ctr.linearize_fallback));
    eng.count("sim_dir_fast_hits", static_cast<long>(ctr.dir_fast));
    eng.count("sim_owner_hoisted", static_cast<long>(ctr.owner_hoisted));
    eng.count("sim_statements", static_cast<long>(res.statements));
    eng.end_pass();
    res.trace = eng.take_trace();
    if (support::trace_enabled())
      support::emit_trace(res.trace.json(
          {{"unit", prog.name},
           {"kind", "simulate"},
           {"mode", core::to_string(cp.mode)},
           {"procs", strf("%d", cp.procs)},
           {"engine", use_fast ? "fast" : "interp"}}));
  }

  if (opts.collect_values) {
    res.values.resize(prog.arrays.size());
    for (size_t a = 0; a < prog.arrays.size(); ++a) {
      const ir::ArrayDecl& decl = prog.arrays[a];
      res.values[a].resize(static_cast<size_t>(decl.elem_count()));
      for_each_element(decl, [&](std::span<const Int> idx, Int linear) {
        res.values[a][static_cast<size_t>(linear)] =
            state[a].cells[static_cast<size_t>(
                cp.arrays[a].layout.linearize(idx))].data;
      });
    }
  }
  return res;
}

std::vector<std::vector<double>> run_reference(const ir::Program& prog,
                                               std::uint64_t init_seed) {
  std::vector<std::vector<double>> data(prog.arrays.size());
  for (size_t a = 0; a < prog.arrays.size(); ++a) {
    const ir::ArrayDecl& decl = prog.arrays[a];
    data[a].resize(static_cast<size_t>(decl.elem_count()));
    for (Int l = 0; l < decl.elem_count(); ++l)
      data[a][static_cast<size_t>(l)] =
          init_value(init_seed, static_cast<int>(a), l);
  }
  auto linear_of = [&](const ir::ArrayDecl& decl, std::span<const Int> idx) {
    Int l = 0, s = 1;
    for (size_t k = 0; k < idx.size(); ++k) {
      l += idx[k] * s;
      s *= decl.dims[k];
    }
    return l;
  };

  size_t max_reads = 1;
  for (const ir::LoopNest& nest : prog.nests)
    for (const ir::Stmt& s : nest.stmts)
      max_reads = std::max(max_reads, s.reads.size());
  std::vector<double> vals(max_reads);

  for (int step = 0; step < prog.time_steps; ++step) {
    for (const ir::LoopNest& nest : prog.nests) {
      const int d = nest.depth();
      if (d == 0) continue;
      // Explicit walk tracking the lower bound per level as it is entered:
      // bounds above the innermost are loop-invariant per prefix, so they
      // are computed once per level entry, not once per iteration (the
      // same scheme as the simulator's nest walker).
      std::vector<Int> iter(static_cast<size_t>(d)), lb(static_cast<size_t>(d)),
          ub(static_cast<size_t>(d));
      auto body = [&]() {
        for (const ir::Stmt& s : nest.stmts) {
          const int sd = s.effective_depth(d);
          bool first = true;
          for (int k = sd; k < d && first; ++k)
            first = iter[static_cast<size_t>(k)] == lb[static_cast<size_t>(k)];
          if (!first) continue;
          size_t vi = 0;
          for (const ir::ArrayRef& r : s.reads) {
            const auto idx = r.index(iter);
            vals[vi++] = data[static_cast<size_t>(r.array)][static_cast<size_t>(
                linear_of(prog.arrays[static_cast<size_t>(r.array)], idx))];
          }
          if (s.write && s.eval) {
            const auto idx = s.write->index(iter);
            data[static_cast<size_t>(s.write->array)][static_cast<size_t>(
                linear_of(prog.arrays[static_cast<size_t>(s.write->array)],
                          idx))] =
                s.eval(std::span<const double>(vals.data(), vi));
          }
        }
      };
      int level = 0;
      iter[0] = lb[0] = nest.loops[0].lower_bound(iter);
      ub[0] = nest.loops[0].upper_bound(iter);
      while (level >= 0) {
        if (iter[static_cast<size_t>(level)] >
            ub[static_cast<size_t>(level)]) {
          --level;
          if (level >= 0) ++iter[static_cast<size_t>(level)];
          continue;
        }
        if (level == d - 1) {
          body();
          ++iter[static_cast<size_t>(level)];
        } else {
          ++level;
          iter[static_cast<size_t>(level)] = lb[static_cast<size_t>(level)] =
              nest.loops[static_cast<size_t>(level)].lower_bound(iter);
          ub[static_cast<size_t>(level)] =
              nest.loops[static_cast<size_t>(level)].upper_bound(iter);
        }
      }
    }
  }
  return data;
}

}  // namespace dct::runtime
