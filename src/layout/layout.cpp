#include "layout/layout.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::layout {

using linalg::checked_mul;
using linalg::floor_div;
using linalg::floor_mod;

namespace {
Int ceil_div(Int a, Int b) { return -floor_div(-a, b); }
}  // namespace

Layout Layout::identity(std::vector<Int> dims) {
  Layout l;
  l.dims_ = std::move(dims);
  l.fns_.resize(l.dims_.size());
  for (size_t k = 0; k < l.dims_.size(); ++k)
    l.fns_[k] = DimFn{static_cast<int>(k), 1, 0, true};
  return l;
}

void Layout::apply(const StripMine& sm) {
  DCT_CHECK(sm.dim >= 0 && sm.dim < static_cast<int>(dims_.size()),
            "strip-mine dimension out of range");
  DCT_CHECK(sm.size >= 1, "strip size must be positive");
  const Int d = dims_[static_cast<size_t>(sm.dim)];
  steps_.push_back(sm);
  // (i mod b) at position dim, (i div b) at position dim+1.
  dims_[static_cast<size_t>(sm.dim)] = sm.size;
  dims_.insert(dims_.begin() + sm.dim + 1, ceil_div(d, sm.size));
  // Fast-path bookkeeping: splitting (x/div) mod m by b gives
  //   low  = (x/div) mod b        (requires b to divide m, or m == 0)
  //   high = (x/(div*b)) mod (m/b)
  const DimFn f = fns_[static_cast<size_t>(sm.dim)];
  DimFn low = f, high = f;
  bool ok = f.simple;
  if (ok) {
    if (f.mod == 0) {
      low.mod = sm.size;
      high.div = checked_mul(f.div, sm.size);
      high.mod = 0;
    } else if (f.mod % sm.size == 0) {
      low.mod = sm.size;
      high.div = checked_mul(f.div, sm.size);
      high.mod = f.mod / sm.size;
    } else {
      ok = false;
    }
  }
  if (!ok) {
    low.simple = high.simple = false;
    fast_ = false;
  }
  fns_[static_cast<size_t>(sm.dim)] = low;
  fns_.insert(fns_.begin() + sm.dim + 1, high);
}

void Layout::apply(const Permute& p) {
  DCT_CHECK(p.perm.size() == dims_.size(), "permutation rank mismatch");
  std::vector<bool> seen(dims_.size(), false);
  std::vector<Int> nd(dims_.size());
  std::vector<DimFn> nf(dims_.size());
  for (size_t k = 0; k < p.perm.size(); ++k) {
    const int src = p.perm[k];
    DCT_CHECK(src >= 0 && src < static_cast<int>(dims_.size()) &&
                  !seen[static_cast<size_t>(src)],
              "not a permutation");
    seen[static_cast<size_t>(src)] = true;
    nd[k] = dims_[static_cast<size_t>(src)];
    nf[k] = fns_[static_cast<size_t>(src)];
  }
  steps_.push_back(p);
  dims_ = std::move(nd);
  fns_ = std::move(nf);
}

std::vector<Int> Layout::strides() const {
  std::vector<Int> out(dims_.size());
  Int stride = 1;
  for (size_t k = 0; k < dims_.size(); ++k) {
    out[k] = stride;
    stride = checked_mul(stride, dims_[k]);
  }
  return out;
}

Int Layout::size() const {
  Int n = 1;
  for (Int d : dims_) n = checked_mul(n, d);
  return n;
}

std::vector<Int> Layout::map_index(std::span<const Int> index) const {
  if (fast_) {
    std::vector<Int> out(dims_.size());
    for (size_t k = 0; k < fns_.size(); ++k) {
      const DimFn& f = fns_[k];
      Int v = floor_div(index[static_cast<size_t>(f.src)], f.div);
      if (f.mod != 0) v = floor_mod(v, f.mod);
      out[k] = v;
    }
    return out;
  }
  // Interpret the transform steps.
  std::vector<Int> cur(index.begin(), index.end());
  for (const Transform& t : steps_) {
    if (const auto* sm = std::get_if<StripMine>(&t)) {
      const Int v = cur[static_cast<size_t>(sm->dim)];
      cur[static_cast<size_t>(sm->dim)] = floor_mod(v, sm->size);
      cur.insert(cur.begin() + sm->dim + 1, floor_div(v, sm->size));
    } else {
      const auto& perm = std::get<Permute>(t).perm;
      std::vector<Int> next(perm.size());
      for (size_t k = 0; k < perm.size(); ++k)
        next[k] = cur[static_cast<size_t>(perm[k])];
      cur = std::move(next);
    }
  }
  return cur;
}

Int Layout::linearize(std::span<const Int> index) const {
  // Column-major: dim 0 varies fastest.
  if (fast_) {
    Int addr = 0;
    Int stride = 1;
    for (size_t k = 0; k < fns_.size(); ++k) {
      const DimFn& f = fns_[k];
      Int v = index[static_cast<size_t>(f.src)] / f.div;  // indices >= 0
      if (f.mod != 0) v %= f.mod;
      // Same bounds contract as the slow path below: an out-of-range
      // index must fail, not silently wrap into another element (the
      // truncating div above may also leave v negative for negative
      // indices, which this catches).
      DCT_CHECK(v >= 0 && v < dims_[k], "mapped index out of bounds");
      addr += v * stride;
      stride *= dims_[k];
    }
    return addr;
  }
  const std::vector<Int> mapped = map_index(index);
  Int addr = 0;
  Int stride = 1;
  for (size_t k = 0; k < mapped.size(); ++k) {
    DCT_CHECK(mapped[k] >= 0 && mapped[k] < dims_[k],
              "mapped index out of bounds");
    addr += mapped[k] * stride;
    stride *= dims_[k];
  }
  return addr;
}

std::string Layout::to_string() const {
  std::ostringstream os;
  os << "dims(";
  for (size_t k = 0; k < dims_.size(); ++k) os << (k ? "," : "") << dims_[k];
  os << ")";
  for (const Transform& t : steps_) {
    if (const auto* sm = std::get_if<StripMine>(&t))
      os << " strip(dim=" << sm->dim << ", b=" << sm->size << ")";
    else {
      os << " permute(";
      const auto& perm = std::get<Permute>(t).perm;
      for (size_t k = 0; k < perm.size(); ++k) os << (k ? "," : "") << perm[k];
      os << ")";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Layout algorithm (Section 4.2)
// ---------------------------------------------------------------------------

Layout derive_layout(const ir::ArrayDecl& decl,
                     const decomp::ArrayDecomposition& ad,
                     std::span<const int> grid_extents,
                     support::RemarkSink* rs) {
  Layout l = Layout::identity(decl.dims);
  if (!decl.transformable || ad.replicated || ad.distributed_count() == 0) {
    if (rs != nullptr && !decl.transformable && ad.distributed_count() > 0) {
      rs->note("distributed but not transformable (aliased/reshaped): kept");
      rs->count("arrays_untransformable");
    }
    return l;
  }

  // Process distributed dimensions from highest to lowest so earlier
  // insertions do not disturb pending positions; collect the
  // processor-identifying dimensions to hoist rightmost afterwards.
  struct Pending {
    int pos;  ///< position of the processor dimension in current space
  };
  std::vector<int> proc_dims_positions;
  // Work on a copy of positions: after strip-mining dim k, dims above k
  // shift by one (or two for BLOCK-CYCLIC).
  const int rank = static_cast<int>(decl.dims.size());
  std::vector<int> pos(static_cast<size_t>(rank));
  std::iota(pos.begin(), pos.end(), 0);

  for (int k = rank - 1; k >= 0; --k) {
    const decomp::DimDistribution& dd = ad.dims[static_cast<size_t>(k)];
    if (dd.kind == decomp::DistKind::Serial) continue;
    const int p = grid_extents[static_cast<size_t>(dd.proc_dim)];
    if (p <= 1) continue;
    const Int d = decl.dims[static_cast<size_t>(k)];
    const int cur = pos[static_cast<size_t>(k)];

    // Local optimization (4.2): the highest dimension distributed BLOCK is
    // already rightmost — no strip-mining or permutation needed.
    if (dd.kind == decomp::DistKind::Block &&
        cur == static_cast<int>(l.dims().size()) - 1) {
      if (rs != nullptr) {
        rs->note(strf("dim %d BLOCK already rightmost: transform skipped", k));
        rs->count("local_optimization_skips");
      }
      continue;
    }

    int proc_pos = -1;
    switch (dd.kind) {
      case decomp::DistKind::Block:
        l.apply(StripMine{cur, ceil_div(d, p)});
        proc_pos = cur + 1;  // second of the strip-mined dims
        break;
      case decomp::DistKind::Cyclic:
        l.apply(StripMine{cur, p});
        proc_pos = cur;  // first of the strip-mined dims
        break;
      case decomp::DistKind::BlockCyclic:
        l.apply(StripMine{cur, dd.block});
        l.apply(StripMine{cur + 1, p});
        proc_pos = cur + 1;  // middle of the strip-mined dims
        break;
      case decomp::DistKind::Serial:
        break;
    }
    // Account for dimension insertions in the bookkeeping.
    const int inserted =
        dd.kind == decomp::DistKind::BlockCyclic ? 2 : 1;
    for (int k2 = 0; k2 < rank; ++k2)
      if (pos[static_cast<size_t>(k2)] > cur)
        pos[static_cast<size_t>(k2)] += inserted;
    for (int& pp : proc_dims_positions)
      if (pp > cur) pp += inserted;
    proc_dims_positions.push_back(proc_pos);
  }

  // Move the processor-identifying dimensions to the rightmost positions,
  // preserving the original relative order of everything else.
  if (!proc_dims_positions.empty()) {
    const int nrank = static_cast<int>(l.dims().size());
    std::vector<int> perm;
    for (int k2 = 0; k2 < nrank; ++k2)
      if (std::find(proc_dims_positions.begin(), proc_dims_positions.end(),
                    k2) == proc_dims_positions.end())
        perm.push_back(k2);
    // Processor dims in ascending original position.
    std::vector<int> procs_sorted = proc_dims_positions;
    std::sort(procs_sorted.begin(), procs_sorted.end());
    for (int pp : procs_sorted) perm.push_back(pp);
    // Skip a no-op permutation.
    bool ident = true;
    for (size_t k2 = 0; k2 < perm.size(); ++k2)
      ident &= perm[k2] == static_cast<int>(k2);
    if (!ident) l.apply(Permute{perm});
  }
  if (rs != nullptr) {
    long strips = 0, permutes = 0;
    for (const Transform& t : l.steps())
      std::holds_alternative<StripMine>(t) ? ++strips : ++permutes;
    if (strips != 0) rs->count("strip_mines", strips);
    if (permutes != 0) rs->count("permutes", permutes);
  }
  return l;
}

// ---------------------------------------------------------------------------
// Partition (ownership folding)
// ---------------------------------------------------------------------------

int Partition::fold(int k, Int idx) const {
  // Euclidean (floored) semantics, mirroring core::CoordFold::fold: C++
  // truncating / and % would hand negative indices a negative "owner"
  // (which aliases the -1 "unbound" marker) and mis-wrap CYCLIC blocks.
  const Dim& d = dims[static_cast<size_t>(k)];
  const Int block = std::max<Int>(1, d.block);
  switch (d.kind) {
    case decomp::DistKind::Serial:
      return -1;
    case decomp::DistKind::Block: {
      const Int c = floor_div(idx, block);
      return static_cast<int>(std::clamp<Int>(c, 0, d.procs - 1));
    }
    case decomp::DistKind::Cyclic:
      return static_cast<int>(floor_mod(idx, d.procs));
    case decomp::DistKind::BlockCyclic:
      return static_cast<int>(floor_mod(floor_div(idx, block), d.procs));
  }
  return -1;
}

std::vector<int> Partition::owner(std::span<const Int> index) const {
  std::vector<int> out(static_cast<size_t>(num_proc_dims), -1);
  for (size_t k = 0; k < dims.size() && k < index.size(); ++k) {
    if (dims[k].proc_dim < 0) continue;
    out[static_cast<size_t>(dims[k].proc_dim)] =
        fold(static_cast<int>(k), index[k]);
  }
  return out;
}

Partition make_partition(const ir::ArrayDecl& decl,
                         const decomp::ArrayDecomposition& ad,
                         std::span<const int> grid_extents,
                         int num_proc_dims) {
  Partition part;
  part.num_proc_dims = num_proc_dims;
  part.dims.resize(decl.dims.size());
  for (size_t k = 0; k < decl.dims.size(); ++k) {
    Partition::Dim& d = part.dims[k];
    const decomp::DimDistribution& dd = ad.dims[k];
    d.kind = ad.replicated ? decomp::DistKind::Serial : dd.kind;
    d.extent = decl.dims[k];
    if (d.kind == decomp::DistKind::Serial) continue;
    d.proc_dim = dd.proc_dim;
    d.procs = grid_extents[static_cast<size_t>(dd.proc_dim)];
    switch (d.kind) {
      case decomp::DistKind::Block:
        d.block = ceil_div(d.extent, d.procs);
        break;
      case decomp::DistKind::BlockCyclic:
        d.block = dd.block;
        break;
      default:
        d.block = 1;
        break;
    }
  }
  return part;
}

// ---------------------------------------------------------------------------
// Address-calculation cost model (Section 4.3)
// ---------------------------------------------------------------------------

namespace {
// MIPS R3000-flavoured integer-operation costs (cycles).
constexpr double kDivModCost = 35.0;  ///< one div or mod
constexpr double kCheapOps = 2.0;     ///< increment + compare
}  // namespace

double address_overhead(const ir::LoopNest& nest, const ir::ArrayRef& ref,
                        const Layout& layout, AddrStrategy strategy) {
  if (layout.is_identity()) return 0.0;
  const int depth = nest.depth();

  // Trip count estimate per loop.
  const dep::Hull hull = dep::iteration_hull(nest);
  auto trips_below = [&](int level) {
    double t = 1;
    for (int k = level + 1; k < depth; ++k)
      t *= std::max<double>(
          1.0, static_cast<double>(hull.hi[static_cast<size_t>(k)] -
                                   hull.lo[static_cast<size_t>(k)] + 1));
    return t;
  };

  double overhead = 0;
  for (const auto& f : layout.dim_functions()) {
    const bool needs_div = f.div != 1 || f.mod != 0;
    if (!needs_div) continue;
    // Deepest loop varying the source subscript of this transformed dim.
    int deepest = -1;
    if (f.src < ref.access.rows()) {
      for (int c = 0; c < ref.access.cols(); ++c)
        if (ref.access.at(f.src, c) != 0) deepest = c;
    }
    switch (strategy) {
      case AddrStrategy::Naive:
        // mod and/or div on every access.
        overhead += kDivModCost * ((f.div != 1) + (f.mod != 0));
        break;
      case AddrStrategy::Hoisted: {
        // Recomputed when the deepest varying loop iterates; amortized
        // over everything below it.
        const double amort = deepest < 0 ? 1e9 : trips_below(deepest);
        overhead += kDivModCost * ((f.div != 1) + (f.mod != 0)) / amort;
        break;
      }
      case AddrStrategy::Optimized: {
        // Strength reduction (4.3): the mod counter is incremented and
        // compared each step; crossing a strip boundary resets it and
        // bumps the div counter — all cheap operations, no divisions
        // remain on the hot path.
        const double amort = deepest < 0 ? 1e9 : trips_below(deepest);
        const double crossings =
            1.0 / static_cast<double>(std::max<Int>(1, f.div) *
                                      std::max<Int>(1, f.mod));
        overhead += (kCheapOps + kCheapOps * crossings) / amort;
        break;
      }
    }
  }
  return overhead;
}

}  // namespace dct::layout
