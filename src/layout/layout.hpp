// Data transformation framework (paper Section 4).
//
// An n-dimensional array is an n-dimensional polytope of index points with
// a significant axis order (column-major linearization, 0-based). Two
// primitive transforms restructure it:
//
//  * strip-mining (4.1.1): dimension of extent d with strip size b becomes
//    two dimensions (i mod b, i div b) of extents b and ceil(d/b);
//  * permutation (4.1.2): reorder the dimensions (and bounds) by a
//    permutation matrix.
//
// A Layout is a composition of these primitives; it maps an original index
// vector to a linear address in the restructured array. The layout
// algorithm (4.2) derives, per distributed dimension, the strip-mine +
// permute sequence that makes each processor's data contiguous in the
// shared address space:
//
//   BLOCK:        strip by ceil(d/P); processor id = second new dim
//   CYCLIC:       strip by P;         processor id = first new dim
//   BLOCK-CYCLIC: strip by b then by P; processor id = middle new dim
//
// then moves the processor-identifying dimension to the rightmost
// (slowest-varying) position, skipping the transform entirely when the
// highest dimension is BLOCK-distributed (it is already rightmost).
#pragma once

#include <span>
#include <string>
#include <variant>
#include <vector>

#include "decomp/decomposition.hpp"
#include "ir/program.hpp"

namespace dct::layout {

using linalg::Int;

/// Strip-mine primitive: splits `dim` (extent d) into (i mod size) at
/// position `dim` and (i div size) at position `dim`+1.
struct StripMine {
  int dim;
  Int size;
};

/// Permutation primitive: new dimension k is old dimension perm[k].
struct Permute {
  std::vector<int> perm;
};

using Transform = std::variant<StripMine, Permute>;

/// A composed data transformation of one array.
class Layout {
 public:
  /// Identity layout of an array with the given extents.
  static Layout identity(std::vector<Int> dims);

  void apply(const StripMine& sm);
  void apply(const Permute& p);

  /// Extents of the restructured array.
  const std::vector<Int>& dims() const { return dims_; }
  /// Total element count of the restructured array (>= the original
  /// count: ceil padding from strip-mining).
  Int size() const;
  /// True when no transform has been applied.
  bool is_identity() const { return steps_.empty(); }
  const std::vector<Transform>& steps() const { return steps_; }

  /// Restructured index vector of an original element.
  std::vector<Int> map_index(std::span<const Int> index) const;
  /// Column-major linear address of an original element in the
  /// restructured array.
  Int linearize(std::span<const Int> index) const;

  std::string to_string() const;

  /// Closed form of one restructured dimension: value = (orig[src] / div)
  /// mod `mod` (mod == 0 means no modulus). Valid when `simple`; layouts
  /// produced by the Section 4.2 algorithm are always simple, which is
  /// what makes the Section 4.3 address optimizations applicable.
  struct DimFn {
    int src;
    Int div = 1;
    Int mod = 0;
    bool simple = true;
  };
  const std::vector<DimFn>& dim_functions() const { return fns_; }

  /// True when every restructured dimension has a simple closed form —
  /// the precondition for the Section 4.3 strength-reduced (incremental)
  /// address walkers in the runtime.
  bool all_simple() const { return fast_; }

  /// Column-major element strides of the restructured dimensions:
  /// strides()[k] multiplies dim_functions()[k]'s value in linearize().
  std::vector<Int> strides() const;

 private:
  std::vector<Int> dims_;
  std::vector<Transform> steps_;
  std::vector<DimFn> fns_;
  bool fast_ = true;
};

/// The layout algorithm of Section 4.2: derive the restructured layout of
/// one array from its data decomposition and the processor grid extents.
/// Arrays that are not transformable (Section 4.1.3), replicated or
/// undistributed keep the identity layout. When `rs` is given, each
/// primitive applied (and each skip decision) is reported as a remark.
Layout derive_layout(const ir::ArrayDecl& decl,
                     const decomp::ArrayDecomposition& ad,
                     std::span<const int> grid_extents,
                     support::RemarkSink* rs = nullptr);

/// Owner coordinates of an array element under a decomposition: for each
/// virtual processor dimension, the folded coordinate, or -1 when the
/// array does not bind it.
struct Partition {
  struct Dim {
    decomp::DistKind kind = decomp::DistKind::Serial;
    int proc_dim = -1;
    Int extent = 0;  ///< array extent along this dim
    int procs = 1;   ///< grid extent of the processor dimension
    Int block = 0;   ///< BLOCK: ceil(extent/procs); BLOCK-CYCLIC: given
  };
  std::vector<Dim> dims;
  int num_proc_dims = 0;

  /// Fold one coordinate of dimension `k`.
  int fold(int k, Int idx) const;
  /// Owner coordinates (-1 where unbound) of a full index vector.
  std::vector<int> owner(std::span<const Int> index) const;
};

Partition make_partition(const ir::ArrayDecl& decl,
                         const decomp::ArrayDecomposition& ad,
                         std::span<const int> grid_extents, int num_proc_dims);

// ---------------------------------------------------------------------------
// Address-calculation cost model (Section 4.3)
// ---------------------------------------------------------------------------

/// How the generated SPMD code computes transformed-array subscripts.
enum class AddrStrategy {
  Naive,     ///< mod and div on every access
  Hoisted,   ///< loop-invariant mod/div moved out of inner loops
  Optimized  ///< strip-range recognition, peeling, strength reduction
};

/// Per-access integer-operation overhead (cycles) of computing the
/// restructured address of `ref` inside `nest` under `strategy`. Derived
/// analytically from which loop varies each transformed dimension and how
/// often the strip boundaries are crossed; the same quantities the paper's
/// optimizations (4.3) act on.
double address_overhead(const ir::LoopNest& nest, const ir::ArrayRef& ref,
                        const Layout& layout, AddrStrategy strategy);

}  // namespace dct::layout
