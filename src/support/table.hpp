// ASCII table and speedup-curve rendering for the benchmark harnesses.
// Benches print the same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace dct {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with a header rule and right-aligned numeric-looking cells.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One line series of a speedup figure: label + y value per x position.
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Render a paper-style speedup figure as an ASCII chart: x axis is
/// `xs` (processor counts), y axis is speedup, one glyph per series, plus
/// the ideal linear-speedup diagonal for reference.
std::string render_speedup_chart(const std::string& title,
                                 const std::vector<int>& xs,
                                 const std::vector<Series>& series,
                                 int height = 18);

}  // namespace dct
