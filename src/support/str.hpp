// Small string-building helpers (gcc 12 has no <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace dct {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

/// Join the elements of `items` with `sep`, using operator<< to print each.
template <typename Range>
std::string join(const Range& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

}  // namespace dct
