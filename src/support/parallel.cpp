#include "support/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "support/env.hpp"

namespace dct::support {

int default_threads() {
  const long env = env_int("DCT_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads <= 0) threads = default_threads();
  const int workers = std::min(threads, n);

  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
  auto work = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<size_t>(i)] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();

  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace dct::support
