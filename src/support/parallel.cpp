#include "support/parallel.hpp"

#include <atomic>
#include <thread>

#include "support/env.hpp"

namespace dct::support {

int default_threads() {
  const long env = env_int("DCT_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ParallelOutcome::all_ok() const {
  for (const std::exception_ptr& e : errors)
    if (e) return false;
  for (char s : started)
    if (!s) return false;
  return true;
}

std::exception_ptr ParallelOutcome::first_error() const {
  for (const std::exception_ptr& e : errors)
    if (e) return e;
  return nullptr;
}

ParallelOutcome parallel_for_collect(int n, int threads,
                                     const std::function<void(int)>& fn,
                                     const CancelToken& cancel) {
  ParallelOutcome out;
  if (n <= 0) return out;
  out.errors.assign(static_cast<size_t>(n), nullptr);
  out.started.assign(static_cast<size_t>(n), 1);
  if (threads <= 0) threads = default_threads();
  const int workers = std::min(threads, n);
  const bool watch = cancel.valid();

  auto run_one = [&](int i) {
    try {
      fn(i);
    } catch (...) {
      out.errors[static_cast<size_t>(i)] = std::current_exception();
    }
  };

  if (workers <= 1) {
    for (int i = 0; i < n; ++i) {
      if (watch && cancel.expired()) {
        for (int j = i; j < n; ++j) out.started[static_cast<size_t>(j)] = 0;
        break;
      }
      run_one(i);
    }
    return out;
  }

  std::atomic<int> next{0};
  auto work = [&] {
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (watch && cancel.expired()) {
        out.started[static_cast<size_t>(i)] = 0;
        continue;  // drain the counter so every index gets a verdict
      }
      run_one(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
  return out;
}

void parallel_for(int n, int threads, const std::function<void(int)>& fn) {
  const ParallelOutcome out = parallel_for_collect(n, threads, fn);
  if (const std::exception_ptr e = out.first_error())
    std::rethrow_exception(e);
}

}  // namespace dct::support
