// Diagnostics: checked assertions and error reporting for the dct library.
//
// DCT_CHECK is used to validate internal invariants and user-supplied
// arguments alike; it throws dct::Error (never aborts) so library users can
// recover and tests can assert on failures.
//
// Errors carry a machine-readable code plus an optional context chain:
// each layer a failure propagates through (a compiler pass, a sweep cell,
// a fuzzer stage) appends one frame via with_context(), so the experiment
// harness can attribute a failure to the stage that raised it without
// parsing the message.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace dct {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  /// Failure taxonomy used by the sweep's structured CellFailure records.
  enum class Code {
    kGeneric,            ///< uncategorized invariant/precondition violation
    kInvalidArgument,    ///< caller-supplied argument out of contract
    kUnsupportedConfig,  ///< valid request the implementation cannot serve
                         ///< (recorded as a skipped cell, not a failure)
    kOracleViolation,    ///< a validation oracle found wrong results
    kCancelled,          ///< cooperative cancellation tripped
    kDeadlineExceeded,   ///< DCT_DEADLINE_MS budget exhausted
    kFault,              ///< foreign exception caught at a crash boundary
  };

  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(Code::kGeneric) {}
  Error(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  Code code() const { return code_; }

  /// Context frames, innermost first (the order with_context was called in
  /// as the error travelled up).
  const std::vector<std::string>& context() const { return context_; }

  /// Append one context frame; returns *this so a catch site can
  /// `throw e.with_context("pass layout")`.
  Error& with_context(std::string frame) {
    context_.push_back(std::move(frame));
    return *this;
  }

  /// what() plus the context chain, for human-facing reports.
  std::string full_message() const;

 private:
  Code code_;
  std::vector<std::string> context_;
};

/// Short stable name of a code, e.g. "unsupported-config".
const char* to_string(Error::Code code);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  check_failed(expr, file, line, std::string());
}
}  // namespace detail

}  // namespace dct

/// Validate `cond`; on failure throw dct::Error mentioning the expression,
/// source location and the optional message given as the second argument
/// (any std::string expression).
#define DCT_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dct::detail::check_failed(#cond, __FILE__,                         \
                                  __LINE__ __VA_OPT__(, ) __VA_ARGS__);    \
    }                                                                      \
  } while (false)
