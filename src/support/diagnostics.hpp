// Diagnostics: checked assertions and error reporting for the dct library.
//
// DCT_CHECK is used to validate internal invariants and user-supplied
// arguments alike; it throws dct::Error (never aborts) so library users can
// recover and tests can assert on failures.
#pragma once

#include <stdexcept>
#include <string>

namespace dct {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  check_failed(expr, file, line, std::string());
}
}  // namespace detail

}  // namespace dct

/// Validate `cond`; on failure throw dct::Error mentioning the expression,
/// source location and the optional message given as the second argument
/// (any std::string expression).
#define DCT_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dct::detail::check_failed(#cond, __FILE__,                         \
                                  __LINE__ __VA_OPT__(, ) __VA_ARGS__);    \
    }                                                                      \
  } while (false)
