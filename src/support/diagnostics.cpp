#include "support/diagnostics.hpp"

#include <sstream>

namespace dct {

std::string Error::full_message() const {
  std::ostringstream os;
  os << what();
  for (const std::string& frame : context_) os << " [" << frame << "]";
  return os.str();
}

const char* to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kGeneric: return "generic";
    case Error::Code::kInvalidArgument: return "invalid-argument";
    case Error::Code::kUnsupportedConfig: return "unsupported-config";
    case Error::Code::kOracleViolation: return "oracle-violation";
    case Error::Code::kCancelled: return "cancelled";
    case Error::Code::kDeadlineExceeded: return "deadline-exceeded";
    case Error::Code::kFault: return "fault";
  }
  return "?";
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace dct
