#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  DCT_CHECK(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c] << " |";
    }
    os << '\n';
  };
  emit(header_);
  for (size_t c = 0; c < header_.size(); ++c)
    os << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string render_speedup_chart(const std::string& title,
                                 const std::vector<int>& xs,
                                 const std::vector<Series>& series,
                                 int height) {
  static const char kGlyphs[] = {'b', 'c', 'd', 'e', 'f'};
  double ymax = xs.empty() ? 1.0 : static_cast<double>(xs.back());
  for (const auto& s : series)
    for (double v : s.values) ymax = std::max(ymax, v);
  ymax = std::max(ymax, 1.0);

  const int width = static_cast<int>(xs.size()) * 4 + 2;
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  auto plot = [&](double x01, double y, char g) {
    const int col = 1 + static_cast<int>(std::lround(
                            x01 * (static_cast<double>(width) - 3.0)));
    int row = height - 1 -
              static_cast<int>(std::lround(y / ymax *
                                           (static_cast<double>(height) - 1)));
    row = std::clamp(row, 0, height - 1);
    grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = g;
  };

  // Ideal linear-speedup diagonal.
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x01 =
        xs.size() == 1 ? 0.0
                       : static_cast<double>(i) /
                             (static_cast<double>(xs.size()) - 1.0);
    plot(x01, static_cast<double>(xs[i]), '.');
  }
  for (size_t s = 0; s < series.size(); ++s) {
    for (size_t i = 0; i < xs.size() && i < series[s].values.size(); ++i) {
      const double x01 =
          xs.size() == 1 ? 0.0
                         : static_cast<double>(i) /
                               (static_cast<double>(xs.size()) - 1.0);
      plot(x01, series[s].values[i], kGlyphs[s % sizeof(kGlyphs)]);
    }
  }

  std::ostringstream os;
  os << title << '\n';
  for (int r = 0; r < height; ++r) {
    const double yval =
        ymax * (static_cast<double>(height - 1 - r) /
                (static_cast<double>(height) - 1.0));
    os << strf("%6.1f |", yval) << grid[static_cast<size_t>(r)] << '\n';
  }
  os << "       +" << std::string(static_cast<size_t>(width), '-') << '\n';
  os << "        ";
  for (size_t i = 0; i < xs.size(); ++i) os << strf("%-4d", xs[i]);
  os << " processors\n";
  os << "  legend: '.' linear";
  for (size_t s = 0; s < series.size(); ++s)
    os << strf("  '%c' %s", kGlyphs[s % sizeof(kGlyphs)],
               series[s].label.c_str());
  os << '\n';
  return os.str();
}

}  // namespace dct
