// Structured pass remarks (the compiler's observability layer).
//
// Every pipeline stage reports what it decided — per-nest and per-array
// attributed remarks plus named decision counters — into a RemarkSink.
// The PassManager owns a RemarkEngine that groups everything by pass and
// stamps wall-clock time per stage; the resulting PipelineTrace travels
// with the CompiledProgram so the experiment harness can aggregate traces
// across a whole sweep.
//
// Tracing is controlled by the DCT_TRACE environment variable:
//   unset / "0"  — off (remarks are still collected, just not printed)
//   "1"          — every compilation emits a JSON report to stderr
//   anything else — treated as a file path; reports are appended to it
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dct::support {

/// One structured observation from a compiler pass.
struct Remark {
  std::string pass;     ///< filled in by the engine
  std::string message;
  int nest = -1;        ///< nest index, -1 = program-wide
  int array = -1;       ///< array index, -1 = no array attribution
  std::string nest_name;
  std::string array_name;
};

/// Sink interface the passes (and the analyses they call) emit into.
class RemarkSink {
 public:
  virtual ~RemarkSink() = default;
  virtual void remark(Remark r) = 0;
  /// Bump a named decision counter.
  virtual void count(const std::string& counter, long delta = 1) = 0;

  /// Convenience: program-wide remark from just a message.
  void note(std::string message) {
    Remark r;
    r.message = std::move(message);
    remark(std::move(r));
  }
};

/// Forwards to an underlying sink with nest (and optionally array)
/// attribution filled in — lets nest-at-a-time analyses (dep::parallelize,
/// layout::derive_layout) emit remarks without knowing their index.
class ScopedSink final : public RemarkSink {
 public:
  ScopedSink(RemarkSink* inner, int nest, std::string nest_name, int array = -1,
             std::string array_name = {})
      : inner_(inner), nest_(nest), array_(array),
        nest_name_(std::move(nest_name)), array_name_(std::move(array_name)) {}

  void remark(Remark r) override {
    if (inner_ == nullptr) return;
    if (r.nest < 0) { r.nest = nest_; r.nest_name = nest_name_; }
    if (r.array < 0) { r.array = array_; r.array_name = array_name_; }
    inner_->remark(std::move(r));
  }
  void count(const std::string& counter, long delta = 1) override {
    if (inner_ != nullptr) inner_->count(counter, delta);
  }

 private:
  RemarkSink* inner_;
  int nest_, array_;
  std::string nest_name_, array_name_;
};

/// Everything recorded about one pass execution (or, after merging, about
/// all executions of that pass across a sweep).
struct PassRecord {
  std::string name;
  int runs = 1;
  double wall_ms = 0;
  long remark_count = 0;  ///< survives merging even when remarks are dropped
  std::vector<Remark> remarks;
  std::map<std::string, long> counters;
};

/// The structured report of one compilation (or an aggregation of many).
struct PipelineTrace {
  std::vector<PassRecord> passes;
  double total_ms = 0;

  /// Fold another trace in: per-pass wall time, run and remark counts and
  /// counters are summed; individual remarks are dropped (aggregations
  /// would otherwise grow unboundedly over a sweep).
  void merge(const PipelineTrace& other);

  /// JSON report. `meta` entries become leading string fields of the
  /// top-level object (e.g. {"unit","lu"}, {"mode","full"}).
  std::string json(
      const std::vector<std::pair<std::string, std::string>>& meta = {}) const;
};

/// Collects remarks/counters into per-pass records with wall-clock timing.
class RemarkEngine final : public RemarkSink {
 public:
  /// Open a pass record; subsequent remarks/counters land in it.
  void begin_pass(const std::string& name);
  /// Close the open record, stamping its wall time.
  void end_pass();

  void remark(Remark r) override;
  void count(const std::string& counter, long delta = 1) override;

  const PipelineTrace& trace() const { return trace_; }
  PipelineTrace take_trace() { return std::move(trace_); }

 private:
  PassRecord& current();
  PipelineTrace trace_;
  bool open_ = false;
  double start_ms_ = 0;
};

/// Explicit trace destination, so concurrent compilations can carry their
/// own configuration instead of each re-reading DCT_TRACE mid-flight (the
/// service resolves one snapshot at startup and threads it through every
/// request's CompileOptions).
struct TraceOptions {
  bool enabled = false;
  std::string path;  ///< empty = stderr

  /// Snapshot of the DCT_TRACE environment variable (see file header).
  static TraceOptions from_env();
};

/// True when DCT_TRACE requests report emission.
bool trace_enabled();
/// Emit one JSON report line to the DCT_TRACE destination (stderr or file).
void emit_trace(const std::string& json_line);
/// Emit one JSON report line to an explicit destination. Emission is
/// serialized process-wide regardless of destination.
void emit_trace(const std::string& json_line, const TraceOptions& to);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace dct::support
