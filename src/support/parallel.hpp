// A minimal fork/join helper for embarrassingly parallel index spaces
// (the experiment sweep: every (app, mode, P) simulation is independent).
#pragma once

#include <functional>

namespace dct::support {

/// Worker count to use when the caller does not specify one: the
/// DCT_THREADS environment variable when set, otherwise
/// std::thread::hardware_concurrency().
int default_threads();

/// Run fn(0) .. fn(n-1) on up to `threads` worker threads (<= 0 means
/// default_threads(); 1 runs serially on the calling thread). Blocks until
/// every index has completed. If any invocation throws, the exception of
/// the lowest-numbered failing index is rethrown after the join, so
/// failure reporting is deterministic regardless of scheduling.
void parallel_for(int n, int threads, const std::function<void(int)>& fn);

}  // namespace dct::support
