// A minimal fork/join helper for embarrassingly parallel index spaces
// (the experiment sweep: every (app, mode, P) simulation is independent).
#pragma once

#include <exception>
#include <functional>
#include <vector>

#include "support/cancel.hpp"

namespace dct::support {

/// Worker count to use when the caller does not specify one: the
/// DCT_THREADS environment variable when set, otherwise
/// std::thread::hardware_concurrency().
int default_threads();

/// Outcome of a parallel_for_collect run: one slot per index.
struct ParallelOutcome {
  /// errors[i] is the exception fn(i) threw, or null on success (also null
  /// when the index never started — see started).
  std::vector<std::exception_ptr> errors;
  /// started[i] is false when cancellation stopped the loop before fn(i)
  /// was dispatched.
  std::vector<char> started;

  bool all_ok() const;
  /// The exception of the lowest-numbered failing index, or null.
  std::exception_ptr first_error() const;
};

/// Run fn(0) .. fn(n-1) on up to `threads` worker threads (<= 0 means
/// default_threads(); 1 runs serially on the calling thread). Blocks until
/// every dispatched index has completed. Exceptions are captured per index
/// rather than rethrown, so a caller building a failure table sees *every*
/// failing index, not just the first. When `cancel` is a valid token,
/// workers stop fetching new indices once it expires; indices never
/// dispatched come back with started[i] == false.
ParallelOutcome parallel_for_collect(int n, int threads,
                                     const std::function<void(int)>& fn,
                                     const CancelToken& cancel = {});

/// Run fn(0) .. fn(n-1) on up to `threads` worker threads. Blocks until
/// every index has completed. If any invocation throws, the exception of
/// the lowest-numbered failing index is rethrown after the join, so
/// failure reporting is deterministic regardless of scheduling.
void parallel_for(int n, int threads, const std::function<void(int)>& fn);

}  // namespace dct::support
