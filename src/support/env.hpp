// Environment-variable configuration used by the benchmark harnesses.
#pragma once

#include <string>

namespace dct {

/// Read an integer environment variable, falling back to `def` when unset
/// or unparsable.
long env_int(const char* name, long def);

/// Read a string environment variable, falling back to `def` when unset
/// or empty.
std::string env_str(const char* name, const std::string& def);

/// Global workload scale factor (env REPRO_SCALE, default 1). Benches
/// multiply their default problem sizes by this to approach the paper's
/// original dataset sizes (REPRO_SCALE=4 reproduces most of them exactly).
long repro_scale();

}  // namespace dct
