#include "support/remark.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "support/diagnostics.hpp"

namespace dct::support {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_remark_json(std::ostringstream& os, const Remark& r) {
  os << "{\"message\":\"" << json_escape(r.message) << "\"";
  if (r.nest >= 0) {
    os << ",\"nest\":" << r.nest;
    if (!r.nest_name.empty())
      os << ",\"nest_name\":\"" << json_escape(r.nest_name) << "\"";
  }
  if (r.array >= 0) {
    os << ",\"array\":" << r.array;
    if (!r.array_name.empty())
      os << ",\"array_name\":\"" << json_escape(r.array_name) << "\"";
  }
  os << "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PipelineTrace::merge(const PipelineTrace& other) {
  for (const PassRecord& pr : other.passes) {
    PassRecord* mine = nullptr;
    for (PassRecord& p : passes)
      if (p.name == pr.name) { mine = &p; break; }
    if (mine == nullptr) {
      PassRecord copy;
      copy.name = pr.name;
      copy.runs = 0;
      passes.push_back(std::move(copy));
      mine = &passes.back();
    }
    mine->runs += pr.runs;
    mine->wall_ms += pr.wall_ms;
    mine->remark_count += pr.remark_count;
    for (const auto& [k, v] : pr.counters) mine->counters[k] += v;
  }
  total_ms += other.total_ms;
}

std::string PipelineTrace::json(
    const std::vector<std::pair<std::string, std::string>>& meta) const {
  std::ostringstream os;
  os << "{";
  for (const auto& [k, v] : meta)
    os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\",";
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", total_ms);
  os << "\"total_ms\":" << ms << ",\"passes\":[";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassRecord& p = passes[i];
    if (i != 0) os << ",";
    std::snprintf(ms, sizeof(ms), "%.3f", p.wall_ms);
    os << "{\"name\":\"" << json_escape(p.name) << "\",\"runs\":" << p.runs
       << ",\"wall_ms\":" << ms << ",\"remark_count\":" << p.remark_count;
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : p.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":" << v;
    }
    os << "}";
    if (!p.remarks.empty()) {
      os << ",\"remarks\":[";
      for (size_t r = 0; r < p.remarks.size(); ++r) {
        if (r != 0) os << ",";
        append_remark_json(os, p.remarks[r]);
      }
      os << "]";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void RemarkEngine::begin_pass(const std::string& name) {
  DCT_CHECK(!open_, "begin_pass with a pass still open");
  PassRecord pr;
  pr.name = name;
  trace_.passes.push_back(std::move(pr));
  open_ = true;
  start_ms_ = now_ms();
}

void RemarkEngine::end_pass() {
  DCT_CHECK(open_, "end_pass without begin_pass");
  const double elapsed = now_ms() - start_ms_;
  trace_.passes.back().wall_ms = elapsed;
  trace_.total_ms += elapsed;
  open_ = false;
}

PassRecord& RemarkEngine::current() {
  DCT_CHECK(open_, "remark emitted outside any pass");
  return trace_.passes.back();
}

void RemarkEngine::remark(Remark r) {
  PassRecord& pr = current();
  r.pass = pr.name;
  pr.remarks.push_back(std::move(r));
  ++pr.remark_count;
}

void RemarkEngine::count(const std::string& counter, long delta) {
  current().counters[counter] += delta;
}

TraceOptions TraceOptions::from_env() {
  TraceOptions to;
  const char* v = std::getenv("DCT_TRACE");
  if (v == nullptr || *v == '\0' || std::string(v) == "0") return to;
  to.enabled = true;
  if (std::string(v) != "1") to.path = v;
  return to;
}

bool trace_enabled() { return TraceOptions::from_env().enabled; }

void emit_trace(const std::string& json_line) {
  emit_trace(json_line, TraceOptions::from_env());
}

void emit_trace(const std::string& json_line, const TraceOptions& to) {
  if (!to.enabled) return;
  // Serialize emission: a parallel sweep traces from many threads.
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  if (to.path.empty()) {
    std::fprintf(stderr, "%s\n", json_line.c_str());
    return;
  }
  if (std::FILE* f = std::fopen(to.path.c_str(), "a")) {
    std::fprintf(f, "%s\n", json_line.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "%s\n", json_line.c_str());
  }
}

}  // namespace dct::support
