// Deterministic pseudo-random number generation for tests and workload
// initialization. splitmix64 — tiny, fast, and reproducible across
// platforms (std::mt19937 distributions are not portable across libstdc++
// versions, which would make golden tests fragile).
#pragma once

#include <cstdint>

namespace dct {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dct
