#include "support/env.hpp"

#include <cstdlib>

namespace dct {

long env_int(const char* name, long def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return def;
  return parsed;
}

std::string env_str(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return v;
}

long repro_scale() { return env_int("REPRO_SCALE", 1); }

}  // namespace dct
