#include "support/cancel.hpp"

#include <string>

namespace dct::support {

CancelToken CancelToken::make() {
  CancelToken t;
  t.s_ = std::make_shared<State>();
  return t;
}

CancelToken CancelToken::with_deadline_ms(double ms) {
  CancelToken t = make();
  t.s_->has_deadline = true;
  t.s_->deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(ms < 0 ? 0 : ms));
  return t;
}

void CancelToken::cancel() const {
  if (s_ == nullptr) return;
  s_->reason.store(static_cast<int>(Error::Code::kCancelled),
                   std::memory_order_relaxed);
  s_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::expired() const {
  if (s_ == nullptr) return false;
  if (s_->cancelled.load(std::memory_order_acquire)) return true;
  if (s_->has_deadline &&
      std::chrono::steady_clock::now() >= s_->deadline) {
    s_->reason.store(static_cast<int>(Error::Code::kDeadlineExceeded),
                     std::memory_order_relaxed);
    s_->cancelled.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

Error::Code CancelToken::reason() const {
  if (s_ == nullptr) return Error::Code::kCancelled;
  const int r = s_->reason.load(std::memory_order_relaxed);
  return r == 0 ? Error::Code::kCancelled : static_cast<Error::Code>(r);
}

void CancelToken::check(const char* where) const {
  if (!expired()) return;
  const Error::Code code = reason();
  throw Error(code, std::string(code == Error::Code::kDeadlineExceeded
                                    ? "deadline exceeded in "
                                    : "cancelled in ") +
                        where);
}

}  // namespace dct::support
