// Cooperative cancellation for long-running work (sweeps, simulations).
//
// A CancelToken is a cheap shared handle; a default-constructed token is
// inert (never cancels, no allocation), so code paths that thread a token
// through pay nothing unless the caller opted in. Tokens cancel either
// explicitly (cancel()) or by a wall-clock deadline (with_deadline_ms);
// the experiment harness builds one per sweep from DCT_DEADLINE_MS and
// polls it in the executor's segment loops — a tripped deadline stops
// both running simulations and the queuing of new sweep cells.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "support/diagnostics.hpp"

namespace dct::support {

class CancelToken {
 public:
  /// Inert token: valid() is false, expired() is always false, zero cost.
  CancelToken() = default;

  /// Manually cancellable token.
  static CancelToken make();
  /// Token that expires `ms` milliseconds from now (ms <= 0: immediately).
  static CancelToken with_deadline_ms(double ms);

  bool valid() const { return s_ != nullptr; }

  /// Trip the token (idempotent; safe from any thread).
  void cancel() const;

  /// True when cancelled or past the deadline. A deadline trip latches the
  /// flag so later polls skip the clock read.
  bool expired() const;

  /// The code expired() tripped with: kCancelled for explicit cancels,
  /// kDeadlineExceeded for deadline trips. Meaningful only after expired().
  Error::Code reason() const;

  /// Throw Error(reason()) mentioning `where` when expired; no-op
  /// otherwise (and always a no-op for an inert token).
  void check(const char* where) const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int> reason{0};  ///< static_cast<int>(Error::Code)
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  std::shared_ptr<State> s_;
};

}  // namespace dct::support
