// Unimodular parallelization preprocessing (paper §3.2, first step):
// "analyze each loop nest individually and restructure the loop via
// unimodular transformations to expose the largest number of outermost
// parallelizable loops" — the Wolf–Lam style search over loop
// permutations, with a skewing fallback for wavefront nests.
#pragma once

#include "dep/dependence.hpp"
#include "ir/program.hpp"
#include "support/remark.hpp"

namespace dct::dep {

struct ParallelizedNest {
  ir::LoopNest nest;            ///< the transformed nest
  linalg::IntMatrix transform;  ///< j = transform * i
  NestDeps deps;                ///< dependences of the transformed nest
  std::vector<bool> parallel;   ///< per level: carries no dependence (DOALL)

  int outer_parallel_count() const;  ///< leading DOALL levels
};

/// Search permutations (and, when no permutation exposes parallelism and
/// all dependences have exact distances, simple skews) for the legal
/// transform maximizing outermost parallelism; ties prefer total
/// parallelism, then stride-1 (column-major) innermost access, then the
/// identity. When `rs` is given, the search reports what it tried and what
/// it chose as structured remarks.
ParallelizedNest parallelize(const ir::LoopNest& nest,
                             support::RemarkSink* rs = nullptr);

}  // namespace dct::dep
