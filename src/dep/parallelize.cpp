#include "dep/parallelize.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "ir/transform.hpp"
#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::dep {

using linalg::Int;
using linalg::IntMatrix;

int ParallelizedNest::outer_parallel_count() const {
  int n = 0;
  while (n < static_cast<int>(parallel.size()) &&
         parallel[static_cast<size_t>(n)])
    ++n;
  return n;
}

namespace {

/// Transform a dependence-vector set by a unimodular matrix. Permutation
/// matrices work on any vector (directions permute); general matrices need
/// exact distances. Returns nullopt when the transform cannot be applied
/// or would make some vector lexicographically negative (illegal).
std::optional<std::vector<DepVector>> transform_vectors(
    const std::vector<DepVector>& vectors, const IntMatrix& u) {
  const int d = u.rows();
  // Detect a pure permutation.
  std::vector<int> perm(static_cast<size_t>(d), -1);
  bool is_perm = true;
  for (int r = 0; r < d && is_perm; ++r) {
    int ones = 0;
    for (int c = 0; c < d; ++c) {
      const Int v = u.at(r, c);
      if (v == 1) {
        perm[static_cast<size_t>(r)] = c;
        ++ones;
      } else if (v != 0) {
        is_perm = false;
      }
    }
    if (ones != 1) is_perm = false;
  }

  std::vector<DepVector> out;
  out.reserve(vectors.size());
  for (const DepVector& v : vectors) {
    DepVector t;
    t.dirs.resize(static_cast<size_t>(d));
    t.dist.resize(static_cast<size_t>(d));
    if (is_perm) {
      for (int l = 0; l < d; ++l) {
        t.dirs[static_cast<size_t>(l)] =
            v.dirs[static_cast<size_t>(perm[static_cast<size_t>(l)])];
        t.dist[static_cast<size_t>(l)] =
            v.dist[static_cast<size_t>(perm[static_cast<size_t>(l)])];
      }
    } else {
      linalg::Vec delta(static_cast<size_t>(d));
      for (int l = 0; l < d; ++l) {
        if (!v.dist[static_cast<size_t>(l)].has_value()) return std::nullopt;
        delta[static_cast<size_t>(l)] = *v.dist[static_cast<size_t>(l)];
      }
      const linalg::Vec nd = u * delta;
      for (int l = 0; l < d; ++l) {
        const Int x = nd[static_cast<size_t>(l)];
        t.dirs[static_cast<size_t>(l)] =
            x == 0 ? Dir::EQ : (x > 0 ? Dir::LT : Dir::GT);
        t.dist[static_cast<size_t>(l)] = x;
      }
    }
    // Legality: the transformed vector must be lexicographically positive
    // (or all-EQ, which cannot happen for a carried vector).
    const int cl = t.carrier_level();
    if (cl >= 0 && t.dirs[static_cast<size_t>(cl)] == Dir::GT)
      return std::nullopt;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<bool> parallel_levels(const std::vector<DepVector>& vectors,
                                  int d) {
  std::vector<bool> par(static_cast<size_t>(d), true);
  for (const DepVector& v : vectors) {
    const int l = v.carrier_level();
    if (l >= 0) par[static_cast<size_t>(l)] = false;
  }
  return par;
}

/// Tie-break score: number of references whose fastest-varying (first,
/// column-major) array dimension is indexed by the innermost loop with
/// unit coefficient — i.e. stride-1 spatial locality in the inner loop.
int stride1_score(const ir::LoopNest& nest) {
  const int inner = nest.depth() - 1;
  int score = 0;
  auto check = [&](const ir::ArrayRef& r) {
    if (r.access.rows() == 0) return;
    if (std::abs(r.access.at(0, inner)) == 1) ++score;
  };
  for (const ir::Stmt& s : nest.stmts) {
    for (const ir::ArrayRef& r : s.reads) check(r);
    if (s.write) check(*s.write);
  }
  return score;
}

struct Candidate {
  IntMatrix u;
  std::vector<DepVector> vectors;
  std::vector<bool> parallel;
  int outer_parallel = 0;
  int total_parallel = 0;
  int stride1 = 0;
  bool is_identity = false;
};

}  // namespace

ParallelizedNest parallelize(const ir::LoopNest& nest,
                             support::RemarkSink* rs) {
  const int d = nest.depth();
  const NestDeps deps = analyze(nest);

  // Imperfect nests: a statement at depth m executes once per iteration
  // of the outer m loops, so a legal transform must map the outer m loops
  // among themselves (block-triangular with a unimodular leading block).
  std::vector<int> stmt_depths;
  for (const ir::Stmt& s : nest.stmts) {
    const int m = s.effective_depth(d);
    if (m < d) stmt_depths.push_back(m);
  }
  auto admissible = [&](const IntMatrix& u) {
    for (int m : stmt_depths) {
      for (int i = 0; i < m; ++i)
        for (int j = m; j < d; ++j)
          if (u.at(i, j) != 0) return false;
      if (std::abs(linalg::determinant(u.submatrix(0, m, 0, m))) != 1)
        return false;
    }
    return true;
  };

  std::vector<IntMatrix> transforms;
  {
    std::vector<int> perm(static_cast<size_t>(d));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      transforms.push_back(ir::permutation_matrix(perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  auto evaluate = [&](const IntMatrix& u) -> std::optional<Candidate> {
    if (!admissible(u)) return std::nullopt;
    auto tv = transform_vectors(deps.vectors, u);
    if (!tv.has_value()) return std::nullopt;
    Candidate c;
    c.u = u;
    c.vectors = std::move(*tv);
    c.parallel = parallel_levels(c.vectors, d);
    while (c.outer_parallel < d &&
           c.parallel[static_cast<size_t>(c.outer_parallel)])
      ++c.outer_parallel;
    c.total_parallel = static_cast<int>(
        std::count(c.parallel.begin(), c.parallel.end(), true));
    c.is_identity = (u == IntMatrix::identity(d));
    return c;
  };

  std::vector<Candidate> candidates;
  for (const IntMatrix& u : transforms)
    if (auto c = evaluate(u)) candidates.push_back(std::move(*c));
  DCT_CHECK(!candidates.empty(), "identity transform must always be legal");

  const bool any_parallel = std::any_of(
      candidates.begin(), candidates.end(),
      [](const Candidate& c) { return c.total_parallel > 0; });
  bool skewed = false;
  if (!any_parallel && d >= 2) {
    skewed = true;
    // Wavefront fallback: skew an inner loop by an outer one, optionally
    // composed with a permutation. Needs exact distances (checked inside
    // transform_vectors).
    for (int t = 1; t < d; ++t)
      for (int s = 0; s < t; ++s)
        for (Int f = 1; f <= 2; ++f) {
          const IntMatrix skew = ir::skew_matrix(d, t, s, f);
          for (const IntMatrix& p : transforms)
            if (auto c = evaluate(p * skew)) candidates.push_back(std::move(*c));
        }
  }

  // Computing stride-1 scores requires the transformed nest; only compute
  // it for candidates that survive the primary criteria.
  int best_outer = -1, best_total = -1;
  for (const Candidate& c : candidates) {
    best_outer = std::max(best_outer, c.outer_parallel);
    if (c.outer_parallel == best_outer)
      best_total = std::max(best_total, c.total_parallel);
  }
  best_total = -1;
  for (const Candidate& c : candidates)
    if (c.outer_parallel == best_outer)
      best_total = std::max(best_total, c.total_parallel);

  const Candidate* best = nullptr;
  int best_stride1 = -1;
  ir::LoopNest best_nest;
  for (Candidate& c : candidates) {
    if (c.outer_parallel != best_outer || c.total_parallel != best_total)
      continue;
    ir::LoopNest transformed = ir::apply_unimodular(nest, c.u);
    c.stride1 = stride1_score(transformed);
    const bool better =
        best == nullptr || c.stride1 > best_stride1 ||
        (c.stride1 == best_stride1 && c.is_identity && !best->is_identity);
    if (better) {
      best = &c;
      best_stride1 = c.stride1;
      best_nest = std::move(transformed);
    }
  }
  DCT_CHECK(best != nullptr);

  ParallelizedNest out;
  out.nest = std::move(best_nest);
  out.transform = best->u;
  out.deps.vectors = best->vectors;
  out.deps.carried.assign(static_cast<size_t>(d), false);
  for (const DepVector& v : out.deps.vectors) {
    const int l = v.carrier_level();
    if (l >= 0) out.deps.carried[static_cast<size_t>(l)] = true;
  }
  out.parallel = best->parallel;
  if (rs != nullptr) {
    rs->count("legal_candidates", static_cast<long>(candidates.size()));
    rs->count("dependence_vectors", static_cast<long>(deps.vectors.size()));
    if (!best->is_identity) rs->count("nests_transformed");
    if (skewed) rs->count("wavefront_searches");
    rs->note(strf("%s: %d of %d outer loop(s) DOALL%s",
                  best->is_identity ? "identity transform"
                                    : (skewed ? "skewed wavefront transform"
                                              : "unimodular transform"),
                  best->outer_parallel, d,
                  best->stride1 > 0 ? ", stride-1 innermost" : ""));
  }
  return out;
}

}  // namespace dct::dep
