#include "dep/dependence.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/diagnostics.hpp"

namespace dct::dep {

using ir::ArrayRef;
using ir::LoopNest;
using linalg::checked_add;
using linalg::checked_mul;
using linalg::IntMatrix;
using linalg::Vec;

bool DepVector::loop_independent() const {
  return std::all_of(dirs.begin(), dirs.end(),
                     [](Dir d) { return d == Dir::EQ; });
}

int DepVector::carrier_level() const {
  for (size_t l = 0; l < dirs.size(); ++l)
    if (dirs[l] != Dir::EQ) return static_cast<int>(l);
  return -1;
}

std::string DepVector::to_string() const {
  std::ostringstream os;
  os << "(";
  for (size_t l = 0; l < dirs.size(); ++l) {
    if (l) os << ",";
    if (dist[l].has_value())
      os << *dist[l];
    else
      os << (dirs[l] == Dir::EQ ? "=" : dirs[l] == Dir::LT ? "<" : ">");
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Rectangular hull
// ---------------------------------------------------------------------------

namespace {

/// Interval value of an affine expression given per-variable intervals.
void expr_interval(const ir::AffineExpr& e, const std::vector<Int>& lo,
                   const std::vector<Int>& hi, Int& out_lo, Int& out_hi) {
  out_lo = e.constant;
  out_hi = e.constant;
  for (size_t d = 0; d < e.coeffs.size(); ++d) {
    const Int c = e.coeffs[d];
    if (c == 0) continue;
    if (c > 0) {
      out_lo = checked_add(out_lo, checked_mul(c, lo[d]));
      out_hi = checked_add(out_hi, checked_mul(c, hi[d]));
    } else {
      out_lo = checked_add(out_lo, checked_mul(c, hi[d]));
      out_hi = checked_add(out_hi, checked_mul(c, lo[d]));
    }
  }
}

Int ceil_div(Int a, Int b) { return -linalg::floor_div(-a, b); }

}  // namespace

Hull iteration_hull(const ir::LoopNest& nest) {
  Hull hull;
  const int d = nest.depth();
  hull.lo.assign(static_cast<size_t>(d), 0);
  hull.hi.assign(static_cast<size_t>(d), 0);
  for (int k = 0; k < d; ++k) {
    const ir::Loop& lp = nest.loops[static_cast<size_t>(k)];
    // Effective lower = max(bounds): its minimum is >= max of per-bound
    // minima, which is a valid hull lower bound.
    Int lo = INT64_MIN, hi = INT64_MAX;
    for (const ir::Bound& b : lp.lowers) {
      Int blo = 0, bhi = 0;
      expr_interval(b.expr, hull.lo, hull.hi, blo, bhi);
      lo = std::max(lo, ceil_div(blo, b.divisor));
    }
    for (const ir::Bound& b : lp.uppers) {
      Int blo = 0, bhi = 0;
      expr_interval(b.expr, hull.lo, hull.hi, blo, bhi);
      hi = std::min(hi, linalg::floor_div(bhi, b.divisor));
    }
    DCT_CHECK(lo != INT64_MIN && hi != INT64_MAX, "loop without bounds");
    if (lo > hi) {
      hull.empty = true;
      hi = lo;  // keep well-formed intervals
    }
    hull.lo[static_cast<size_t>(k)] = lo;
    hull.hi[static_cast<size_t>(k)] = hi;
  }
  return hull;
}

// ---------------------------------------------------------------------------
// Banerjee + GCD feasibility of one direction vector for one ref pair
// ---------------------------------------------------------------------------

namespace {

/// One affine inequality c · x + c0 >= 0 over the 2d-dimensional space of
/// iteration pairs (i, i').
struct Ineq {
  Vec c;
  Int c0 = 0;
};

/// Integer-tightening normalization: divide by the gcd of the variable
/// coefficients, flooring the constant (keeps every integer point).
void normalize_ineq(Ineq& q) {
  Int g = 0;
  for (Int v : q.c) g = linalg::gcd(g, v);
  if (g > 1) {
    for (Int& v : q.c) v /= g;
    q.c0 = linalg::floor_div(q.c0, g);
  }
}

/// Fourier–Motzkin feasibility over the rationals (with gcd cuts): false
/// means no integer solution exists; true is conservative. Caps work to
/// stay cheap — on blow-up it answers true (sound).
bool fm_feasible(std::vector<Ineq> system, int nvars) {
  constexpr size_t kMaxRows = 4000;
  for (Ineq& q : system) normalize_ineq(q);
  for (int v = nvars - 1; v >= 0; --v) {
    std::vector<Ineq> lower, upper, rest;
    for (Ineq& q : system) {
      const Int cv = q.c[static_cast<size_t>(v)];
      if (cv > 0)
        lower.push_back(std::move(q));
      else if (cv < 0)
        upper.push_back(std::move(q));
      else
        rest.push_back(std::move(q));
    }
    if (lower.size() * upper.size() + rest.size() > kMaxRows) return true;
    system = std::move(rest);
    for (const Ineq& lo : lower)
      for (const Ineq& hi : upper) {
        const Int clo = lo.c[static_cast<size_t>(v)];
        const Int chi = -hi.c[static_cast<size_t>(v)];
        Ineq q;
        q.c.resize(static_cast<size_t>(nvars));
        for (int k = 0; k < nvars; ++k)
          q.c[static_cast<size_t>(k)] = checked_add(
              checked_mul(clo, hi.c[static_cast<size_t>(k)]),
              checked_mul(chi, lo.c[static_cast<size_t>(k)]));
        q.c0 = checked_add(checked_mul(clo, hi.c0), checked_mul(chi, lo.c0));
        DCT_CHECK(q.c[static_cast<size_t>(v)] == 0);
        normalize_ineq(q);
        if (std::all_of(q.c.begin(), q.c.end(), [](Int x) { return x == 0; })) {
          if (q.c0 < 0) return false;
          continue;  // trivially satisfied
        }
        system.push_back(std::move(q));
      }
    // Deduplicate to control growth.
    std::sort(system.begin(), system.end(), [](const Ineq& a, const Ineq& b) {
      return std::tie(a.c, a.c0) < std::tie(b.c, b.c0);
    });
    system.erase(std::unique(system.begin(), system.end(),
                             [](const Ineq& a, const Ineq& b) {
                               return a.c == b.c && a.c0 == b.c0;
                             }),
                 system.end());
  }
  for (const Ineq& q : system)
    if (q.c0 < 0) return false;
  return true;
}

/// Append the inequalities of `loop` bounds for iteration variables at
/// offset `base` within a 2d-variable system.
void add_bound_ineqs(const ir::LoopNest& nest, int base, int nvars,
                     std::vector<Ineq>& system) {
  const int d = nest.depth();
  for (int k = 0; k < d; ++k) {
    const ir::Loop& lp = nest.loops[static_cast<size_t>(k)];
    for (const ir::Bound& b : lp.lowers) {
      Ineq q;
      q.c.assign(static_cast<size_t>(nvars), 0);
      q.c[static_cast<size_t>(base + k)] = b.divisor;
      for (size_t i = 0; i < b.expr.coeffs.size(); ++i)
        q.c[static_cast<size_t>(base) + i] = linalg::checked_sub(
            q.c[static_cast<size_t>(base) + i], b.expr.coeffs[i]);
      q.c0 = -b.expr.constant;
      system.push_back(std::move(q));
    }
    for (const ir::Bound& b : lp.uppers) {
      Ineq q;
      q.c.assign(static_cast<size_t>(nvars), 0);
      for (size_t i = 0; i < b.expr.coeffs.size(); ++i)
        q.c[static_cast<size_t>(base) + i] = b.expr.coeffs[i];
      q.c[static_cast<size_t>(base + k)] = linalg::checked_sub(
          q.c[static_cast<size_t>(base + k)], b.divisor);
      q.c0 = b.expr.constant;
      system.push_back(std::move(q));
    }
  }
}

/// Can src (executed at iteration i) and dst (at i') touch the same element
/// with the given direction constraints (src before dst)? Decided by exact
/// rational Fourier–Motzkin over the full constraint system (handles
/// triangular bounds) plus per-dimension Banerjee/GCD screening.
/// Conservative: returns true unless independence is proven.
/// `dirs` may be shorter than the nest depth (imperfect nests: direction
/// constraints only apply to the loops common to both statements); deeper
/// levels are unconstrained free variables.
bool direction_feasible(const ir::LoopNest& nest, const ArrayRef& src,
                        const ArrayRef& dst, const Hull& hull,
                        const std::vector<Dir>& dirs) {
  const int depth = nest.depth();
  const int common = static_cast<int>(dirs.size());
  const int rank = src.access.rows();
  for (int r = 0; r < rank; ++r) {
    // Equation over (per-level vars):  sum of terms == rhs.
    //   a_k = src.access(r,k) applies to i_k, b_k = -dst.access(r,k) to i'_k.
    const Int rhs = linalg::checked_sub(dst.offset[static_cast<size_t>(r)],
                                        src.offset[static_cast<size_t>(r)]);
    Int min_sum = 0, max_sum = 0, g = 0;
    bool infeasible = false;
    auto acc = [](const IntMatrix& m, int row, int col) {
      return col < m.cols() ? m.at(row, col) : 0;
    };
    for (int k = 0; k < depth && !infeasible; ++k) {
      const Int a = acc(src.access, r, k);
      const Int b = -acc(dst.access, r, k);
      const Int lo = hull.lo[static_cast<size_t>(k)];
      const Int hi = hull.hi[static_cast<size_t>(k)];
      const Int span = hi - lo;
      auto add_term = [&](Int coeff, Int tlo, Int thi) {
        if (coeff == 0) return;
        g = linalg::gcd(g, coeff);
        if (coeff > 0) {
          min_sum = checked_add(min_sum, checked_mul(coeff, tlo));
          max_sum = checked_add(max_sum, checked_mul(coeff, thi));
        } else {
          min_sum = checked_add(min_sum, checked_mul(coeff, thi));
          max_sum = checked_add(max_sum, checked_mul(coeff, tlo));
        }
      };
      if (k >= common) {  // free: i_k and i'_k range independently
        add_term(a, lo, hi);
        add_term(b, lo, hi);
        continue;
      }
      switch (dirs[static_cast<size_t>(k)]) {
        case Dir::EQ:
          add_term(checked_add(a, b), lo, hi);
          break;
        case Dir::LT:  // i'_k = i_k + delta, delta in [1, span]
          if (span < 1) {
            infeasible = true;
            break;
          }
          add_term(checked_add(a, b), lo, hi);
          add_term(b, 1, span);
          break;
        case Dir::GT:  // i_k = i'_k + delta, delta in [1, span]
          if (span < 1) {
            infeasible = true;
            break;
          }
          add_term(checked_add(a, b), lo, hi);
          add_term(a, 1, span);
          break;
      }
    }
    if (infeasible) return false;
    if (rhs < min_sum || rhs > max_sum) return false;  // Banerjee
    if (g == 0) {
      if (rhs != 0) return false;
    } else if (rhs % g != 0) {
      return false;  // GCD
    }
  }

  // Exact rational feasibility over (i, i') with the true (possibly
  // triangular) bounds, direction constraints and subscript equalities.
  const int nvars = 2 * depth;
  std::vector<Ineq> system;
  add_bound_ineqs(nest, 0, nvars, system);      // i
  add_bound_ineqs(nest, depth, nvars, system);  // i'
  for (int k = 0; k < common; ++k) {
    Ineq q;
    q.c.assign(static_cast<size_t>(nvars), 0);
    switch (dirs[static_cast<size_t>(k)]) {
      case Dir::EQ: {  // i'_k - i_k == 0
        q.c[static_cast<size_t>(depth + k)] = 1;
        q.c[static_cast<size_t>(k)] = -1;
        Ineq neg = q;
        for (Int& v : neg.c) v = -v;
        system.push_back(std::move(q));
        system.push_back(std::move(neg));
        break;
      }
      case Dir::LT:  // i'_k - i_k - 1 >= 0
        q.c[static_cast<size_t>(depth + k)] = 1;
        q.c[static_cast<size_t>(k)] = -1;
        q.c0 = -1;
        system.push_back(std::move(q));
        break;
      case Dir::GT:  // i_k - i'_k - 1 >= 0
        q.c[static_cast<size_t>(k)] = 1;
        q.c[static_cast<size_t>(depth + k)] = -1;
        q.c0 = -1;
        system.push_back(std::move(q));
        break;
    }
  }
  for (int r = 0; r < rank; ++r) {
    Ineq q;
    q.c.assign(static_cast<size_t>(nvars), 0);
    auto acc = [](const IntMatrix& m, int row, int col) {
      return col < m.cols() ? m.at(row, col) : 0;
    };
    for (int k = 0; k < depth; ++k) {
      q.c[static_cast<size_t>(k)] = acc(src.access, r, k);
      q.c[static_cast<size_t>(depth + k)] = -acc(dst.access, r, k);
    }
    q.c0 = linalg::checked_sub(src.offset[static_cast<size_t>(r)],
                               dst.offset[static_cast<size_t>(r)]);
    Ineq neg = q;
    for (Int& v : neg.c) v = -v;
    neg.c0 = -neg.c0;
    system.push_back(std::move(q));
    system.push_back(std::move(neg));
  }
  return fm_feasible(std::move(system), nvars);
}

/// Exact dependence for a uniformly generated pair (equal access
/// matrices): solve F * delta = src.offset - dst.offset ... precisely,
/// element equality F i + o_src = F i' + o_dst gives F (i' - i) = o_src -
/// o_dst. Returns the unique delta when F has full column rank, nullopt
/// when no integral solution exists, and no value via `unique=false` when
/// delta is underdetermined (caller falls back to direction testing).
std::optional<Vec> uniform_distance(const ArrayRef& src, const ArrayRef& dst,
                                    bool& unique) {
  unique = false;
  if (src.access != dst.access) return std::nullopt;
  if (linalg::rank(src.access) != src.access.cols()) return std::nullopt;
  unique = true;
  Vec rhs(src.offset.size());
  for (size_t r = 0; r < rhs.size(); ++r)
    rhs[r] = linalg::checked_sub(src.offset[r], dst.offset[r]);
  const auto sol = linalg::solve(src.access, rhs);
  if (!sol.has_value() || sol->denom != 1) {
    // No integral delta: the two references never overlap.
    return std::nullopt;
  }
  return sol->x;
}

/// Is there an in-hull iteration pair separated by exactly `delta`?
bool distance_in_hull(const Vec& delta, const Hull& hull) {
  for (size_t k = 0; k < delta.size(); ++k) {
    const Int span = hull.hi[k] - hull.lo[k];
    if (std::abs(delta[k]) > span) return false;
  }
  return true;
}

void canonicalize(Vec& delta) {
  for (Int v : delta) {
    if (v > 0) return;
    if (v < 0) {
      for (Int& x : delta) x = -x;
      return;
    }
  }
}

/// One reference of a statement, with the statement's effective depth.
struct Access {
  const ArrayRef* ref;
  bool is_write;
  int depth;
};

/// Canonical direction vectors of a given length, all-EQ first, then the
/// carried shapes EQ^l LT {EQ,LT,GT}^(len-l-1) (first non-EQ is LT).
std::vector<std::vector<Dir>> canonical_vectors(int len) {
  std::vector<std::vector<Dir>> out;
  out.emplace_back(static_cast<size_t>(len), Dir::EQ);  // loop-independent
  for (int l = 0; l < len; ++l) {
    std::vector<Dir> prefix(static_cast<size_t>(l), Dir::EQ);
    prefix.push_back(Dir::LT);
    const int tail = len - l - 1;
    int total = 1;
    for (int t = 0; t < tail; ++t) total *= 3;
    for (int mask = 0; mask < total; ++mask) {
      std::vector<Dir> vec = prefix;
      int m = mask;
      for (int t = 0; t < tail; ++t) {
        vec.push_back(static_cast<Dir>(m % 3));
        m /= 3;
      }
      out.push_back(std::move(vec));
    }
  }
  return out;
}

/// Collect the dependence vectors between one access pair into `add`.
/// Vectors are length-d (extended with EQ past the common loops) and
/// canonicalized for uniformly generated full-depth pairs. All-EQ
/// (loop-independent) vectors are reported only when
/// `keep_loop_independent`; callers drop them for nest-level summaries.
template <typename Add>
void vectors_for_pair(const LoopNest& nest, const Hull& hull, int d,
                      const std::vector<std::vector<std::vector<Dir>>>& canon,
                      const Access& a1, const Access& a2,
                      bool keep_loop_independent, Add&& add) {
  if (!a1.is_write && !a2.is_write) return;
  if (a1.ref->array != a2.ref->array) return;
  const int common = std::min(a1.depth, a2.depth);
  // Uniformly generated full-depth pair: exact distance.
  if (a1.depth == d && a2.depth == d) {
    bool unique = false;
    const auto delta = uniform_distance(*a1.ref, *a2.ref, unique);
    if (unique) {
      if (!delta.has_value()) return;  // proven independent
      Vec dv = *delta;
      if (!distance_in_hull(dv, hull)) return;
      canonicalize(dv);
      DepVector v;
      v.dirs.reserve(static_cast<size_t>(d));
      v.dist.reserve(static_cast<size_t>(d));
      for (Int x : dv) {
        v.dirs.push_back(x == 0 ? Dir::EQ : x > 0 ? Dir::LT : Dir::GT);
        v.dist.push_back(x);
      }
      if (keep_loop_independent || !v.loop_independent()) add(std::move(v));
      return;
    }
  }
  // General pair: hierarchical direction-vector testing over the loops
  // common to both statements.
  for (const auto& dirs : canon[static_cast<size_t>(common)]) {
    const bool all_eq = std::all_of(dirs.begin(), dirs.end(),
                                    [](Dir x) { return x == Dir::EQ; });
    if (all_eq && !keep_loop_independent) continue;
    if (!direction_feasible(nest, *a1.ref, *a2.ref, hull, dirs)) continue;
    DepVector v;
    v.dirs = dirs;
    v.dirs.resize(static_cast<size_t>(d), Dir::EQ);
    v.dist.assign(static_cast<size_t>(d), std::nullopt);
    for (int k = 0; k < d; ++k)
      if (v.dirs[static_cast<size_t>(k)] == Dir::EQ)
        v.dist[static_cast<size_t>(k)] = 0;
    add(std::move(v));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Nest-level analysis
// ---------------------------------------------------------------------------

NestDeps analyze(const LoopNest& nest) {
  NestDeps out;
  const int d = nest.depth();
  out.carried.assign(static_cast<size_t>(d), false);
  const Hull hull = iteration_hull(nest);
  if (hull.empty || d == 0) return out;

  // Collect (ref, is_write, stmt depth) tuples.
  std::vector<Access> accesses;
  for (const ir::Stmt& s : nest.stmts) {
    const int sd = s.effective_depth(d);
    for (const ArrayRef& r : s.reads) accesses.push_back({&r, false, sd});
    if (s.write) accesses.push_back({&*s.write, true, sd});
  }

  auto add_vector = [&](DepVector v) {
    if (std::find(out.vectors.begin(), out.vectors.end(), v) ==
        out.vectors.end())
      out.vectors.push_back(std::move(v));
  };

  std::vector<std::vector<std::vector<Dir>>> canon_by_len(
      static_cast<size_t>(d) + 1);
  for (int len = 0; len <= d; ++len)
    canon_by_len[static_cast<size_t>(len)] = canonical_vectors(len);

  for (const Access& a1 : accesses)
    for (const Access& a2 : accesses)
      vectors_for_pair(nest, hull, d, canon_by_len, a1, a2,
                       /*keep_loop_independent=*/false, add_vector);

  for (const DepVector& v : out.vectors) {
    const int l = v.carrier_level();
    if (l >= 0) out.carried[static_cast<size_t>(l)] = true;
  }
  return out;
}

std::vector<PairDeps> analyze_pairs(const LoopNest& nest) {
  std::vector<PairDeps> out;
  const int d = nest.depth();
  const Hull hull = iteration_hull(nest);
  if (hull.empty || d == 0) return out;

  const int nstmts = static_cast<int>(nest.stmts.size());
  std::vector<std::vector<Access>> by_stmt(static_cast<size_t>(nstmts));
  for (int si = 0; si < nstmts; ++si) {
    const ir::Stmt& s = nest.stmts[static_cast<size_t>(si)];
    const int sd = s.effective_depth(d);
    for (const ArrayRef& r : s.reads)
      by_stmt[static_cast<size_t>(si)].push_back({&r, false, sd});
    if (s.write) by_stmt[static_cast<size_t>(si)].push_back({&*s.write, true, sd});
  }

  std::vector<std::vector<std::vector<Dir>>> canon_by_len(
      static_cast<size_t>(d) + 1);
  for (int len = 0; len <= d; ++len)
    canon_by_len[static_cast<size_t>(len)] = canonical_vectors(len);

  for (int si = 0; si < nstmts; ++si) {
    for (int sj = 0; sj < nstmts; ++sj) {
      PairDeps pd;
      pd.src_stmt = si;
      pd.dst_stmt = sj;
      auto add = [&](DepVector v) {
        if (std::find(pd.vectors.begin(), pd.vectors.end(), v) ==
            pd.vectors.end())
          pd.vectors.push_back(std::move(v));
      };
      // A statement instance executes atomically, so a same-iteration
      // "dependence" of a statement on itself orders nothing.
      const bool keep_li = si != sj;
      for (const Access& a1 : by_stmt[static_cast<size_t>(si)])
        for (const Access& a2 : by_stmt[static_cast<size_t>(sj)])
          vectors_for_pair(nest, hull, d, canon_by_len, a1, a2, keep_li, add);
      if (!pd.vectors.empty()) out.push_back(std::move(pd));
    }
  }
  return out;
}

bool NestDeps::pipelinable(int level) const {
  bool carries = false;
  for (const DepVector& v : vectors) {
    if (v.carrier_level() != level) continue;
    carries = true;
    const auto& dist = v.dist[static_cast<size_t>(level)];
    if (!dist.has_value() || *dist <= 0) return false;
  }
  return carries;
}

std::vector<bool> carried_levels_bruteforce(const LoopNest& nest) {
  const int d = nest.depth();
  std::vector<bool> carried(static_cast<size_t>(d), false);

  // Record every access: (array, flattened index) -> list of touches.
  struct Touch {
    Vec iter;
    bool write;
    int depth;
  };
  std::map<std::pair<int, Vec>, std::vector<Touch>> touches;
  ir::for_each_iteration(nest, [&](std::span<const Int> iter) {
    Vec it(iter.begin(), iter.end());
    for (const ir::Stmt& s : nest.stmts) {
      const int sd = s.effective_depth(d);
      // A depth-sd statement executes only when all deeper loops are at
      // their first iteration.
      bool first = true;
      for (int k = sd; k < d && first; ++k)
        first = iter[static_cast<size_t>(k)] ==
                nest.loops[static_cast<size_t>(k)].lower_bound(iter);
      if (!first) continue;
      for (const ArrayRef& r : s.reads)
        touches[{r.array, r.index(iter)}].push_back({it, false, sd});
      if (s.write)
        touches[{s.write->array, s.write->index(iter)}].push_back(
            {it, true, sd});
    }
  });
  for (const auto& [key, list] : touches) {
    for (size_t i = 0; i < list.size(); ++i)
      for (size_t j = 0; j < list.size(); ++j) {
        if (!list[i].write && !list[j].write) continue;
        const int common = std::min(list[i].depth, list[j].depth);
        // Find first differing level among the common loops.
        for (int k = 0; k < common; ++k) {
          const Int a = list[i].iter[static_cast<size_t>(k)];
          const Int b = list[j].iter[static_cast<size_t>(k)];
          if (a != b) {
            carried[static_cast<size_t>(k)] = true;
            break;
          }
        }
      }
  }
  return carried;
}

}  // namespace dct::dep
