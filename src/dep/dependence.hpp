// Data-dependence analysis on affine loop nests.
//
// Computes the set of dependence vectors of a nest (exact distance vectors
// for uniformly generated reference pairs, conservative direction vectors
// via hierarchical Banerjee + GCD testing otherwise) and the loops that
// carry a dependence. This powers both the unimodular parallelization
// preprocessing (paper §3.2 step 1) and the pipelining decision (§6.2.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace dct::dep {

using ir::Int;

enum class Dir : std::uint8_t { EQ, LT, GT };

/// One dependence vector (source iteration → destination iteration),
/// canonicalized so the first non-EQ component is LT. A component has an
/// exact distance when the reference pair was uniformly generated.
struct DepVector {
  std::vector<Dir> dirs;
  std::vector<std::optional<Int>> dist;  ///< dst - src where exact

  bool loop_independent() const;  ///< all components EQ
  /// Level (0-based) of the first non-EQ component, or -1.
  int carrier_level() const;
  std::string to_string() const;
  bool operator==(const DepVector&) const = default;
};

/// Rectangular hull of a nest's iteration space (conservative bounds used
/// by the Banerjee test; triangular bounds widen to their extreme values).
struct Hull {
  std::vector<Int> lo, hi;
  bool empty = false;
};
Hull iteration_hull(const ir::LoopNest& nest);

/// Full dependence summary of one nest.
struct NestDeps {
  std::vector<DepVector> vectors;  ///< deduplicated
  std::vector<bool> carried;       ///< per level: some vector carried here

  /// A level is pipelinable if every vector it carries has an exact,
  /// constant positive distance at that level (doacross with point-to-point
  /// synchronization is then legal and bounded).
  bool pipelinable(int level) const;
};

NestDeps analyze(const ir::LoopNest& nest);

/// Dependence vectors between one ordered statement pair of a nest.
/// Unlike NestDeps, the vectors keep their statement attribution and
/// include loop-independent (all-EQ) vectors between distinct statements —
/// the information a scheduler needs to decide whether two statements may
/// run on different processors within the same iteration. Self-pairs
/// (src == dst) report carried vectors only: a statement instance executes
/// atomically.
struct PairDeps {
  int src_stmt = 0;  ///< index into nest.stmts
  int dst_stmt = 0;
  std::vector<DepVector> vectors;  ///< deduplicated, never empty
};

std::vector<PairDeps> analyze_pairs(const ir::LoopNest& nest);

/// Brute-force oracle for tests: enumerate all iteration pairs of a small
/// nest and report the exact set of carried levels.
std::vector<bool> carried_levels_bruteforce(const ir::LoopNest& nest);

}  // namespace dct::dep
