#include "codegen/codegen.hpp"

#include <sstream>

#include "support/diagnostics.hpp"
#include "support/str.hpp"

namespace dct::codegen {

using core::CompiledProgram;
using core::CompiledRef;
using core::CoordFold;
using decomp::DistKind;

namespace {

std::string loop_var(int level) { return strf("i%d", level); }

/// Render an affine expression over loop variables.
std::string affine(const linalg::Vec& coeffs, linalg::Int constant) {
  std::ostringstream os;
  bool any = false;
  for (size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] == 0) continue;
    if (any && coeffs[k] > 0) os << " + ";
    if (coeffs[k] < 0) os << (any ? " - " : "-");
    const linalg::Int mag = std::abs(coeffs[k]);
    if (mag != 1) os << mag << "*";
    os << loop_var(static_cast<int>(k));
    any = true;
  }
  if (constant != 0 || !any) {
    if (any) os << (constant >= 0 ? " + " : " - ");
    os << std::abs(constant);
  }
  return os.str();
}

/// Subscript of one original array dimension of a compiled reference.
std::string subscript(const CompiledRef& ref, int row, int depth) {
  linalg::Vec coeffs(static_cast<size_t>(depth));
  for (int k = 0; k < depth; ++k)
    coeffs[static_cast<size_t>(k)] =
        ref.coeffs[static_cast<size_t>(row) * static_cast<size_t>(depth) +
                   static_cast<size_t>(k)];
  return affine(coeffs, ref.offsets[static_cast<size_t>(row)]);
}

/// Linearized address expression of a reference through a layout, using
/// the layout's closed-form dimension functions. Strategy Naive spells
/// out the mod/div; Optimized names the strength-reduced counters the
/// preamble maintains.
std::string address(const CompiledProgram& cp, const CompiledRef& ref,
                    int depth) {
  const core::CompiledArray& ca = cp.arrays[static_cast<size_t>(ref.array)];
  const auto& fns = ca.layout.dim_functions();
  std::ostringstream os;
  linalg::Int stride = 1;
  bool any = false;
  for (size_t k = 0; k < fns.size(); ++k) {
    const auto& f = fns[k];
    std::string term = subscript(ref, f.src, depth);
    const bool transformed = f.div != 1 || f.mod != 0;
    if (transformed && cp.strategy == layout::AddrStrategy::Optimized) {
      // The strength-reduced counters of Section 4.3.
      term = strf("%s_c%zu", cp.program.arrays[static_cast<size_t>(ref.array)]
                                 .name.c_str(),
                  k);
    } else {
      if (f.div != 1) term = strf("(%s)/%lld", term.c_str(),
                                  static_cast<long long>(f.div));
      if (f.mod != 0)
        term = strf("%s%%%lld",
                    (f.div != 1 ? term : "(" + term + ")").c_str(),
                    static_cast<long long>(f.mod));
    }
    if (any) os << " + ";
    if (stride != 1) os << stride << "*";
    os << (transformed || stride != 1 ? "(" + term + ")" : term);
    stride *= ca.layout.dims()[k];
    any = true;
  }
  return os.str();
}

/// This processor's coordinate along the fold's grid dimension — the
/// symbolic form of core::CoordFold::digit_of(myid).
std::string digit_expr(const CoordFold& f, int total_procs) {
  if (f.stride == 1 && f.procs == total_procs) return "myid";
  if (f.stride == 1) return strf("myid%%%d", f.procs);
  return strf("(myid/%d)%%%d", f.stride, f.procs);
}

std::string ref_text(const CompiledProgram& cp, const CompiledRef& ref,
                     int depth) {
  const auto& decl = cp.program.arrays[static_cast<size_t>(ref.array)];
  const core::CompiledArray& ca = cp.arrays[static_cast<size_t>(ref.array)];
  if (ca.layout.is_identity()) {
    std::string subs;
    for (int r = 0; r < ref.rank; ++r)
      subs += (r ? ", " : "") + subscript(ref, r, depth);
    return decl.name + "(" + subs + ")";
  }
  return decl.name + "[" + address(cp, ref, depth) + "]";
}

}  // namespace

std::string emit_nest(const CompiledProgram& cp, int nest_index) {
  const core::CompiledNest& cn = cp.nests[static_cast<size_t>(nest_index)];
  const int depth = static_cast<int>(cn.nest.loops.size());
  std::ostringstream os;

  // Which loops are rewritten by the schedule? Use the first statement's
  // owner mapping (the dominant one for display purposes).
  std::vector<const CoordFold*> fold_of(static_cast<size_t>(depth), nullptr);
  if (!cn.stmts.empty())
    for (const auto& [loop, fold] : cn.stmts.front().owner)
      fold_of[static_cast<size_t>(loop)] = &fold;

  for (int l = 0; l < depth; ++l) {
    const ir::Loop& lp = cn.nest.loops[static_cast<size_t>(l)];
    std::string lo, hi;
    for (const ir::Bound& b : lp.lowers) {
      std::string e = affine(b.expr.coeffs, b.expr.constant);
      if (b.divisor != 1)
        e = strf("ceil((%s)/%lld)", e.c_str(),
                 static_cast<long long>(b.divisor));
      lo = lo.empty() ? e : "max(" + lo + ", " + e + ")";
    }
    for (const ir::Bound& b : lp.uppers) {
      std::string e = affine(b.expr.coeffs, b.expr.constant);
      if (b.divisor != 1)
        e = strf("floor((%s)/%lld)", e.c_str(),
                 static_cast<long long>(b.divisor));
      hi = hi.empty() ? e : "min(" + hi + ", " + e + ")";
    }
    const std::string indent(static_cast<size_t>(2 * (l + 1)), ' ');
    const CoordFold* f = fold_of[static_cast<size_t>(l)];
    if (f == nullptr || f->procs <= 1) {
      os << indent << strf("for (%s = %s; %s <= %s; %s++) {\n",
                           loop_var(l).c_str(), lo.c_str(),
                           loop_var(l).c_str(), hi.c_str(),
                           loop_var(l).c_str());
    } else if (f->kind == DistKind::Cyclic) {
      // Owned iterations satisfy i ≡ offset + digit (mod procs).
      const std::string digit = digit_expr(*f, cp.procs);
      const std::string residue =
          f->offset == 0
              ? digit
              : strf("(%s + %lld)%%%d", digit.c_str(),
                     static_cast<long long>(f->offset), f->procs);
      os << indent
         << strf("for (%s = max(%s, first_ge(%s, %s)); %s <= %s; "
                 "%s += %d) {  /* CYCLIC over %d procs */\n",
                 loop_var(l).c_str(), lo.c_str(), lo.c_str(), residue.c_str(),
                 loop_var(l).c_str(), hi.c_str(), loop_var(l).c_str(),
                 f->procs, f->procs);
    } else if (f->kind == DistKind::BlockCyclic) {
      // Blocks of B iterations dealt round-robin: the owner filter form,
      // matching the native backend's block-run walk.
      const std::string digit = digit_expr(*f, cp.procs);
      const long long B = static_cast<long long>(std::max<linalg::Int>(
          1, f->block));
      std::string idx = loop_var(l);
      if (f->offset != 0)
        idx = strf("(%s - %lld)", idx.c_str(),
                   static_cast<long long>(f->offset));
      os << indent
         << strf("for (%s = %s; %s <= %s; %s++) if ((%s/%lld)%%%d == %s) {"
                 "  /* BLOCK-CYCLIC(%lld) over %d procs */\n",
                 loop_var(l).c_str(), lo.c_str(), loop_var(l).c_str(),
                 hi.c_str(), loop_var(l).c_str(), idx.c_str(), B, f->procs,
                 digit.c_str(), B, f->procs);
    } else {
      // Per-thread bounds mirror core::CoordFold::block_lo/block_hi:
      // [offset + digit*B, offset + (digit+1)*B - 1] clipped to the loop.
      std::string digit = digit_expr(*f, cp.procs);
      if (digit != "myid") digit = "(" + digit + ")";
      const long long B = static_cast<long long>(std::max<linalg::Int>(
          1, f->block));
      std::string base = strf("%lld*%s", B, digit.c_str());
      if (f->offset != 0)
        base += strf(" + %lld", static_cast<long long>(f->offset));
      os << indent
         << strf("for (%s = max(%s, %s); %s <= min(%s, %s + %lld); %s++) {"
                 "  /* BLOCK over %d procs */\n",
                 loop_var(l).c_str(), lo.c_str(), base.c_str(),
                 loop_var(l).c_str(), hi.c_str(), base.c_str(), B - 1,
                 loop_var(l).c_str(), f->procs);
    }
  }

  for (const core::CompiledStmt& cs : cn.stmts) {
    const std::string indent(static_cast<size_t>(2 * (cs.depth + 1)), ' ');
    std::string rhs;
    for (size_t r = 0; r < cs.reads.size(); ++r)
      rhs += (r ? ", " : "") + ref_text(cp, cs.reads[r], depth);
    if (!cs.writes.empty())
      os << indent << ref_text(cp, cs.writes[0], depth) << " = f(" << rhs
         << ");\n";
  }
  for (int l = depth - 1; l >= 0; --l)
    os << std::string(static_cast<size_t>(2 * (l + 1)), ' ') << "}\n";
  if (cn.barrier_after) os << "  barrier();\n";
  return os.str();
}

std::string emit_program(const CompiledProgram& cp) {
  std::ostringstream os;
  os << "/* " << cp.program.name << " — " << core::to_string(cp.mode)
     << ", P = " << cp.procs << " */\n";
  for (size_t a = 0; a < cp.arrays.size(); ++a) {
    const auto& decl = cp.program.arrays[a];
    const auto& ca = cp.arrays[a];
    if (ca.layout.is_identity()) {
      os << strf("%s %s", decl.elem_size == 8 ? "double" : "float",
                 decl.name.c_str());
      for (auto it = decl.dims.rbegin(); it != decl.dims.rend(); ++it)
        os << strf("[%lld]", static_cast<long long>(*it));
    } else {
      os << strf("%s %s[%lld]  /* restructured: %s */",
                 decl.elem_size == 8 ? "double" : "float", decl.name.c_str(),
                 static_cast<long long>(ca.layout.size()),
                 ca.layout.to_string().c_str());
    }
    os << (ca.replicated ? ";  /* replicated per cluster */\n" : ";\n");
  }
  os << "\nvoid spmd_main(int myid) {\n";
  if (cp.program.time_steps > 1)
    os << strf("  for (int t = 0; t < %d; t++) {\n", cp.program.time_steps);
  for (size_t j = 0; j < cp.nests.size(); ++j) {
    os << "  /* nest " << cp.program.nests[j].name << " */\n"
       << emit_nest(cp, static_cast<int>(j));
  }
  if (cp.program.time_steps > 1) os << "  }\n";
  os << "}\n";
  return os.str();
}

}  // namespace dct::codegen
