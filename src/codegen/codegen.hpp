// SPMD code generation (presentation form).
//
// The compiler pipeline's output in the paper is C code with calls to a
// run-time library; the transformed arrays are declared linear and
// accessed through linearized subscripts whose mod/div operations are
// removed by the Section 4.3 optimizations. This module emits that code
// shape for a compiled program — the executable semantics live in
// runtime::simulate; this rendering is for inspection, documentation and
// tests (it reproduces the paper's Section 4.3 examples).
#pragma once

#include <string>

#include "core/compiler.hpp"

namespace dct::codegen {

/// Emit SPMD pseudo-C for one compiled nest: the distributed loops are
/// rewritten per the computation decomposition (BLOCK bounds / CYCLIC
/// strides over `myid`), transformed array references are linearized, and
/// the address calculations follow the compiled strategy (naive mod/div,
/// hoisted, or strength-reduced counters).
std::string emit_nest(const core::CompiledProgram& cp, int nest_index);

/// Emit the whole program: array declarations (with restructured extents)
/// plus every nest, separated by the synchronization the schedule needs.
std::string emit_program(const core::CompiledProgram& cp);

}  // namespace dct::codegen
