// Domain example: how the memory hierarchy parameters change the payoff
// of the transformations. Compares the paper's DASH against a machine
// with larger cache lines (more false sharing) and against a flat-latency
// machine (no NUMA penalty) on the tomcatv kernel.
//
//   $ ./custom_machine
#include <iostream>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "runtime/executor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main() {
  using namespace dct;
  const ir::Program prog = apps::tomcatv(128, 2);
  const int P = 32;

  machine::MachineConfig dash = machine::MachineConfig::dash(P);

  machine::MachineConfig wide = dash;  // 64B lines: 4x the false sharing
  wide.l1.line_bytes = 64;
  wide.l2.line_bytes = 64;

  machine::MachineConfig flat = dash;  // uniform memory, no remote penalty
  flat.lat_remote = flat.lat_local;
  flat.lat_remote_dirty = flat.lat_local;

  runtime::ExecOptions opts;
  opts.collect_values = false;
  const double seq =
      runtime::simulate(core::compile(prog, core::Mode::Base, 1),
                        machine::MachineConfig::dash(1), opts)
          .cycles;

  Table t({"machine", "base", "comp decomp", "+ data transform",
           "transform gain"});
  for (const auto& [name, cfg] :
       {std::pair<const char*, machine::MachineConfig>{"DASH (16B lines)",
                                                       dash},
        {"64B cache lines", wide},
        {"flat memory (UMA)", flat}}) {
    double s[3];
    int i = 0;
    for (core::Mode mode :
         {core::Mode::Base, core::Mode::CompDecomp, core::Mode::Full})
      s[i++] = seq / runtime::simulate(core::compile(prog, mode, P), cfg, opts)
                         .cycles;
    t.add_row({name, strf("%.1f", s[0]), strf("%.1f", s[1]),
               strf("%.1f", s[2]), strf("%.2fx", s[2] / s[1])});
  }
  std::cout << "tomcatv (128x128, P=32) across memory systems:\n"
            << t.to_string()
            << "\nWider lines amplify false sharing, keeping the layout\n"
               "transformation essential; on a flat UMA machine the NUMA\n"
               "half of the benefit disappears and plain parallelization\n"
               "already scales — exactly the paper's argument for why\n"
               "scalable shared-address-space machines need these\n"
               "transformations most.\n";
  return 0;
}
