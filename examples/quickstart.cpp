// Quickstart: run the full compiler pipeline on the paper's Figure 1
// example and watch each step — parallelization, computation/data
// decomposition, data transformation — change the program's behaviour on
// the simulated DASH machine.
//
//   $ ./quickstart
#include <iostream>

#include "apps/apps.hpp"
#include "core/compiler.hpp"
#include "core/experiment.hpp"
#include "runtime/executor.hpp"
#include "support/str.hpp"

int main() {
  using namespace dct;

  // 1. The input program (paper Figure 1a): a fully parallel update loop
  //    followed by a column smoother, inside a time loop.
  const ir::Program prog = apps::figure1(96, 4);
  std::cout << "Input program:\n" << prog.to_string() << "\n";

  // 2. What the decomposition algorithm finds (Section 3): distribute
  //    blocks of rows — DISTRIBUTE(BLOCK, *) — and run both nests as
  //    communication-free doalls with no barrier in between.
  const decomp::ProgramDecomposition dec = decomp::decompose(prog);
  std::cout << dec.to_string(prog) << "\n";

  // 3. What the data transformation does (Section 4): strip-mine the row
  //    dimension and move the processor-identifying dimension rightmost,
  //    making each processor's rows contiguous in the shared address
  //    space.
  const core::CompiledProgram full = core::compile(prog, core::Mode::Full, 8);
  for (size_t a = 0; a < full.arrays.size(); ++a)
    if (!full.arrays[a].layout.is_identity())
      std::cout << "layout " << prog.arrays[a].name << ": "
                << full.arrays[a].layout.to_string() << "\n";
  std::cout << "\n";

  // 3b. The compiler is an instrumented pass pipeline: every compilation
  //     carries a structured trace (per-pass wall time, remarks, decision
  //     counters). DCT_TRACE=1 prints it all as JSON; here is the summary.
  std::cout << "Pass pipeline (" << strf("%.3f", full.trace.total_ms)
            << " ms; run with DCT_TRACE=1 for the full JSON trace):\n";
  for (const auto& p : full.trace.passes)
    std::cout << "  " << strf("%-14s", p.name.c_str())
              << strf("%7.3f ms", p.wall_ms) << "  " << p.remark_count
              << " remark(s), " << p.counters.size() << " counter(s)\n";
  std::cout << "\n";

  // 4. Measure all three compiler configurations on the simulated DASH.
  core::SweepOptions opts;
  opts.procs = {1, 4, 8, 16, 32};
  const core::SweepResult r = core::run_sweep(prog, opts);
  std::cout << core::render_sweep("Figure 1 example on simulated DASH", r);

  std::cout << "\nThe data transformation removes the false sharing the\n"
               "row-block computation suffers on a column-major layout —\n"
               "compare the coh_false counters above.\n";
  return 0;
}
