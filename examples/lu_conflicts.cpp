// Domain example: LU decomposition and the power-of-two conflict-miss
// pathology (paper Section 6.2.2).
//
// With a cyclic column distribution and the original column-major layout,
// all of a processor's columns can map to the same few lines of the
// direct-mapped cache: for a 256x256 double matrix on 32 processors,
// every 32nd column is 64KB apart — the exact L1 size. The paper observed
// that 31 processors ran 5x faster than 32. The data transformation makes
// each processor's cyclic columns a contiguous region and the pathology
// disappears.
//
//   $ ./lu_conflicts [n]
#include <cstdlib>
#include <iostream>

#include "apps/apps.hpp"
#include "core/experiment.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace dct;
  const linalg::Int n = argc > 1 ? std::atol(argv[1]) : 256;
  const ir::Program prog = apps::lu(n);

  core::SweepOptions opts;
  opts.procs = {16, 24, 31, 32};
  opts.modes = {core::Mode::CompDecomp, core::Mode::Full};
  opts.verify = false;
  const core::SweepResult r = core::run_sweep(prog, opts);

  std::cout << "LU " << n << "x" << n
            << ": cyclic columns, with and without the data transform\n\n";
  std::cout << core::render_sweep("LU conflict-miss pathology", r);

  const double cd31 = r.speedups[0][2], cd32 = r.speedups[0][3];
  const double full32 = r.speedups[1][3];
  std::cout << strf(
      "\ncomp-decomp: P=31 -> %.1fx but P=32 -> %.1fx (%.1fx gap).\n"
      "After the data transform P=32 reaches %.1fx: each processor's\n"
      "columns are contiguous, so they cannot conflict with each other.\n",
      cd31, cd32, cd31 / cd32, full32);
  return 0;
}
