// Layout explorer: reproduces the index/address diagrams of Figures 2
// and 3 of the paper for an 8x4 array under (BLOCK,*), (CYCLIC,*) and
// (BLOCK-CYCLIC,*) distributions, and lets you see exactly how
// strip-mining and permutation compose.
//
//   $ ./layout_explorer
#include <iostream>

#include "layout/layout.hpp"
#include "support/str.hpp"

using namespace dct;
using layout::Layout;

namespace {

void show(const std::string& title, const ir::ArrayDecl& decl,
          const Layout& l) {
  std::cout << title << "\n  " << l.to_string() << "\n";
  // Print the original 8x4 grid; each cell shows "new-indices | address"
  // as in Figure 3(c).
  for (linalg::Int i1 = 0; i1 < decl.dims[0]; ++i1) {
    std::cout << "  ";
    for (linalg::Int i2 = 0; i2 < decl.dims[1]; ++i2) {
      const std::vector<linalg::Int> idx{i1, i2};
      const auto mapped = l.map_index(idx);
      std::string cell;
      for (size_t k = 0; k < mapped.size(); ++k)
        cell += (k ? "," : "") + std::to_string(mapped[k]);
      std::cout << strf("%-10s", strf("%s|%lld", cell.c_str(),
                                      static_cast<long long>(l.linearize(idx)))
                                     .c_str());
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const ir::ArrayDecl decl{"A", {8, 4}, 4, true};
  const int grid[] = {2};

  std::cout << "Figure 2: strip-mining a 12-element array (b=4), then\n"
               "transposing makes every fourth element contiguous:\n  ";
  Layout fig2 = Layout::identity({12});
  fig2.apply(layout::StripMine{0, 4});
  fig2.apply(layout::Permute{{1, 0}});
  for (linalg::Int i = 0; i < 12; ++i)
    std::cout << fig2.linearize(std::vector<linalg::Int>{i}) << " ";
  std::cout << "\n\n";

  auto dist = [&](decomp::DistKind kind, linalg::Int block = 0) {
    decomp::ArrayDecomposition ad;
    ad.dims = {decomp::DimDistribution{kind, 0, block},
               decomp::DimDistribution{}};
    return ad;
  };

  show("Figure 3, (BLOCK, *) over P=2:", decl,
       layout::derive_layout(decl, dist(decomp::DistKind::Block), grid));
  show("Figure 3, (CYCLIC, *) over P=2:", decl,
       layout::derive_layout(decl, dist(decomp::DistKind::Cyclic), grid));
  show("Figure 3, (BLOCK-CYCLIC, *) b=2 over P=2:", decl,
       layout::derive_layout(decl, dist(decomp::DistKind::BlockCyclic, 2),
                             grid));
  std::cout << "In every case one processor's elements form one contiguous\n"
               "address range — the property that removes false sharing and\n"
               "cache conflicts on the shared-address-space machine.\n";
  return 0;
}
