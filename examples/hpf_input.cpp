// Domain example: HPF directives as input to the data transformation
// (paper Section 4.2 and the conclusion). HPF's DISTRIBUTE/ALIGN were
// designed for distributed-memory message passing; here the same
// directives drive the shared-address-space layout optimization instead,
// and the generated SPMD code shape is printed.
//
//   $ ./hpf_input
#include <iostream>

#include "apps/apps.hpp"
#include "codegen/codegen.hpp"
#include "core/compiler.hpp"
#include "hpf/hpf.hpp"
#include "layout/layout.hpp"

int main() {
  using namespace dct;
  const ir::Program prog = apps::adi(64, 1);

  const std::string directives = R"(
!HPF$ TEMPLATE T(64, 64)
!HPF$ DISTRIBUTE T(*, CYCLIC)
!HPF$ ALIGN X(i, j) WITH T(i, j)
!HPF$ ALIGN B(i, j) WITH T(i, j+1)   ! offsets are ignored
!HPF$ DISTRIBUTE A(BLOCK, *)
)";
  const hpf::Directives parsed = hpf::parse(prog, directives);

  std::cout << "Parsed HPF directives:\n";
  const int grid[] = {8, 8};
  for (const auto& [name, ad] : parsed.arrays) {
    std::cout << "  " << name << " DISTRIBUTE" << ad.hpf_string() << "\n";
    const int id = prog.array_id(name);
    const layout::Layout l = layout::derive_layout(
        prog.arrays[static_cast<size_t>(id)], ad, grid);
    std::cout << "    layout: "
              << (l.is_identity() ? "unchanged (already contiguous)"
                                  : l.to_string())
              << "\n";
  }

  std::cout << "\nFor comparison, the automatic pipeline's own output on the "
               "same program:\n\n";
  const core::CompiledProgram cp = core::compile(prog, core::Mode::Full, 8);
  std::cout << codegen::emit_program(cp);
  return 0;
}
