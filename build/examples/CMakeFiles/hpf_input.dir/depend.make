# Empty dependencies file for hpf_input.
# This may be replaced when dependencies are built.
