file(REMOVE_RECURSE
  "CMakeFiles/hpf_input.dir/hpf_input.cpp.o"
  "CMakeFiles/hpf_input.dir/hpf_input.cpp.o.d"
  "hpf_input"
  "hpf_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
