# Empty compiler generated dependencies file for lu_conflicts.
# This may be replaced when dependencies are built.
