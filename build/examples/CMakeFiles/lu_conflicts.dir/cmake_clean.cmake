file(REMOVE_RECURSE
  "CMakeFiles/lu_conflicts.dir/lu_conflicts.cpp.o"
  "CMakeFiles/lu_conflicts.dir/lu_conflicts.cpp.o.d"
  "lu_conflicts"
  "lu_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
