# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/dep_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/hpf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
