file(REMOVE_RECURSE
  "CMakeFiles/bench_tomcatv.dir/bench_tomcatv.cpp.o"
  "CMakeFiles/bench_tomcatv.dir/bench_tomcatv.cpp.o.d"
  "bench_tomcatv"
  "bench_tomcatv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tomcatv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
