# Empty compiler generated dependencies file for bench_tomcatv.
# This may be replaced when dependencies are built.
