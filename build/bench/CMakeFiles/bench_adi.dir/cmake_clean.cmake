file(REMOVE_RECURSE
  "CMakeFiles/bench_adi.dir/bench_adi.cpp.o"
  "CMakeFiles/bench_adi.dir/bench_adi.cpp.o.d"
  "bench_adi"
  "bench_adi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
