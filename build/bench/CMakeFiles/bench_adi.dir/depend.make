# Empty dependencies file for bench_adi.
# This may be replaced when dependencies are built.
