file(REMOVE_RECURSE
  "CMakeFiles/bench_vpenta.dir/bench_vpenta.cpp.o"
  "CMakeFiles/bench_vpenta.dir/bench_vpenta.cpp.o.d"
  "bench_vpenta"
  "bench_vpenta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vpenta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
