# Empty compiler generated dependencies file for bench_vpenta.
# This may be replaced when dependencies are built.
