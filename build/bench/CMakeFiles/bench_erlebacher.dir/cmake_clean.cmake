file(REMOVE_RECURSE
  "CMakeFiles/bench_erlebacher.dir/bench_erlebacher.cpp.o"
  "CMakeFiles/bench_erlebacher.dir/bench_erlebacher.cpp.o.d"
  "bench_erlebacher"
  "bench_erlebacher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erlebacher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
