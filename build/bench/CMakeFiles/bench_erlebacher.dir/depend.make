# Empty dependencies file for bench_erlebacher.
# This may be replaced when dependencies are built.
