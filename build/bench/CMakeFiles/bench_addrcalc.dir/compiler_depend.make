# Empty compiler generated dependencies file for bench_addrcalc.
# This may be replaced when dependencies are built.
