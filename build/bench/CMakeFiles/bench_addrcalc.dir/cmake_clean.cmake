file(REMOVE_RECURSE
  "CMakeFiles/bench_addrcalc.dir/bench_addrcalc.cpp.o"
  "CMakeFiles/bench_addrcalc.dir/bench_addrcalc.cpp.o.d"
  "bench_addrcalc"
  "bench_addrcalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_addrcalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
