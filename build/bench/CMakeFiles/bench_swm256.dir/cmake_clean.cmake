file(REMOVE_RECURSE
  "CMakeFiles/bench_swm256.dir/bench_swm256.cpp.o"
  "CMakeFiles/bench_swm256.dir/bench_swm256.cpp.o.d"
  "bench_swm256"
  "bench_swm256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swm256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
