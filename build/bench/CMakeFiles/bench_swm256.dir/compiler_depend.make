# Empty compiler generated dependencies file for bench_swm256.
# This may be replaced when dependencies are built.
