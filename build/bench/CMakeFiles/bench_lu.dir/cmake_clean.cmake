file(REMOVE_RECURSE
  "CMakeFiles/bench_lu.dir/bench_lu.cpp.o"
  "CMakeFiles/bench_lu.dir/bench_lu.cpp.o.d"
  "bench_lu"
  "bench_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
