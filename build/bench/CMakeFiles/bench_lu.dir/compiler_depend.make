# Empty compiler generated dependencies file for bench_lu.
# This may be replaced when dependencies are built.
