file(REMOVE_RECURSE
  "libdct.a"
)
