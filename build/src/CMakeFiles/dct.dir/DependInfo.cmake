
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adi.cpp" "src/CMakeFiles/dct.dir/apps/adi.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/adi.cpp.o.d"
  "/root/repo/src/apps/erlebacher.cpp" "src/CMakeFiles/dct.dir/apps/erlebacher.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/erlebacher.cpp.o.d"
  "/root/repo/src/apps/figure1.cpp" "src/CMakeFiles/dct.dir/apps/figure1.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/figure1.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/dct.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/stencil5.cpp" "src/CMakeFiles/dct.dir/apps/stencil5.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/stencil5.cpp.o.d"
  "/root/repo/src/apps/swm256.cpp" "src/CMakeFiles/dct.dir/apps/swm256.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/swm256.cpp.o.d"
  "/root/repo/src/apps/tomcatv.cpp" "src/CMakeFiles/dct.dir/apps/tomcatv.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/tomcatv.cpp.o.d"
  "/root/repo/src/apps/vpenta.cpp" "src/CMakeFiles/dct.dir/apps/vpenta.cpp.o" "gcc" "src/CMakeFiles/dct.dir/apps/vpenta.cpp.o.d"
  "/root/repo/src/codegen/codegen.cpp" "src/CMakeFiles/dct.dir/codegen/codegen.cpp.o" "gcc" "src/CMakeFiles/dct.dir/codegen/codegen.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "src/CMakeFiles/dct.dir/core/compiler.cpp.o" "gcc" "src/CMakeFiles/dct.dir/core/compiler.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/dct.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/dct.dir/core/experiment.cpp.o.d"
  "/root/repo/src/decomp/decomposition.cpp" "src/CMakeFiles/dct.dir/decomp/decomposition.cpp.o" "gcc" "src/CMakeFiles/dct.dir/decomp/decomposition.cpp.o.d"
  "/root/repo/src/dep/dependence.cpp" "src/CMakeFiles/dct.dir/dep/dependence.cpp.o" "gcc" "src/CMakeFiles/dct.dir/dep/dependence.cpp.o.d"
  "/root/repo/src/dep/parallelize.cpp" "src/CMakeFiles/dct.dir/dep/parallelize.cpp.o" "gcc" "src/CMakeFiles/dct.dir/dep/parallelize.cpp.o.d"
  "/root/repo/src/hpf/hpf.cpp" "src/CMakeFiles/dct.dir/hpf/hpf.cpp.o" "gcc" "src/CMakeFiles/dct.dir/hpf/hpf.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/CMakeFiles/dct.dir/ir/program.cpp.o" "gcc" "src/CMakeFiles/dct.dir/ir/program.cpp.o.d"
  "/root/repo/src/ir/transform.cpp" "src/CMakeFiles/dct.dir/ir/transform.cpp.o" "gcc" "src/CMakeFiles/dct.dir/ir/transform.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/CMakeFiles/dct.dir/layout/layout.cpp.o" "gcc" "src/CMakeFiles/dct.dir/layout/layout.cpp.o.d"
  "/root/repo/src/linalg/int_matrix.cpp" "src/CMakeFiles/dct.dir/linalg/int_matrix.cpp.o" "gcc" "src/CMakeFiles/dct.dir/linalg/int_matrix.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/dct.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/dct.dir/machine/machine.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/dct.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/dct.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/dct.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/dct.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/CMakeFiles/dct.dir/support/env.cpp.o" "gcc" "src/CMakeFiles/dct.dir/support/env.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/dct.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/dct.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
