# Empty dependencies file for dct.
# This may be replaced when dependencies are built.
